#include "common/cli.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace aimes::common::cli {

Expected<long long> parse_int(std::string_view text, long long min_value,
                              long long max_value) {
  using E = Expected<long long>;
  const std::string token(text);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE || value < min_value ||
      value > max_value) {
    return E::error("invalid value '" + token + "' (expected integer in [" +
                    std::to_string(min_value) + ", " + std::to_string(max_value) + "])");
  }
  return value;
}

Expected<double> parse_double(std::string_view text, double min_value, double max_value) {
  using E = Expected<double>;
  const std::string token(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE || value < min_value ||
      value > max_value) {
    std::ostringstream range;
    range << "invalid value '" << token << "' (expected number in [" << min_value << ", "
          << max_value << "])";
    return E::error(range.str());
  }
  return value;
}

Parser::Parser(std::string program) : program_(std::move(program)) {}

Parser& Parser::add(Option option) {
  options_.push_back(std::move(option));
  return *this;
}

Parser::Option* Parser::find(std::string_view name) {
  for (Option& o : options_) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

Parser& Parser::flag(std::string name, bool& target, std::string help) {
  Option o;
  o.name = std::move(name);
  o.help = std::move(help);
  o.set = [&target] { target = true; };
  return add(std::move(o));
}

Parser& Parser::string_option(std::string name, std::string& target, std::string help,
                              std::string metavar) {
  Option o;
  o.name = std::move(name);
  o.metavar = std::move(metavar);
  o.help = std::move(help);
  o.apply = [&target](const std::string& value) -> Status {
    target = value;
    return {};
  };
  return add(std::move(o));
}

Parser& Parser::int_option(std::string name, int& target, long long min_value,
                           long long max_value, std::string help, std::string metavar) {
  Option o;
  o.name = std::move(name);
  o.metavar = std::move(metavar);
  o.help = std::move(help);
  o.apply = [&target, min_value, max_value](const std::string& value) -> Status {
    auto parsed = parse_int(value, min_value, max_value);
    if (!parsed) return Status::error(parsed.error());
    target = static_cast<int>(*parsed);
    return {};
  };
  return add(std::move(o));
}

Parser& Parser::uint64_option(std::string name, std::uint64_t& target, std::string help,
                              std::string metavar) {
  Option o;
  o.name = std::move(name);
  o.metavar = std::move(metavar);
  o.help = std::move(help);
  // Parse through the signed checker so "-1" and garbage are rejected
  // instead of wrapping.
  o.apply = [&target](const std::string& value) -> Status {
    auto parsed = parse_int(value, 0, 9223372036854775807LL);
    if (!parsed) return Status::error(parsed.error());
    target = static_cast<std::uint64_t>(*parsed);
    return {};
  };
  return add(std::move(o));
}

Parser& Parser::double_option(std::string name, double& target, double min_value,
                              double max_value, std::string help, std::string metavar) {
  Option o;
  o.name = std::move(name);
  o.metavar = std::move(metavar);
  o.help = std::move(help);
  o.apply = [&target, min_value, max_value](const std::string& value) -> Status {
    auto parsed = parse_double(value, min_value, max_value);
    if (!parsed) return Status::error(parsed.error());
    target = *parsed;
    return {};
  };
  return add(std::move(o));
}

Parser& Parser::custom_option(std::string name, std::string metavar, std::string help,
                              std::function<Status(const std::string&)> parse) {
  Option o;
  o.name = std::move(name);
  o.metavar = std::move(metavar);
  o.help = std::move(help);
  o.apply = std::move(parse);
  return add(std::move(o));
}

Parser& Parser::conflicts(std::string a, std::string b) {
  conflicts_.emplace_back(std::move(a), std::move(b));
  return *this;
}

Parser& Parser::requires_option(std::string dependent, std::string prerequisite) {
  requires_.emplace_back(std::move(dependent), std::move(prerequisite));
  return *this;
}

Expected<Parser::Result> Parser::parse(int argc, char** argv) {
  using E = Expected<Result>;
  for (Option& o : options_) o.seen = false;
  if (argc > 0 && argv[0] != nullptr && argv[0][0] != '\0') program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") return Result{true};
    Option* o = find(a);
    if (o == nullptr) return E::error("unknown argument '" + a + "' (try --help)");
    o->seen = true;
    if (o->set) {
      o->set();
      continue;
    }
    if (i + 1 >= argc) return E::error("missing value for " + a);
    const std::string value = argv[++i];
    auto status = o->apply(value);
    if (!status.ok()) return E::error(status.error() + " for " + a);
  }
  for (const auto& [a, b] : conflicts_) {
    if (seen(a) && seen(b)) {
      return E::error("conflicting options: " + a + " cannot combine with " + b);
    }
  }
  for (const auto& [dependent, prerequisite] : requires_) {
    if (seen(dependent) && !seen(prerequisite)) {
      return E::error(dependent + " requires " + prerequisite);
    }
  }
  return Result{};
}

bool Parser::seen(std::string_view name) const {
  for (const Option& o : options_) {
    if (o.name == name) return o.seen;
  }
  return false;
}

std::string Parser::usage() const {
  std::size_t width = 0;
  for (const Option& o : options_) {
    std::size_t w = o.name.size();
    if (!o.metavar.empty()) w += 1 + o.metavar.size();
    width = std::max(width, w);
  }
  std::ostringstream out;
  out << "usage: " << program_ << " [options]\n";
  for (const Option& o : options_) {
    std::string head = o.name;
    if (!o.metavar.empty()) head += " " + o.metavar;
    out << "  " << head << std::string(width - head.size() + 2, ' ');
    // Multi-line help continues indented under the help column.
    const std::string indent(2 + width + 2, ' ');
    for (std::size_t pos = 0;;) {
      const std::size_t nl = o.help.find('\n', pos);
      out << (pos == 0 ? "" : indent) << o.help.substr(pos, nl - pos) << "\n";
      if (nl == std::string::npos) break;
      pos = nl + 1;
    }
  }
  return out.str();
}

}  // namespace aimes::common::cli
