// Strongly-typed data sizes (bytes), used by the skeleton (file sizes) and
// the network substrate (transfer volumes, bandwidths).
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace aimes::common {

/// A non-negative amount of data in bytes.
class DataSize {
 public:
  constexpr DataSize() = default;
  constexpr explicit DataSize(std::int64_t bytes) : bytes_(bytes) {}

  [[nodiscard]] static constexpr DataSize bytes(std::int64_t v) { return DataSize(v); }
  [[nodiscard]] static constexpr DataSize kib(double v) {
    return DataSize(static_cast<std::int64_t>(v * 1024.0));
  }
  [[nodiscard]] static constexpr DataSize mib(double v) { return kib(v * 1024.0); }
  [[nodiscard]] static constexpr DataSize gib(double v) { return mib(v * 1024.0); }
  [[nodiscard]] static constexpr DataSize zero() { return DataSize(0); }

  [[nodiscard]] constexpr std::int64_t count_bytes() const { return bytes_; }
  [[nodiscard]] constexpr double to_mib() const {
    return static_cast<double>(bytes_) / (1024.0 * 1024.0);
  }

  constexpr auto operator<=>(const DataSize&) const = default;
  constexpr DataSize operator+(DataSize o) const { return DataSize(bytes_ + o.bytes_); }
  constexpr DataSize operator-(DataSize o) const { return DataSize(bytes_ - o.bytes_); }
  constexpr DataSize& operator+=(DataSize o) { bytes_ += o.bytes_; return *this; }
  constexpr DataSize operator*(double f) const {
    return DataSize(static_cast<std::int64_t>(static_cast<double>(bytes_) * f));
  }

  /// Human readable, e.g. "1.00MiB", "2.0KiB", "17B".
  [[nodiscard]] std::string str() const;

 private:
  std::int64_t bytes_ = 0;
};

/// Bandwidth in bytes per (virtual) second.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  constexpr explicit Bandwidth(double bytes_per_sec) : bps_(bytes_per_sec) {}

  [[nodiscard]] static constexpr Bandwidth mib_per_sec(double v) {
    return Bandwidth(v * 1024.0 * 1024.0);
  }

  [[nodiscard]] constexpr double bytes_per_sec() const { return bps_; }
  constexpr auto operator<=>(const Bandwidth&) const = default;
  constexpr Bandwidth operator/(double n) const { return Bandwidth(bps_ / n); }

 private:
  double bps_ = 0.0;
};

}  // namespace aimes::common
