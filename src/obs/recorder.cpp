#include "obs/recorder.hpp"

#include <algorithm>
#include <sstream>

#include "obs/trace_export.hpp"

namespace aimes::obs {

Snapshot merge_snapshots(const std::vector<Snapshot>& parts) {
  Snapshot merged;
  merged.span_checksum = 1469598103934665603ULL;  // FNV offset basis
  for (const Snapshot& part : parts) {
    merged.span_checksum ^= part.span_checksum;
    merged.span_checksum *= 1099511628211ULL;  // FNV prime
    merged.span_count += part.span_count;
    merged.instant_count += part.instant_count;
    merged.max_span_depth = std::max(merged.max_span_depth, part.max_span_depth);
    merged.metric_count += part.metric_count;
    merged.sample_count += part.sample_count;
  }
  return merged;
}

void Recorder::start_sampling(common::SimDuration interval) {
  if (interval <= common::SimDuration::zero()) return;
  if (pending_.valid()) {
    engine_.cancel(pending_);
    pending_ = common::EventId::invalid();
  }
  interval_ = interval;
  sampling_ = true;
  metrics_.sample(engine_.now());
  if (engine_.queued() > 0) {
    pending_ = engine_.schedule(interval_, [this] { tick(); });
  }
}

void Recorder::stop_sampling() {
  if (pending_.valid()) {
    engine_.cancel(pending_);
    pending_ = common::EventId::invalid();
  }
  sampling_ = false;
}

void Recorder::note_activity() {
  if (!sampling_ || pending_.valid()) return;
  pending_ = engine_.schedule(interval_, [this] { tick(); });
}

void Recorder::tick() {
  pending_ = common::EventId::invalid();
  metrics_.sample(engine_.now());
  // Reschedule only while other work remains: a sampler that kept itself
  // alive would spin `while (engine.step())` drivers forever. A parked
  // sampler is revived by the next emission (note_activity).
  if (engine_.queued() > 0) {
    pending_ = engine_.schedule(interval_, [this] { tick(); });
  }
}

Snapshot Recorder::snapshot(bool render_artifacts) const {
  Snapshot snap;
  snap.span_checksum = tracer_.checksum();
  snap.span_count = tracer_.spans().size();
  snap.instant_count = tracer_.instants().size();
  snap.max_span_depth = tracer_.max_depth();
  snap.metric_count = metrics_.metrics().size();
  snap.sample_count = metrics_.sample_count();
  if (render_artifacts) {
    std::ostringstream trace;
    export_chrome_trace(tracer_, metrics_, trace);
    snap.chrome_trace = trace.str();
    std::ostringstream prom;
    export_prometheus(metrics_, prom);
    snap.prometheus = prom.str();
    std::ostringstream csv;
    export_csv_series(metrics_, csv);
    snap.csv = csv.str();
  }
  return snap;
}

}  // namespace aimes::obs
