// Labeled metrics registry with virtual-time sampling.
//
// Metric naming follows `aimes_<layer>_<name>{label="value",...}` — e.g.
// `aimes_pilot_units_queued{tenant="2"}` or
// `aimes_cluster_core_utilization{site="stampede"}`. Counters accumulate
// monotonically, gauges are set-point values with an exact high-water mark
// (tracked on every mutation, so the peak is independent of the sample
// interval), histograms bucket observations, and callback gauges are polled
// at each sample tick (used for state the owner already tracks, like a
// site's core utilization).
//
// The Recorder samples the registry on a virtual-time interval; each
// counter/gauge then carries a time series of (when, value) points in
// creation order, which feeds the Chrome-trace counter tracks and the CSV
// export. Registration order is deterministic (instrumented layers register
// in construction order), so the exports are byte-stable across --jobs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/time.hpp"

namespace aimes::obs {

/// Label set, e.g. {{"tenant","2"},{"site","stampede"}}. Order is preserved
/// as given (callers pass labels in a fixed order, keeping keys stable).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// One sampled point of a metric's time series.
struct SeriesPoint {
  common::SimTime when;
  double value;
};

enum class MetricKind { kCounter, kGauge, kCallbackGauge, kHistogram };

/// A monotonically increasing counter.
class Counter {
 public:
  void add(double v = 1.0) { value_ += v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// A set-point gauge with an exact peak (high-water) tracked on every
/// mutation, not just at sample ticks.
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (v > peak_) peak_ = v;
  }
  void add(double delta) { set(value_ + delta); }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] double peak() const { return peak_; }

 private:
  double value_ = 0.0;
  double peak_ = 0.0;
};

/// Fixed linear-bucket histogram; observations outside [lo, hi) land in the
/// overflow/underflow buckets. Kept deliberately simple: the exposition
/// format needs cumulative bucket counts, a sum and a total count.
class MetricHistogram {
 public:
  MetricHistogram(double lo, double hi, int buckets);
  void observe(double v);
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Upper bound of bucket i (the last bucket is +Inf).
  [[nodiscard]] double upper_bound(std::size_t i) const;
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return counts_; }

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;  // buckets + overflow
  double sum_ = 0.0;
  std::uint64_t count_ = 0;
};

/// A registered metric: identity, live instrument and sampled series.
struct Metric {
  std::string name;
  Labels labels;
  MetricKind kind;
  Counter counter;
  Gauge gauge;
  std::function<double()> callback;  // kCallbackGauge only
  std::unique_ptr<MetricHistogram> histogram;
  std::vector<SeriesPoint> series;  // appended by MetricsRegistry::sample

  /// `name{k="v",...}` — the exposition identity, also the dedup key.
  [[nodiscard]] std::string key() const;
};

/// Owns every metric; registration is idempotent on (name, labels).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  MetricHistogram& histogram(const std::string& name, Labels labels, double lo, double hi,
                             int buckets);
  /// Registers a polled gauge; `fn` is called at each sample tick. Re-using
  /// a key replaces the callback (the series is kept).
  void gauge_callback(const std::string& name, Labels labels, std::function<double()> fn);

  /// Appends the current value of every counter/gauge/callback gauge to its
  /// series, stamped `when`. Histograms are exposition-only (no series).
  void sample(common::SimTime when);

  [[nodiscard]] const std::vector<std::unique_ptr<Metric>>& metrics() const {
    return metrics_;
  }
  [[nodiscard]] std::size_t sample_count() const { return samples_; }

  /// Looks up a metric by exposition key; nullptr if absent.
  [[nodiscard]] const Metric* find(const std::string& key) const;
  /// Peak of a gauge by key, or 0 if absent — used to derive report numbers
  /// (e.g. peak concurrent executing units) from the instrumentation.
  [[nodiscard]] double gauge_peak(const std::string& key) const;

 private:
  Metric& intern(const std::string& name, Labels labels, MetricKind kind);

  std::vector<std::unique_ptr<Metric>> metrics_;
  std::unordered_map<std::string, std::size_t> index_;
  std::size_t samples_ = 0;
};

}  // namespace aimes::obs
