#include "obs/trace_export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace aimes::obs {

namespace {

/// Deterministic numeric rendering: integers without a decimal point (the
/// common case for counters/gauges), everything else shortest-ish %.10g.
std::string num(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

std::string attrs_json(const std::vector<Attr>& attrs) {
  std::string out = "{";
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + json_escape(attrs[i].first) + "\":\"" + json_escape(attrs[i].second) + '"';
  }
  out += '}';
  return out;
}

/// Tracks are mapped to tid lanes in first-appearance order (spans first,
/// then instants), which is creation order and therefore deterministic.
class TrackIndex {
 public:
  int tid(const std::string& track) {
    auto it = map_.find(track);
    if (it != map_.end()) return it->second;
    const int id = static_cast<int>(names_.size()) + 1;
    map_.emplace(track, id);
    names_.push_back(track);
    return id;
  }
  [[nodiscard]] const std::vector<std::string>& names() const { return names_; }

 private:
  std::unordered_map<std::string, int> map_;
  std::vector<std::string> names_;
};

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void export_chrome_trace(const SpanTracer& tracer, const MetricsRegistry& metrics,
                         std::ostream& out) {
  // Open spans (a run that was aborted, a pilot alive at teardown) are
  // clamped to the latest timestamp anywhere in the trace so Perfetto still
  // renders them.
  std::int64_t latest_ms = 0;
  for (const Span& s : tracer.spans()) {
    latest_ms = std::max(latest_ms, s.begin.count_ms());
    if (s.closed()) latest_ms = std::max(latest_ms, s.end.count_ms());
  }
  for (const InstantEvent& ev : tracer.instants()) {
    latest_ms = std::max(latest_ms, ev.when.count_ms());
  }
  for (const auto& m : metrics.metrics()) {
    if (!m->series.empty()) {
      latest_ms = std::max(latest_ms, m->series.back().when.count_ms());
    }
  }

  TrackIndex tracks;
  out << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out << ",\n";
    first = false;
    out << event;
  };

  for (const Span& s : tracer.spans()) {
    const int tid = tracks.tid(s.track);
    const std::int64_t begin_us = s.begin.count_ms() * 1000;
    const std::int64_t end_ms = s.closed() ? s.end.count_ms() : latest_ms;
    const std::int64_t dur_us = std::max<std::int64_t>(0, end_ms - s.begin.count_ms()) * 1000;
    char head[160];
    std::snprintf(head, sizeof(head),
                  "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%" PRId64 ",\"dur\":%" PRId64
                  ",\"cat\":\"span\",\"name\":\"",
                  tid, begin_us, dur_us);
    std::string ev = head;
    ev += json_escape(s.name);
    ev += "\",\"args\":";
    std::vector<Attr> attrs = s.attrs;
    attrs.emplace_back("span_id", std::to_string(s.id));
    if (s.parent != kNoSpan) attrs.emplace_back("parent_span", std::to_string(s.parent));
    ev += attrs_json(attrs);
    ev += '}';
    emit(ev);
  }

  for (const InstantEvent& inst : tracer.instants()) {
    const int tid = tracks.tid(inst.track);
    char head[128];
    std::snprintf(head, sizeof(head),
                  "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%" PRId64
                  ",\"cat\":\"annotation\",\"name\":\"",
                  tid, inst.when.count_ms() * 1000);
    std::string ev = head;
    ev += json_escape(inst.name);
    ev += "\",\"args\":";
    ev += attrs_json(inst.attrs);
    ev += '}';
    emit(ev);
  }

  // One counter track per sampled metric (its full key keeps label sets on
  // separate tracks, e.g. aimes_pilot_units_queued{tenant="1"} vs {"2"}).
  for (const auto& m : metrics.metrics()) {
    if (m->series.empty()) continue;
    const std::string name = json_escape(m->key());
    for (const SeriesPoint& p : m->series) {
      char head[96];
      std::snprintf(head, sizeof(head), "{\"ph\":\"C\",\"pid\":1,\"ts\":%" PRId64
                                        ",\"name\":\"",
                    p.when.count_ms() * 1000);
      std::string ev = head;
      ev += name;
      ev += "\",\"args\":{\"value\":";
      ev += num(p.value);
      ev += "}}";
      emit(ev);
    }
  }

  // Name the tid lanes after their tracks.
  for (std::size_t i = 0; i < tracks.names().size(); ++i) {
    std::string ev = "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(i + 1) +
                     ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
                     json_escape(tracks.names()[i]) + "\"}}";
    emit(ev);
  }

  out << "]}\n";
}

void export_prometheus(const MetricsRegistry& metrics, std::ostream& out) {
  // Exposition groups every sample of one family under its # TYPE line.
  // Families are listed in first-appearance (= registration) order and
  // members keep registration order within the family, so the output is
  // byte-stable for a deterministic run.
  std::vector<std::string> families;
  std::unordered_set<std::string> seen;
  for (const auto& m : metrics.metrics()) {
    if (seen.insert(m->name).second) families.push_back(m->name);
  }
  for (const std::string& family : families) {
    bool typed = false;
    for (const auto& m : metrics.metrics()) {
      if (m->name != family) continue;
      if (!typed) {
        typed = true;
        const char* type = "gauge";
        if (m->kind == MetricKind::kCounter) type = "counter";
        if (m->kind == MetricKind::kHistogram) type = "histogram";
        out << "# TYPE " << m->name << ' ' << type << '\n';
      }
      if (m->kind == MetricKind::kHistogram && m->histogram) {
        const MetricHistogram& h = *m->histogram;
        std::string label_prefix = m->name + "_bucket{";
        std::string suffix_labels;
        for (const Attr& a : m->labels) {
          label_prefix += a.first + "=\"" + a.second + "\",";
          suffix_labels += (suffix_labels.empty() ? "{" : ",") + a.first + "=\"" + a.second + '"';
        }
        if (!suffix_labels.empty()) suffix_labels += '}';
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.buckets().size(); ++i) {
          cumulative += h.buckets()[i];
          const double ub = h.upper_bound(i);
          out << label_prefix << "le=\""
              << (std::isinf(ub) ? std::string("+Inf") : num(ub)) << "\"} " << cumulative
              << '\n';
        }
        out << m->name << "_sum" << suffix_labels << ' ' << num(h.sum()) << '\n';
        out << m->name << "_count" << suffix_labels << ' ' << h.count() << '\n';
        continue;
      }
      double value = 0.0;
      switch (m->kind) {
        case MetricKind::kCounter: value = m->counter.value(); break;
        case MetricKind::kGauge: value = m->gauge.value(); break;
        case MetricKind::kCallbackGauge:
          value = m->callback ? m->callback()
                              : (m->series.empty() ? 0.0 : m->series.back().value);
          break;
        case MetricKind::kHistogram: break;  // handled above
      }
      out << m->key() << ' ' << num(value) << '\n';
    }
  }
}

void export_csv_series(const MetricsRegistry& metrics, std::ostream& out) {
  out << "when_ms,metric,value\n";
  for (const auto& m : metrics.metrics()) {
    const std::string key = m->key();
    // Metric keys can contain commas between labels; quote the field.
    std::string quoted = "\"";
    for (char c : key) {
      if (c == '"') quoted += "\"\"";
      else quoted += c;
    }
    quoted += '"';
    for (const SeriesPoint& p : m->series) {
      out << p.when.count_ms() << ',' << quoted << ',' << num(p.value) << '\n';
    }
  }
}

}  // namespace aimes::obs
