// The per-simulation observability hub: one SpanTracer + one
// MetricsRegistry, plus the virtual-time sampling loop that turns live
// gauges into time series.
//
// A Recorder belongs to exactly one sim::Engine replica (same ownership rule
// as everything else in a trial). Instrumented layers hold a nullable
// `obs::Recorder*` and emit only when it is set, so the instrumentation has
// zero cost when observability is off and the simulation's event sequence is
// unchanged either way: sampler ticks only consume sequence numbers, which
// never reorders the other events at a timestamp.
#pragma once

#include <cstdint>
#include <string>

#include "common/id.hpp"
#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/engine.hpp"

namespace aimes::obs {

/// Knobs carried in core::AimesConfig.
struct ObservabilityOptions {
  bool enabled = false;
  /// Virtual-time distance between registry samples.
  common::SimDuration sample_interval = common::SimDuration::seconds(30);
};

/// Everything a trial keeps after the Recorder (and its engine) are gone:
/// summary stats always, rendered export artifacts on request.
struct Snapshot {
  std::uint64_t span_checksum = 0;
  std::size_t span_count = 0;
  std::size_t instant_count = 0;
  int max_span_depth = 0;
  std::size_t metric_count = 0;
  std::size_t sample_count = 0;
  // Rendered exports (empty unless requested — they can be large).
  std::string chrome_trace;
  std::string prometheus;
  std::string csv;
};

/// Deterministic merge of per-group snapshots from a sharded run.
///
/// Sharded worlds keep one Recorder per *group* (per site, plus one for the
/// origin/control group) rather than per shard: a group's span stream is a
/// pure function of the seed, while a shard's would interleave whichever
/// groups the ShardPlan packed together and change with the shard count.
/// Merging in group order — FNV-1a fold of the span checksums, sums for the
/// counts — therefore yields the same Snapshot for every `--shards` value,
/// which the sharded differential tests assert.
[[nodiscard]] Snapshot merge_snapshots(const std::vector<Snapshot>& parts);

class Recorder {
 public:
  explicit Recorder(sim::Engine& engine) : engine_(engine) {}
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  [[nodiscard]] SpanTracer& tracer() { return tracer_; }
  [[nodiscard]] const SpanTracer& tracer() const { return tracer_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }

  /// Samples immediately, then keeps sampling every `interval` for as long
  /// as other work remains queued. The loop parks itself when the sampler
  /// would be the only pending event, so `while (engine.step())`-style
  /// drivers still terminate; any later emission through note_activity()
  /// revives it.
  void start_sampling(common::SimDuration interval);

  /// Cancels the pending sampler tick (idempotent).
  void stop_sampling();

  /// Re-arms a parked sampler; instrumented layers call this via the
  /// emission helpers below so sampling resumes with the next burst of
  /// activity.
  void note_activity();

  /// Convenience emission helpers (all virtual-time-stamped with now()).
  SpanId begin_span(std::string name, std::string track, SpanId parent = kNoSpan) {
    note_activity();
    return tracer_.begin_span(engine_.now(), std::move(name), std::move(track), parent);
  }
  void end_span(SpanId id) { tracer_.end_span(id, engine_.now()); }
  void instant(std::string name, std::string track, std::vector<Attr> attrs = {}) {
    note_activity();
    tracer_.instant(engine_.now(), std::move(name), std::move(track), std::move(attrs));
  }

  /// Summary stats + optionally the rendered Chrome-trace / Prometheus / CSV
  /// artifacts.
  [[nodiscard]] Snapshot snapshot(bool render_artifacts = false) const;

 private:
  void tick();

  sim::Engine& engine_;
  SpanTracer tracer_;
  MetricsRegistry metrics_;
  common::SimDuration interval_ = common::SimDuration::zero();
  common::EventId pending_ = common::EventId::invalid();
  bool sampling_ = false;
};

}  // namespace aimes::obs
