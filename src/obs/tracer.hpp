// Causal span tracer.
//
// The paper's methodology is middleware self-introspection: AIMES is
// "instrumented to produce complete traces of an application execution"
// (§III.E). The flat pilot::Profiler keeps the original (when, entity, uid,
// state) rows that the TTC analysis consumes; this tracer records the
// *causal* structure on top — who ran what under whom — as hierarchical
// spans (campaign → tenant → strategy → pilot → unit → transfer) with
// begin/end virtual timestamps, parent links and key/value attributes, plus
// instant annotation events for faults and recovery actions.
//
// Determinism contract: spans are identified by creation order (a SpanId is
// an index into the span vector), all timestamps are virtual, and nothing
// here consults the wall clock or any RNG. A trace is therefore a pure
// function of (configuration, seed), and `checksum()` is bit-identical for
// the same trial regardless of how many ReplicaPool workers ran the sweep.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/time.hpp"

namespace aimes::obs {

/// Index+1 into the tracer's span vector; 0 is "no span" (no parent).
using SpanId = std::uint64_t;

inline constexpr SpanId kNoSpan = 0;

/// One key/value annotation on a span or instant event.
using Attr = std::pair<std::string, std::string>;

/// A closed or still-open span. `end == SimTime::max()` means open.
struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string name;
  /// Display track ("run", "pilot p.1", "units t1", "staging", ...). Chrome
  /// trace export maps each distinct track to a tid lane.
  std::string track;
  common::SimTime begin = common::SimTime::epoch();
  common::SimTime end = common::SimTime::max();
  std::vector<Attr> attrs;

  [[nodiscard]] bool closed() const { return end != common::SimTime::max(); }
};

/// A zero-duration annotation event (fault injected, pilot resubmitted, ...).
struct InstantEvent {
  std::string name;
  std::string track;
  common::SimTime when = common::SimTime::epoch();
  std::vector<Attr> attrs;
};

/// Records spans in creation order. Single-threaded per engine replica, like
/// everything else under the simulation's determinism contract.
class SpanTracer {
 public:
  /// Opens a span. `parent` may be kNoSpan for roots.
  SpanId begin_span(common::SimTime when, std::string name, std::string track,
                    SpanId parent = kNoSpan);

  /// Closes a span. Closing kNoSpan, an unknown or an already-closed id is a
  /// harmless no-op (instrumentation must never crash the simulation).
  void end_span(SpanId id, common::SimTime when);

  /// Attaches a key/value attribute; no-op for kNoSpan/unknown ids.
  void annotate(SpanId id, std::string key, std::string value);

  /// Records a zero-duration annotation event.
  void instant(common::SimTime when, std::string name, std::string track,
               std::vector<Attr> attrs = {});

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] const std::vector<InstantEvent>& instants() const { return instants_; }

  /// Depth of the deepest span (roots are depth 1); 0 when empty.
  [[nodiscard]] int max_depth() const;

  /// FNV-1a over every span (name, track, parent, begin, end, attrs) and
  /// instant event in creation order. The determinism witness: bit-identical
  /// across --jobs for the same (config, seed).
  [[nodiscard]] std::uint64_t checksum() const;

 private:
  std::vector<Span> spans_;
  std::vector<InstantEvent> instants_;
};

}  // namespace aimes::obs
