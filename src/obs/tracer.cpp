#include "obs/tracer.hpp"

#include <algorithm>

namespace aimes::obs {

namespace {

/// FNV-1a folding helpers shared by checksum(). Strings are hashed byte by
/// byte with a length prefix so "ab"+"c" never collides with "a"+"bc".
class Fnv {
 public:
  void mix_u64(std::uint64_t u) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (u >> (8 * i)) & 0xffu;
      hash_ *= 1099511628211ULL;
    }
  }
  void mix_str(const std::string& s) {
    mix_u64(s.size());
    for (unsigned char c : s) {
      hash_ ^= c;
      hash_ *= 1099511628211ULL;
    }
  }
  void mix_attrs(const std::vector<Attr>& attrs) {
    mix_u64(attrs.size());
    for (const Attr& a : attrs) {
      mix_str(a.first);
      mix_str(a.second);
    }
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ULL;
};

}  // namespace

SpanId SpanTracer::begin_span(common::SimTime when, std::string name, std::string track,
                              SpanId parent) {
  Span span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.name = std::move(name);
  span.track = std::move(track);
  span.begin = when;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void SpanTracer::end_span(SpanId id, common::SimTime when) {
  if (id == kNoSpan || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (span.closed()) return;
  span.end = std::max(when, span.begin);
}

void SpanTracer::annotate(SpanId id, std::string key, std::string value) {
  if (id == kNoSpan || id > spans_.size()) return;
  spans_[id - 1].attrs.emplace_back(std::move(key), std::move(value));
}

void SpanTracer::instant(common::SimTime when, std::string name, std::string track,
                         std::vector<Attr> attrs) {
  InstantEvent ev;
  ev.name = std::move(name);
  ev.track = std::move(track);
  ev.when = when;
  ev.attrs = std::move(attrs);
  instants_.push_back(std::move(ev));
}

int SpanTracer::max_depth() const {
  // Parents always precede children (a child's parent id is handed out
  // before begin_span of the child), so one forward pass suffices.
  std::vector<int> depth(spans_.size(), 1);
  int deepest = spans_.empty() ? 0 : 1;
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const SpanId p = spans_[i].parent;
    if (p != kNoSpan && p <= i) depth[i] = depth[p - 1] + 1;
    deepest = std::max(deepest, depth[i]);
  }
  return deepest;
}

std::uint64_t SpanTracer::checksum() const {
  Fnv fnv;
  fnv.mix_u64(spans_.size());
  for (const Span& s : spans_) {
    fnv.mix_u64(s.parent);
    fnv.mix_str(s.name);
    fnv.mix_str(s.track);
    fnv.mix_u64(static_cast<std::uint64_t>(s.begin.count_ms()));
    fnv.mix_u64(s.closed() ? static_cast<std::uint64_t>(s.end.count_ms()) : ~0ULL);
    fnv.mix_attrs(s.attrs);
  }
  fnv.mix_u64(instants_.size());
  for (const InstantEvent& ev : instants_) {
    fnv.mix_str(ev.name);
    fnv.mix_str(ev.track);
    fnv.mix_u64(static_cast<std::uint64_t>(ev.when.count_ms()));
    fnv.mix_attrs(ev.attrs);
  }
  return fnv.value();
}

}  // namespace aimes::obs
