#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace aimes::obs {

MetricHistogram::MetricHistogram(double lo, double hi, int buckets)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(std::max(1, buckets))),
      counts_(static_cast<std::size_t>(std::max(1, buckets)) + 1, 0) {
  assert(hi > lo);
}

void MetricHistogram::observe(double v) {
  sum_ += v;
  ++count_;
  if (v < lo_) {
    ++counts_.front();
    return;
  }
  auto i = static_cast<std::size_t>((v - lo_) / width_);
  if (i >= counts_.size() - 1) i = counts_.size() - 1;  // overflow bucket
  ++counts_[i];
}

double MetricHistogram::upper_bound(std::size_t i) const {
  if (i + 1 >= counts_.size()) return std::numeric_limits<double>::infinity();
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::string Metric::key() const {
  std::string out = name;
  if (!labels.empty()) {
    out += '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) out += ',';
      out += labels[i].first;
      out += "=\"";
      out += labels[i].second;
      out += '"';
    }
    out += '}';
  }
  return out;
}

Metric& MetricsRegistry::intern(const std::string& name, Labels labels, MetricKind kind) {
  Metric probe;
  probe.name = name;
  probe.labels = std::move(labels);
  const std::string key = probe.key();
  auto it = index_.find(key);
  if (it != index_.end()) return *metrics_[it->second];
  probe.kind = kind;
  metrics_.push_back(std::make_unique<Metric>(std::move(probe)));
  index_.emplace(key, metrics_.size() - 1);
  return *metrics_.back();
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  return intern(name, std::move(labels), MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  return intern(name, std::move(labels), MetricKind::kGauge).gauge;
}

MetricHistogram& MetricsRegistry::histogram(const std::string& name, Labels labels,
                                            double lo, double hi, int buckets) {
  Metric& m = intern(name, std::move(labels), MetricKind::kHistogram);
  if (!m.histogram) m.histogram = std::make_unique<MetricHistogram>(lo, hi, buckets);
  return *m.histogram;
}

void MetricsRegistry::gauge_callback(const std::string& name, Labels labels,
                                     std::function<double()> fn) {
  Metric& m = intern(name, std::move(labels), MetricKind::kCallbackGauge);
  m.callback = std::move(fn);
}

void MetricsRegistry::sample(common::SimTime when) {
  ++samples_;
  for (const auto& m : metrics_) {
    switch (m->kind) {
      case MetricKind::kCounter: m->series.push_back({when, m->counter.value()}); break;
      case MetricKind::kGauge: m->series.push_back({when, m->gauge.value()}); break;
      case MetricKind::kCallbackGauge:
        if (m->callback) m->series.push_back({when, m->callback()});
        break;
      case MetricKind::kHistogram: break;  // exposition-only
    }
  }
}

const Metric* MetricsRegistry::find(const std::string& key) const {
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : metrics_[it->second].get();
}

double MetricsRegistry::gauge_peak(const std::string& key) const {
  const Metric* m = find(key);
  return m != nullptr && m->kind == MetricKind::kGauge ? m->gauge.peak() : 0.0;
}

}  // namespace aimes::obs
