// Export backends for the observability subsystem:
//   * Chrome trace-event JSON — loads in Perfetto (ui.perfetto.dev) or
//     chrome://tracing. Spans become `X` (complete) events on one tid lane
//     per track, instant annotations become `i` events, and every sampled
//     metric becomes a `C` counter track.
//   * Prometheus text exposition — final values of every counter/gauge/
//     histogram, `# TYPE`-annotated, one line per (name, labels).
//   * CSV time series — long format `when_ms,metric,value`, one row per
//     sample point, for pandas/R post-processing.
//
// All exports iterate metrics and spans in registration/creation order, so
// the rendered bytes are deterministic for a given trial.
#pragma once

#include <ostream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace aimes::obs {

/// JSON-escapes `s` (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

/// Writes `{"traceEvents":[...]}`. Virtual milliseconds map to trace
/// microseconds (1 sim ms = 1000 trace µs); pid is always 1; tids are
/// assigned per distinct track in first-appearance order and named via `M`
/// metadata events. Open spans are clamped to the latest timestamp seen.
void export_chrome_trace(const SpanTracer& tracer, const MetricsRegistry& metrics,
                         std::ostream& out);

/// Prometheus-style text exposition of final metric values.
void export_prometheus(const MetricsRegistry& metrics, std::ostream& out);

/// Long-format CSV of every sampled series: `when_ms,metric,value`.
void export_csv_series(const MetricsRegistry& metrics, std::ostream& out);

}  // namespace aimes::obs
