// Campaign trial runner: the multi-tenant counterpart of exp::run_trial.
//
// One campaign trial = one fresh world running N heterogeneous bag-of-tasks
// tenants with seeded arrival times, under one of three sharing regimes:
// a shared pilot pool (the tentpole), private per-tenant fleets (concurrent
// but no reuse), or a strict sequential baseline (each tenant waits for its
// predecessor — the "run your campaign one app at a time" strawman the
// shared pool must beat). Like single-app trials, a campaign trial is a
// pure function of its seed, so cells run through sim::ReplicaPool with
// bit-identical aggregates for every worker count.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "core/aimes.hpp"
#include "exp/runner.hpp"

namespace aimes::exp {

/// How the campaign's tenants share (or don't share) pilots.
enum class CampaignMode {
  kSharedPool,     ///< Concurrent tenants lease from one PilotPool.
  kPrivatePilots,  ///< Concurrent tenants, fresh pilots each, no reuse.
  kSequential,     ///< One tenant at a time, in arrival order.
};

[[nodiscard]] std::string_view to_string(CampaignMode mode);

/// Parses "shared" / "private" / "sequential". Returns false on anything else.
[[nodiscard]] bool parse_campaign_mode(std::string_view text, CampaignMode& out);

/// Tenant arrival process.
struct ArrivalSpec {
  /// Poisson arrival rate per virtual hour; <= 0 switches to fixed spacing.
  double poisson_per_hour = 0.0;
  /// Deterministic inter-arrival gap used when the rate is unset.
  common::SimDuration fixed_spacing = common::SimDuration::minutes(20);
};

/// One campaign cell's shape.
struct CampaignSpec {
  int n_tenants = 4;
  /// Smallest tenant's task count. Tenant i runs base_tasks * {1,2,4}[i % 3]
  /// tasks, so every campaign mixes sizes (the concurrent-workload regime's
  /// heterogeneity, not N copies of one app).
  int base_tasks = 8;
  /// Gaussian vs uniform task durations (Table I's two workloads).
  bool gaussian_durations = false;
  /// Pilots per tenant plan.
  int n_pilots = 2;
  ArrivalSpec arrival;
  CampaignMode mode = CampaignMode::kSharedPool;
  /// Fair-share weights cycled across tenants (empty = all weight 1).
  std::vector<int> weights;
  /// Pool tuning, forwarded to core::CampaignOptions in the shared mode.
  common::SimDuration pool_idle_grace = common::SimDuration::minutes(10);
  double walltime_headroom = 2.0;
  /// SLO-aware admission ladder + site breakers + per-tenant attributes
  /// (policy disabled = the legacy always-admit path, bit-identical to
  /// pre-admission builds).
  core::AdmissionConfig admission;
  /// Pilot-chain recovery for lost campaign pilots (disabled by default).
  core::RecoveryPolicy recovery;
};

/// Tenant i's task count under `spec`'s size cycle.
[[nodiscard]] int campaign_tenant_tasks(const CampaignSpec& spec, int tenant_index);

/// Arrival offsets (relative to campaign start) for every tenant, in tenant
/// order. Tenant 0 arrives at zero; Poisson gaps come from the dedicated
/// "campaign/arrivals" RNG stream, so they are identical across modes for
/// one seed — the modes race on scheduling, not on luck.
[[nodiscard]] std::vector<common::SimDuration> campaign_arrivals(const CampaignSpec& spec,
                                                                 std::uint64_t seed);

/// Result of one campaign trial.
struct CampaignTrialResult {
  /// Every tenant planned and completed all its units. With admission
  /// enabled, tenants shed *by policy* do not count against success (the
  /// policy worked); a shed under a disabled policy still fails the trial.
  bool success = false;
  /// Campaign start to the last tenant's completion (all modes).
  common::SimDuration makespan = common::SimDuration::zero();
  /// Per-tenant TTC (arrival to completion), in tenant order. In sequential
  /// mode a tenant's TTC includes the time spent waiting for predecessors.
  std::vector<common::SimDuration> tenant_ttc;
  /// The full campaign report (shared/private modes only; sequential trials
  /// run through the single-app path and leave this default).
  core::CampaignReport report;
  /// Observability summary (all-zero unless tweaks.observability.enabled).
  obs::Snapshot obs;
  /// The trial never ran: a cancellation stop() fired before its turn.
  bool skipped = false;
};

/// Runs one campaign trial in a fresh world derived from `seed`.
[[nodiscard]] CampaignTrialResult run_campaign_trial(const CampaignSpec& spec,
                                                     std::uint64_t seed,
                                                     const WorldTweaks& tweaks = {});

/// Aggregated results of repeated campaign trials.
struct CampaignCellResult {
  CampaignSpec spec;
  common::Summary makespan_s;    ///< seconds, successful trials
  common::Summary tenant_ttc_s;  ///< seconds, every tenant of successful trials
  std::size_t failures = 0;
  /// Tenants shed by admission policy, summed over every trial.
  std::size_t tenants_shed = 0;
  /// Tenants that ran (admitted, possibly degraded), summed over trials.
  std::size_t tenants_admitted = 0;
  /// Units completed per makespan hour — raw throughput, SLO-blind. One
  /// sample per trial.
  common::Summary goodput_uph;
  /// Units completed *within their tenant's effective SLO deadline*
  /// (core::slo_deadline of the possibly-relaxed class) per makespan hour —
  /// the goodput the admission bench compares against the no-admission
  /// baseline: an open door completes everything eventually, but work
  /// delivered after the tenant's deadline is badput. One sample per trial.
  common::Summary slo_goodput_uph;
  /// Tenants that ran but blew their effective deadline (or failed), summed
  /// over every trial — the baseline's silent-starvation witness.
  std::size_t slo_violations = 0;
  /// Admission-queue wait per tenant that waited at all (seconds).
  common::Summary admission_wait_s;
  /// Jain's fairness index over admitted tenants' weight-normalized useful
  /// core-hours (core::jain_fairness), one sample per shared/private-mode
  /// trial: did the arbiter's weighted round-robin actually deliver each
  /// tenant its share of the pool?
  common::Summary fairness;
  /// Trials skipped by a cancellation stop() — when nonzero the cell was cut
  /// short and its checksum does not claim cross-run bit-identity.
  std::size_t trials_skipped = 0;
  /// FNV-1a over every trial's success flag, makespan, per-tenant TTCs,
  /// admission outcomes/shed reasons and waits (raw milliseconds), in trial
  /// order — the bit-identity witness the determinism tests and bench
  /// compare across `jobs` values.
  std::uint64_t checksum = 0;

  [[nodiscard]] bool cancelled() const { return trials_skipped > 0; }
};

/// One fold step of a campaign trial into `state` — the per-trial unit of
/// CampaignCellResult::checksum, shared with the streaming-progress prefix
/// fold so a watcher's running checksum lands exactly on the cell checksum
/// when the last trial completes. `state` starts at kChecksumSeed.
[[nodiscard]] std::uint64_t fold_campaign_trial(std::uint64_t state,
                                                const CampaignTrialResult& r);

/// Invoked per finished campaign trial from whichever pool worker ran it;
/// must be thread-safe when jobs > 1. Receives the trial index (seed order).
using CampaignProgress = std::function<void(int, const CampaignTrialResult&)>;

/// Runs `n_trials` campaign trials (seeds base_seed+1 ... base_seed+n) on a
/// sim::ReplicaPool of `jobs` workers (1 = serial, 0 = hardware concurrency)
/// and aggregates in seed order; aggregates and checksum are bit-identical
/// for every `jobs` value. `stop` (polled before each trial) cancels the
/// remaining trials; a cut-short cell reports trials_skipped > 0.
[[nodiscard]] CampaignCellResult run_campaign_cell(const CampaignSpec& spec, int n_trials,
                                                   std::uint64_t base_seed,
                                                   const WorldTweaks& tweaks = {},
                                                   int jobs = 1,
                                                   const CampaignProgress& progress = nullptr,
                                                   const StopToken& stop = nullptr);

}  // namespace aimes::exp
