#include "exp/runner.hpp"

#include <chrono>

#include "common/log.hpp"
#include "sim/replica_pool.hpp"
#include "skeleton/application.hpp"

namespace aimes::exp {

namespace {
/// Fills the engine self-profiling block from a finished world. Wall time
/// is the caller's measurement (simulation wall clock, not setup).
EngineStats engine_stats(core::Aimes& aimes, double wall_seconds) {
  EngineStats stats;
  stats.events_executed = aimes.world().executed();
  stats.peak_queued = aimes.world().peak_queued();
  stats.wall_seconds = wall_seconds;
  stats.events_per_second =
      wall_seconds > 1e-9 ? static_cast<double>(stats.events_executed) / wall_seconds : 0.0;
  return stats;
}
}  // namespace

TrialResult run_trial(const ExperimentSpec& experiment, int tasks, std::uint64_t seed,
                      const WorldTweaks& tweaks) {
  core::AimesConfig config;
  config.seed = seed;
  config.warmup = tweaks.warmup;
  if (!tweaks.testbed.empty()) config.testbed = tweaks.testbed;
  config.execution.units.unit_failure_probability = tweaks.unit_failure_probability;
  config.faults = tweaks.faults;
  config.observability = tweaks.observability;
  config.shards = tweaks.shards;
  config.grid_sites = tweaks.grid_sites;
  config.shard_workers = tweaks.shard_workers;

  const auto wall_start = std::chrono::steady_clock::now();
  core::Aimes aimes(config);
  aimes.start();

  const auto spec = experiment.make_skeleton(tasks);
  const auto app = skeleton::materialize(spec, seed);

  TrialResult result;
  auto run = aimes.run(app, experiment.make_planner_config());
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  result.engine = engine_stats(aimes, wall_seconds);
  if (aimes.recorder() != nullptr) result.obs = aimes.recorder()->snapshot(tweaks.obs_artifacts);
  if (!run.ok()) {
    common::Log::warn("exp", "trial failed to plan: " + run.error());
    return result;
  }
  result.report = std::move(run->report);
  return result;
}

CellResult run_cell(const ExperimentSpec& experiment, int tasks, int n_trials,
                    std::uint64_t base_seed, const WorldTweaks& tweaks,
                    const std::function<void(int, const TrialResult&)>& progress, int jobs) {
  CellResult cell;
  cell.experiment = experiment;
  cell.tasks = tasks;
  if (n_trials <= 0) return cell;
  // Each trial is a pure function of its seed; the pool returns results in
  // seed order no matter which worker finishes first, so the serial
  // aggregation below sees exactly the sequence the legacy loop saw.
  sim::ReplicaPool pool(jobs < 0 ? 1u : static_cast<unsigned>(jobs));
  const std::vector<TrialResult> results = pool.map<TrialResult>(
      static_cast<std::size_t>(n_trials), [&](std::size_t t) {
        return run_trial(experiment, tasks, base_seed + static_cast<std::uint64_t>(t) + 1,
                         tweaks);
      });
  cell.span_checksum = 1469598103934665603ULL;  // FNV offset basis
  for (int t = 0; t < n_trials; ++t) {
    const TrialResult& r = results[static_cast<std::size_t>(t)];
    cell.span_checksum ^= r.obs.span_checksum;
    cell.span_checksum *= 1099511628211ULL;
    cell.events_executed += r.engine.events_executed;
    cell.wall_seconds += r.engine.wall_seconds;
    if (r.report.success) {
      cell.ttc_s.add(r.report.ttc.ttc.to_seconds());
      cell.tw_s.add(r.report.ttc.tw.to_seconds());
      cell.tx_s.add(r.report.ttc.tx.to_seconds());
      cell.ts_s.add(r.report.ttc.ts.to_seconds());
    } else {
      ++cell.failures;
    }
    if (progress) progress(t, r);
  }
  return cell;
}

}  // namespace aimes::exp
