#include "exp/runner.hpp"

#include <chrono>

#include "common/log.hpp"
#include "sim/replica_pool.hpp"
#include "skeleton/application.hpp"

namespace aimes::exp {

namespace {
/// Fills the engine self-profiling block from a finished world. Wall time
/// is the caller's measurement (simulation wall clock, not setup).
EngineStats engine_stats(core::Aimes& aimes, double wall_seconds) {
  EngineStats stats;
  stats.events_executed = aimes.world().executed();
  stats.peak_queued = aimes.world().peak_queued();
  stats.wall_seconds = wall_seconds;
  stats.events_per_second =
      wall_seconds > 1e-9 ? static_cast<double>(stats.events_executed) / wall_seconds : 0.0;
  return stats;
}
}  // namespace

AppSpec make_app_spec(const ExperimentSpec& experiment, int tasks) {
  AppSpec app;
  app.skeleton = experiment.make_skeleton(tasks);
  app.planner = experiment.make_planner_config();
  app.label = experiment.label;
  return app;
}

TrialResult run_trial(const AppSpec& app, std::uint64_t seed, const WorldTweaks& tweaks) {
  core::AimesConfig config;
  config.seed = seed;
  config.warmup = tweaks.warmup;
  if (!tweaks.testbed.empty()) config.testbed = tweaks.testbed;
  config.execution.units.unit_failure_probability = tweaks.unit_failure_probability;
  config.execution.recovery = tweaks.recovery;
  config.faults = tweaks.faults;
  config.observability = tweaks.observability;
  config.sharding = tweaks.sharding;

  const auto wall_start = std::chrono::steady_clock::now();
  core::Aimes aimes(config);
  aimes.start();

  const auto materialized = skeleton::materialize(app.skeleton, seed);

  TrialResult result;
  auto run = aimes.run(materialized, app.planner);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  result.engine = engine_stats(aimes, wall_seconds);
  if (aimes.recorder() != nullptr) result.obs = aimes.recorder()->snapshot(tweaks.obs_artifacts);
  if (!run.ok()) {
    common::Log::warn("exp", "trial failed to plan: " + run.error());
    return result;
  }
  result.report = std::move(run->report);
  return result;
}

TrialResult run_trial(const ExperimentSpec& experiment, int tasks, std::uint64_t seed,
                      const WorldTweaks& tweaks) {
  return run_trial(make_app_spec(experiment, tasks), seed, tweaks);
}

CellResult run_cell(const AppSpec& app, int n_trials, std::uint64_t base_seed,
                    const WorldTweaks& tweaks, const TrialProgress& progress, int jobs,
                    const StopToken& stop) {
  CellResult cell;
  cell.experiment.label = app.label;
  for (const auto& stage : app.skeleton.stages) cell.tasks += stage.tasks;
  cell.tasks *= app.skeleton.iterations > 1 ? app.skeleton.iterations : 1;
  if (n_trials <= 0) return cell;
  // Each trial is a pure function of its seed; the pool returns results in
  // seed order no matter which worker finishes first, so the serial
  // aggregation below sees exactly the sequence the legacy loop saw.
  // Progress fires from whichever worker finished the trial (callers that
  // aggregate must lock); the stop token is polled before each trial starts,
  // so cancellation lands at trial granularity.
  sim::ReplicaPool pool(jobs < 0 ? 1u : static_cast<unsigned>(jobs));
  const std::vector<TrialResult> results = pool.map<TrialResult>(
      static_cast<std::size_t>(n_trials), [&](std::size_t t) {
        if (stop && stop()) {
          TrialResult skipped;
          skipped.skipped = true;
          return skipped;
        }
        TrialResult r =
            run_trial(app, base_seed + static_cast<std::uint64_t>(t) + 1, tweaks);
        if (progress) progress(static_cast<int>(t), r);
        return r;
      });
  cell.span_checksum = kChecksumSeed;
  for (int t = 0; t < n_trials; ++t) {
    const TrialResult& r = results[static_cast<std::size_t>(t)];
    if (r.skipped) {
      ++cell.trials_skipped;
      continue;
    }
    cell.span_checksum = fold_trial_span(cell.span_checksum, r.obs.span_checksum);
    cell.events_executed += r.engine.events_executed;
    cell.wall_seconds += r.engine.wall_seconds;
    if (r.report.success) {
      cell.ttc_s.add(r.report.ttc.ttc.to_seconds());
      cell.tw_s.add(r.report.ttc.tw.to_seconds());
      cell.tx_s.add(r.report.ttc.tx.to_seconds());
      cell.ts_s.add(r.report.ttc.ts.to_seconds());
      cell.faults_n.add(static_cast<double>(r.report.faults.total()));
      cell.resubmitted_n.add(static_cast<double>(r.report.recovery.pilots_resubmitted));
    } else {
      ++cell.failures;
    }
  }
  return cell;
}

CellResult run_cell(const ExperimentSpec& experiment, int tasks, int n_trials,
                    std::uint64_t base_seed, const WorldTweaks& tweaks,
                    const TrialProgress& progress, int jobs, const StopToken& stop) {
  CellResult cell = run_cell(make_app_spec(experiment, tasks), n_trials, base_seed, tweaks,
                             progress, jobs, stop);
  cell.experiment = experiment;
  cell.tasks = tasks;
  return cell;
}

}  // namespace aimes::exp
