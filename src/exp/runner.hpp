// Trial runner: the reproducible unit of the virtual laboratory.
//
// One *trial* = one fresh world (fresh testbed, fresh background-load
// realization from the trial's seed) running one application under one
// experiment's strategy. Repeated trials with distinct seeds reproduce the
// paper's "each application was run many times depending on run-to-run
// fluctuation"; a year of machine-room dynamics compresses into seeds.
#pragma once

#include <cstdint>
#include <functional>

#include "common/stats.hpp"
#include "core/aimes.hpp"
#include "exp/matrix.hpp"

namespace aimes::exp {

/// Result of one trial: the execution layer's full report, verbatim. A trial
/// that fails to plan carries a default report (success == false). Embedding
/// the report (instead of hand-copying fields) means new report fields —
/// recovery stats, fault counts, metrics — reach the experiment layer
/// without edits in two places.
struct TrialResult {
  core::ExecutionReport report;
};

/// Aggregated results of repeated trials of one (experiment, size) cell.
struct CellResult {
  ExperimentSpec experiment;
  int tasks = 0;
  common::Summary ttc_s;  // seconds
  common::Summary tw_s;
  common::Summary tx_s;
  common::Summary ts_s;
  std::size_t failures = 0;  // trials that did not complete all units
};

/// Overrides applied to every trial's world.
struct WorldTweaks {
  /// Shrink or grow the default warmup (longer warmup = richer wait history).
  common::SimDuration warmup = common::SimDuration::hours(6);
  /// Replace the testbed entirely (empty = standard five-site pool).
  std::vector<cluster::TestbedSiteSpec> testbed;
  /// Failure injection for reliability experiments.
  double unit_failure_probability = 0.0;
};

/// Runs one trial in a fresh world derived from `seed`.
[[nodiscard]] TrialResult run_trial(const ExperimentSpec& experiment, int tasks,
                                    std::uint64_t seed, const WorldTweaks& tweaks = {});

/// Runs `n_trials` trials (seeds base_seed+1 ... base_seed+n) and aggregates.
/// `progress` (optional) is invoked for every trial, in trial order.
///
/// `jobs` controls parallelism: 1 (default) is the legacy serial loop, 0
/// means hardware concurrency, N > 1 runs trials on a sim::ReplicaPool of N
/// workers. Each trial builds its own world from its own seed, and results
/// are aggregated in seed order, so the aggregate is bit-identical for every
/// `jobs` value — asserted by the reproducibility tests.
[[nodiscard]] CellResult run_cell(const ExperimentSpec& experiment, int tasks, int n_trials,
                                  std::uint64_t base_seed, const WorldTweaks& tweaks = {},
                                  const std::function<void(int, const TrialResult&)>&
                                      progress = nullptr,
                                  int jobs = 1);

}  // namespace aimes::exp
