// Trial runner: the reproducible unit of the virtual laboratory.
//
// One *trial* = one fresh world (fresh testbed, fresh background-load
// realization from the trial's seed) running one application under one
// experiment's strategy. Repeated trials with distinct seeds reproduce the
// paper's "each application was run many times depending on run-to-run
// fluctuation"; a year of machine-room dynamics compresses into seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/stats.hpp"
#include "core/aimes.hpp"
#include "exp/matrix.hpp"

namespace aimes::exp {

/// Result of one trial: the execution layer's full report, verbatim. A trial
/// that fails to plan carries a default report (success == false). Embedding
/// the report (instead of hand-copying fields) means new report fields —
/// recovery stats, fault counts, metrics — reach the experiment layer
/// without edits in two places.
/// Engine self-profiling of one trial: how the *simulator* performed, as
/// opposed to what the simulated middleware did. Wall-clock fields are
/// measured on the worker that ran the trial and excluded from checksums
/// (they vary run to run; the simulation itself does not).
struct EngineStats {
  std::size_t events_executed = 0;
  std::size_t peak_queued = 0;
  double wall_seconds = 0.0;
  /// events_executed / wall_seconds (0 when wall time is unmeasurably small).
  double events_per_second = 0.0;
};

struct TrialResult {
  core::ExecutionReport report;
  EngineStats engine;
  /// Observability summary (all-zero unless tweaks.observability.enabled);
  /// rendered artifacts only when tweaks.obs_artifacts was set.
  obs::Snapshot obs;
  /// The trial never ran: a cancellation stop() fired before its turn.
  /// Skipped trials are excluded from every cell aggregate.
  bool skipped = false;
};

/// Aggregated results of repeated trials of one (experiment, size) cell.
struct CellResult {
  ExperimentSpec experiment;
  int tasks = 0;
  common::Summary ttc_s;  // seconds
  common::Summary tw_s;
  common::Summary tx_s;
  common::Summary ts_s;
  /// Faults injected / pilots resubmitted per successful trial (zero-heavy
  /// unless the tweaks carry a fault plan).
  common::Summary faults_n;
  common::Summary resubmitted_n;
  std::size_t failures = 0;  // trials that did not complete all units
  /// Trials skipped by a cancellation stop() — when nonzero the cell was cut
  /// short and its checksum does not claim cross-run bit-identity.
  std::size_t trials_skipped = 0;
  /// FNV-1a fold of every completed trial's span checksum in seed order —
  /// the bit-identity witness across `jobs` (folds zeros when observability
  /// is off, so it is still stable, just uninformative).
  std::uint64_t span_checksum = 0;
  /// Engine self-profiling summed over the cell's trials.
  std::size_t events_executed = 0;
  double wall_seconds = 0.0;

  [[nodiscard]] bool cancelled() const { return trials_skipped > 0; }
};

/// Overrides applied to every trial's world.
struct WorldTweaks {
  /// Shrink or grow the default warmup (longer warmup = richer wait history).
  common::SimDuration warmup = common::SimDuration::hours(6);
  /// Replace the testbed entirely (empty = standard five-site pool).
  std::vector<cluster::TestbedSiteSpec> testbed;
  /// Failure injection for reliability experiments.
  double unit_failure_probability = 0.0;
  /// Fault plan injected into every trial's world (plan empty = none):
  /// explicit launch/kill/outage/transfer events plus stochastic rates, all
  /// seeded from the trial seed.
  core::FaultConfig faults;
  /// Execution-Manager pilot-loss recovery (disabled by default, matching
  /// historical trials; front ends arm it when a fault plan is present).
  core::RecoveryPolicy recovery;
  /// Span tracer + metrics registry + sampler (off by default; a trial with
  /// observability on is event-for-event identical to one without).
  core::ObsConfig observability;
  /// Also render the Chrome-trace/Prometheus/CSV artifacts into the trial's
  /// Snapshot (they can be large; summaries are always filled).
  bool obs_artifacts = false;
  /// Intra-trial sharding, forwarded to core::AimesConfig (all zero = legacy
  /// single-engine drive; bit-identical for every shard count — the
  /// `--shards` axis, orthogonal to the across-trial `jobs` axis). Benches
  /// sweeping `jobs` keep shard_workers at 1.
  core::ShardingConfig sharding;
};

/// One application under one planning strategy — the general form of a cell,
/// of which ExperimentSpec (Table I's four rows) is a special case. The
/// daemon and aimes-run both land here, so a profile+strategy submitted over
/// HTTP runs the exact trial the CLI runs.
struct AppSpec {
  skeleton::SkeletonSpec skeleton;
  core::PlannerConfig planner;
  std::string label;
};

/// The AppSpec equivalent of `experiment` x `tasks`: same skeleton, same
/// planner inputs, bit-identical trials (asserted by the request tests).
[[nodiscard]] AppSpec make_app_spec(const ExperimentSpec& experiment, int tasks);

/// FNV-1a offset basis: the initial state of every cell checksum fold. A
/// live RunProgress can start here and fold completed trials in seed order
/// to converge on the exact CellResult / CampaignCellResult checksum.
inline constexpr std::uint64_t kChecksumSeed = 1469598103934665603ULL;

/// One fold step of a trial's span checksum into `state` — shared by the
/// cell aggregation and the streaming-progress prefix fold, so the running
/// checksum a watcher sees equals CellResult::span_checksum once the last
/// trial lands.
[[nodiscard]] constexpr std::uint64_t fold_trial_span(std::uint64_t state,
                                                      std::uint64_t span_checksum) {
  return (state ^ span_checksum) * 1099511628211ULL;
}

/// Invoked per finished trial from whichever pool worker ran it; must be
/// thread-safe when jobs > 1. Receives the trial index (seed order).
using TrialProgress = std::function<void(int, const TrialResult&)>;
/// Polled before each trial starts; returning true skips the remaining
/// trials (cooperative cancellation at trial granularity).
using StopToken = std::function<bool()>;

/// Runs one trial in a fresh world derived from `seed`.
[[nodiscard]] TrialResult run_trial(const AppSpec& app, std::uint64_t seed,
                                    const WorldTweaks& tweaks = {});
[[nodiscard]] TrialResult run_trial(const ExperimentSpec& experiment, int tasks,
                                    std::uint64_t seed, const WorldTweaks& tweaks = {});

/// Runs `n_trials` trials (seeds base_seed+1 ... base_seed+n) and aggregates.
///
/// `jobs` controls parallelism: 1 (default) is the legacy serial loop, 0
/// means hardware concurrency, N > 1 runs trials on a sim::ReplicaPool of N
/// workers. Each trial builds its own world from its own seed, and results
/// are aggregated in seed order, so the aggregate is bit-identical for every
/// `jobs` value — asserted by the reproducibility tests.
[[nodiscard]] CellResult run_cell(const AppSpec& app, int n_trials,
                                  std::uint64_t base_seed, const WorldTweaks& tweaks = {},
                                  const TrialProgress& progress = nullptr, int jobs = 1,
                                  const StopToken& stop = nullptr);
[[nodiscard]] CellResult run_cell(const ExperimentSpec& experiment, int tasks, int n_trials,
                                  std::uint64_t base_seed, const WorldTweaks& tweaks = {},
                                  const TrialProgress& progress = nullptr, int jobs = 1,
                                  const StopToken& stop = nullptr);

}  // namespace aimes::exp
