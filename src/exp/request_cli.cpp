#include "exp/request_cli.hpp"

namespace aimes::exp {

void declare_request_options(common::cli::Parser& cli, RunRequest& req, bool& quick) {
  cli.string_option("--skeleton", req.skeleton_file, "skeleton application config file",
                    "FILE");
  cli.string_option("--profile", req.profile,
                    "built-in profile when no --skeleton is given:\n"
                    "bag-uniform | bag-gaussian | montage | blast |\n"
                    "cybershake | mapreduce (default bag-gaussian)",
                    "NAME");
  cli.int_option("--tasks", req.tasks, 1, 10000000,
                 "application size for built-in profiles (128)");
  cli.string_option("--testbed", req.testbed_file,
                    "resource pool config (default: paper's 5 sites)", "FILE");
  cli.string_option("--binding", req.strategy.binding, "early | late (late)", "B");
  cli.string_option("--scheduler", req.strategy.scheduler,
                    "unit scheduler: direct | round-robin | backfill\n"
                    "(default: derived from --binding)",
                    "K");
  cli.int_option("--pilots", req.strategy.pilots, 1, 4096, "number of pilots (3)");
  cli.string_option("--selection", req.strategy.selection,
                    "random | predicted (predicted)", "S");
  cli.int_option("--experiment", req.strategy.experiment, 1, 4,
                 "run a Table I experiment row (1-4); fixes the\n"
                 "workload and strategy, overriding --profile,\n"
                 "--binding, --pilots, and --selection");
  cli.uint64_option("--seed", req.seed, "world/application seed (42)", "S");
  cli.int_option("--trials", req.trials, 1, 1000000,
                 "sweep mode: run N replicas seeded S+1..S+N and\n"
                 "aggregate TTC (default 1 = single run)");
  cli.int_option("--jobs", req.jobs, 0, 4096,
                 "sweep worker threads (default: hardware\n"
                 "concurrency; 1 = serial). Aggregates are\n"
                 "bit-identical for every M",
                 "M");
  cli.int_option("--shards", req.sharding.shards, 0, 4096,
                 "intra-trial shards: partition each world's sites\n"
                 "across N engines driven in conservative lock-step\n"
                 "windows (default 0 = classic single-engine drive).\n"
                 "Results are bit-identical for every N >= 1",
                 "N");
  cli.int_option("--grid-sites", req.sharding.grid_sites, 0, 100000,
                 "ambient background sites spread across the shards\n"
                 "(default 0); the load --shards parallelizes");
  cli.int_option("--shard-workers", req.sharding.shard_workers, 0, 4096,
                 "worker threads per sharded trial (default 0 =\n"
                 "min(shards, hardware)); wall clock only, never\n"
                 "results. Keep at 1 when sweeping --jobs",
                 "W");
  cli.double_option("--warmup", req.warmup_hours, 0.0, 24.0 * 365.0,
                    "background warmup hours (6)", "H");
  cli.double_option("--deadline", req.deadline_s, 0.1, 24.0 * 3600.0 * 365.0,
                    "daemon submissions: fail the run if still queued,\n"
                    "or cut it at the next trial boundary, this many\n"
                    "wall seconds after submit (default 0 = none);\n"
                    "local runs ignore it",
                    "S");
  cli.int_option("--campaign", req.campaign.tenants, 2, 256,
                 "campaign mode: N tenants with sizes cycled from\n"
                 "--tasks x {1,2,4}; plans each arrival against a\n"
                 "shared pilot pool (see --campaign-mode)");
  cli.custom_option("--arrival", "SPEC",
                    "campaign arrival process: poisson:RATE (tenants\n"
                    "per hour) or fixed:SECONDS (default fixed:1200)",
                    [&req](const std::string& value) {
                      return parse_arrival_spec(value, req.campaign.arrival);
                    });
  cli.custom_option("--campaign-mode", "M", "shared | private | sequential (shared)",
                    [&req](const std::string& value) -> common::Status {
                      if (!parse_campaign_mode(value, req.campaign.mode)) {
                        return common::Status::error(
                            "expected shared, private, or sequential");
                      }
                      return {};
                    });
  cli.flag("--admission", req.admission.enabled,
           "campaign: arm the SLO-aware admission ladder\n"
           "(admit -> queue -> degrade -> shed)");
  cli.custom_option("--quota", "C[:U[:H]]",
                    "campaign: per-tenant quota as concurrent cores,\n"
                    "optionally :units and :core-hours (0 = unlimited);\n"
                    "implies --admission",
                    [&req](const std::string& value) {
                      return parse_quota(value, req.admission.quota);
                    });
  cli.string_option("--slo", req.admission.slo,
                    "campaign: declared tenant SLO class, interactive |\n"
                    "standard | batch (standard); implies --admission",
                    "CLASS");
  cli.double_option("--max-queue-wait", req.admission.max_queue_wait_s, 1.0, 1e9,
                    "campaign: admission queue wait bound in seconds\n"
                    "(1800); implies --admission",
                    "S");
  cli.double_option("--breaker-threshold", req.admission.breaker_threshold, 0.01, 1.0,
                    "campaign: EWMA failure score that trips a site's\n"
                    "breaker (0.6); any --breaker-* arms the breakers",
                    "X");
  cli.int_option("--breaker-min-events", req.admission.breaker_min_events, 1, 1000000,
                 "campaign: events recorded at a site before its\n"
                 "breaker may trip (3)");
  cli.double_option("--breaker-cooldown", req.admission.breaker_cooldown_s, 1.0, 1e9,
                    "campaign: seconds an open breaker blocks a site\n"
                    "before the half-open probe (600)",
                    "S");
  cli.string_option("--fault-plan", req.faults.plan_file,
                    "fault-injection plan config ([fault.*] sections);\n"
                    "enables Execution-Manager recovery",
                    "FILE");
  cli.double_option("--pilot-failure-rate", req.faults.pilot_failure_rate, 0.0, 1.0,
                    "probability each pilot submission is rejected (0)", "P");
  cli.flag("--quick", quick,
           "small fast run: 16 tasks, 2 pilots, 1 h warmup\n"
           "(each unless explicitly overridden)");

  // Declarative exclusions shared by every front end: Table I rows fix the
  // workload, campaigns build their own size-cycled bags.
  cli.conflicts("--experiment", "--skeleton");
  cli.conflicts("--experiment", "--campaign");
  cli.conflicts("--campaign", "--skeleton");
  for (const char* campaign_only :
       {"--arrival", "--campaign-mode", "--admission", "--quota", "--slo", "--max-queue-wait",
        "--breaker-threshold", "--breaker-min-events", "--breaker-cooldown"}) {
    cli.requires_option(campaign_only, "--campaign");
  }
}

void finalize_request_options(const common::cli::Parser& cli, RunRequest& req, bool quick) {
  if (quick) {
    if (!cli.seen("--tasks")) req.tasks = 16;
    if (!cli.seen("--pilots")) req.strategy.pilots = 2;
    if (!cli.seen("--warmup")) req.warmup_hours = 1.0;
  }
  if (cli.seen("--quota") || cli.seen("--slo") || cli.seen("--max-queue-wait")) {
    req.admission.enabled = true;
  }
  if (cli.seen("--breaker-threshold") || cli.seen("--breaker-min-events") ||
      cli.seen("--breaker-cooldown")) {
    req.admission.breaker = true;
  }
}

}  // namespace aimes::exp
