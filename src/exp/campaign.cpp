#include "exp/campaign.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "sim/replica_pool.hpp"
#include "skeleton/application.hpp"
#include "skeleton/profiles.hpp"

namespace aimes::exp {

namespace {

/// FNV-1a over the raw bytes of successive int64 values.
class Fnv {
 public:
  Fnv() = default;
  explicit Fnv(std::uint64_t seed) : hash_(seed) {}
  void mix(std::int64_t v) {
    auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (u >> (8 * i)) & 0xffu;
      hash_ *= 1099511628211ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = kChecksumSeed;
};

core::PlannerConfig campaign_planner_config(const CampaignSpec& spec) {
  core::PlannerConfig cfg;
  cfg.binding = core::Binding::kLate;
  cfg.scheduler = pilot::UnitSchedulerKind::kBackfill;
  cfg.n_pilots = spec.n_pilots;
  cfg.selection = core::SiteSelection::kRandom;
  return cfg;
}

/// Tenant i's application: a size-cycled bag with a tenant-unique name (so
/// staged files never alias across tenants) materialized from a per-tenant
/// stream of the trial seed.
skeleton::SkeletonApplication make_tenant_app(const CampaignSpec& spec, int tenant_index,
                                              std::uint64_t seed) {
  const int tasks = campaign_tenant_tasks(spec, tenant_index);
  auto skel = spec.gaussian_durations ? skeleton::profiles::bag_gaussian(tasks)
                                      : skeleton::profiles::bag_uniform(tasks);
  skel.name = "t" + std::to_string(tenant_index + 1) + "-" + skel.name;
  const std::uint64_t app_seed =
      common::Rng::stream(seed, "campaign/tenant/" + std::to_string(tenant_index)).next_u64();
  return skeleton::materialize(skel, app_seed);
}

int tenant_weight(const CampaignSpec& spec, int tenant_index) {
  if (spec.weights.empty()) return 1;
  return spec.weights[static_cast<std::size_t>(tenant_index) % spec.weights.size()];
}

/// Cycles `values` across tenants like `weights`; `fallback` when empty.
template <typename T>
T cycled(const std::vector<T>& values, int tenant_index, T fallback) {
  if (values.empty()) return fallback;
  return values[static_cast<std::size_t>(tenant_index) % values.size()];
}

}  // namespace

std::string_view to_string(CampaignMode mode) {
  switch (mode) {
    case CampaignMode::kSharedPool: return "shared";
    case CampaignMode::kPrivatePilots: return "private";
    case CampaignMode::kSequential: return "sequential";
  }
  return "?";
}

bool parse_campaign_mode(std::string_view text, CampaignMode& out) {
  if (text == "shared") {
    out = CampaignMode::kSharedPool;
  } else if (text == "private") {
    out = CampaignMode::kPrivatePilots;
  } else if (text == "sequential") {
    out = CampaignMode::kSequential;
  } else {
    return false;
  }
  return true;
}

int campaign_tenant_tasks(const CampaignSpec& spec, int tenant_index) {
  return spec.base_tasks * (1 << (tenant_index % 3));
}

std::vector<common::SimDuration> campaign_arrivals(const CampaignSpec& spec,
                                                   std::uint64_t seed) {
  std::vector<common::SimDuration> out;
  out.reserve(static_cast<std::size_t>(spec.n_tenants));
  common::Rng rng = common::Rng::stream(seed, "campaign/arrivals");
  common::SimDuration at = common::SimDuration::zero();
  for (int i = 0; i < spec.n_tenants; ++i) {
    out.push_back(at);
    if (spec.arrival.poisson_per_hour > 0.0) {
      const double gap_s = rng.exponential(3600.0 / spec.arrival.poisson_per_hour);
      at += common::SimDuration::seconds(gap_s);
    } else {
      at += spec.arrival.fixed_spacing;
    }
  }
  return out;
}

CampaignTrialResult run_campaign_trial(const CampaignSpec& spec, std::uint64_t seed,
                                       const WorldTweaks& tweaks) {
  core::AimesConfig config;
  config.seed = seed;
  config.warmup = tweaks.warmup;
  if (!tweaks.testbed.empty()) config.testbed = tweaks.testbed;
  config.execution.units.unit_failure_probability = tweaks.unit_failure_probability;
  config.faults = tweaks.faults;
  config.observability = tweaks.observability;
  config.sharding = tweaks.sharding;

  core::Aimes aimes(config);
  aimes.start();

  const auto arrivals = campaign_arrivals(spec, seed);
  const auto planner = campaign_planner_config(spec);

  CampaignTrialResult result;
  if (spec.mode == CampaignMode::kSequential) {
    // Baseline: the campaign as a user without a multi-tenant executor would
    // run it — each application planned and executed alone, the next one
    // starting only after its predecessor finished (or at its own arrival
    // time, whichever is later).
    const common::SimTime start = aimes.engine().now();
    common::SimTime last_finish = start;
    result.success = true;
    for (int i = 0; i < spec.n_tenants; ++i) {
      const common::SimTime arrival = start + arrivals[static_cast<std::size_t>(i)];
      aimes.run_world_until(arrival);
      const auto app = make_tenant_app(spec, i, seed);
      auto run = aimes.run(app, planner);
      common::SimTime finish = aimes.engine().now();
      if (run.ok() && run->report.success) {
        finish = run->report.ttc.run_finished;
      } else {
        if (!run.ok()) {
          common::Log::warn("exp", "campaign tenant failed to plan: " + run.error());
        }
        result.success = false;
      }
      result.tenant_ttc.push_back(finish - arrival);
      last_finish = std::max(last_finish, finish);
    }
    result.makespan = last_finish - start;
    if (aimes.recorder() != nullptr) {
      result.obs = aimes.recorder()->snapshot(tweaks.obs_artifacts);
    }
    return result;
  }

  std::vector<core::CampaignTenantSpec> tenants;
  tenants.reserve(static_cast<std::size_t>(spec.n_tenants));
  for (int i = 0; i < spec.n_tenants; ++i) {
    core::CampaignTenantSpec t;
    t.app = make_tenant_app(spec, i, seed);
    t.name = "t" + std::to_string(i + 1);
    t.arrival = arrivals[static_cast<std::size_t>(i)];
    t.weight = tenant_weight(spec, i);
    t.priority = cycled(spec.admission.priorities, i, 0);
    t.slo = cycled(spec.admission.slos, i, core::SloClass::kStandard);
    t.quota = cycled(spec.admission.quotas, i, core::TenantQuota{});
    tenants.push_back(std::move(t));
  }

  core::CampaignOptions options;
  options.planner = planner;
  options.sharing = spec.mode == CampaignMode::kPrivatePilots
                        ? core::CampaignSharing::kPrivatePilots
                        : core::CampaignSharing::kSharedPool;
  options.pool_idle_grace = spec.pool_idle_grace;
  options.walltime_headroom = spec.walltime_headroom;
  options.units.unit_failure_probability = tweaks.unit_failure_probability;
  options.admission = spec.admission.policy;
  options.breaker = spec.admission.breaker;
  options.recovery = spec.recovery;

  auto run = aimes.run_campaign(std::move(tenants), options);
  if (aimes.recorder() != nullptr) result.obs = aimes.recorder()->snapshot(tweaks.obs_artifacts);
  if (!run.ok()) {
    common::Log::warn("exp", "campaign trial failed: " + run.error());
    return result;
  }
  result.report = std::move(run->report);
  result.success = result.report.success;
  if (!result.success && spec.admission.policy.enabled) {
    // Shedding per policy is the policy working, not a failure; only an
    // *admitted* tenant that did not complete fails the trial.
    result.success = true;
    for (const auto& t : result.report.tenants) {
      if (t.admission != core::AdmissionOutcome::kShed && !t.success) {
        result.success = false;
        break;
      }
    }
  }
  result.makespan = result.report.makespan;
  for (const auto& t : result.report.tenants) result.tenant_ttc.push_back(t.ttc.ttc);
  return result;
}

std::uint64_t fold_campaign_trial(std::uint64_t state, const CampaignTrialResult& r) {
  Fnv fnv(state);
  fnv.mix(r.success ? 1 : 0);
  fnv.mix(r.makespan.count_ms());
  for (const auto& ttc : r.tenant_ttc) fnv.mix(ttc.count_ms());
  for (const auto& t : r.report.tenants) {
    fnv.mix(static_cast<std::int64_t>(t.admission));
    fnv.mix(static_cast<std::int64_t>(t.shed_reason));
    fnv.mix(t.admission_wait.count_ms());
    fnv.mix(t.granted_pilots);
  }
  return fnv.value();
}

CampaignCellResult run_campaign_cell(const CampaignSpec& spec, int n_trials,
                                     std::uint64_t base_seed, const WorldTweaks& tweaks,
                                     int jobs, const CampaignProgress& progress,
                                     const StopToken& stop) {
  CampaignCellResult cell;
  cell.spec = spec;
  if (n_trials <= 0) return cell;
  sim::ReplicaPool pool(jobs < 0 ? 1u : static_cast<unsigned>(jobs));
  const std::vector<CampaignTrialResult> results = pool.map<CampaignTrialResult>(
      static_cast<std::size_t>(n_trials), [&](std::size_t t) {
        if (stop && stop()) {
          CampaignTrialResult skipped;
          skipped.skipped = true;
          return skipped;
        }
        CampaignTrialResult r =
            run_campaign_trial(spec, base_seed + static_cast<std::uint64_t>(t) + 1, tweaks);
        if (progress) progress(static_cast<int>(t), r);
        return r;
      });
  std::uint64_t checksum = kChecksumSeed;
  for (const CampaignTrialResult& r : results) {
    if (r.skipped) {
      ++cell.trials_skipped;
      continue;
    }
    checksum = fold_campaign_trial(checksum, r);
    for (const auto& t : r.report.tenants) {
      if (t.admission == core::AdmissionOutcome::kShed) {
        ++cell.tenants_shed;
      } else if (t.planned) {
        ++cell.tenants_admitted;
      }
      if (t.admission_wait > common::SimDuration::zero()) {
        cell.admission_wait_s.add(t.admission_wait.to_seconds());
      }
    }
    // Sequential-mode trials leave `report` default-constructed; only trials
    // that actually multiplexed tenants carry a meaningful fairness sample.
    if (!r.report.tenants.empty()) cell.fairness.add(r.report.fairness_index);
    if (r.makespan > common::SimDuration::zero()) {
      cell.goodput_uph.add(static_cast<double>(r.report.units_done()) /
                           r.makespan.to_hours());
      // SLO-attaining goodput: only tenants that finished whole and inside
      // their effective deadline contribute; late or partial work is badput.
      std::size_t slo_units = 0;
      for (const auto& t : r.report.tenants) {
        if (t.admission == core::AdmissionOutcome::kShed || !t.planned) continue;
        if (t.success && t.ttc.ttc <= core::slo_deadline(t.slo)) {
          slo_units += t.units_done;
        } else {
          ++cell.slo_violations;
        }
      }
      cell.slo_goodput_uph.add(static_cast<double>(slo_units) / r.makespan.to_hours());
    }
    if (r.success) {
      cell.makespan_s.add(r.makespan.to_seconds());
      for (const auto& ttc : r.tenant_ttc) cell.tenant_ttc_s.add(ttc.to_seconds());
    } else {
      ++cell.failures;
    }
  }
  cell.checksum = checksum;
  return cell;
}

}  // namespace aimes::exp
