// The unified typed run-request API (ROADMAP item 1's load-bearing redesign).
//
// Every front end — `aimes-run`, the bench harnesses, the `aimesd` daemon's
// REST handler — used to assemble its own (flags -> WorldTweaks/CampaignSpec/
// PlannerConfig) plumbing, each with its own defaults and its own drift. A
// RunRequest is the one description of "run this scenario": profile or
// skeleton, strategy, trials/jobs, sharding, faults, admission, observability.
// Both the CLI flag mapper (request_cli.hpp) and the HTTP JSON deserializer
// land on this struct and call the same execute(), so a campaign submitted
// via `aimesc` is bit-identical (FNV-1a checksum) to the same cell run via
// `aimes-run` — the daemon-vs-CLI parity the control-plane tests assert.
//
// Validation is typed (common::Status with field-path messages); JSON parse
// errors carry byte offsets via core::json::FieldScanner, so a 400 from the
// daemon names exactly what to fix.
#pragma once

#include <cstdint>
#include <string>

#include "exp/campaign.hpp"
#include "exp/runner.hpp"

namespace aimes::exp {

/// Planning strategy: either one of Table I's four experiment rows, or the
/// custom fields. Enum-valued knobs stay strings here (the wire/CLI form);
/// validate() rejects unknown spellings with the field named.
struct StrategyRequest {
  /// Table I row (1-4): binding/scheduler/pilots/durations come from the
  /// paper matrix and the custom fields below are ignored. 0 = custom.
  int experiment = 0;
  std::string binding = "late";  ///< "early" | "late"
  /// "direct" | "round-robin" | "backfill"; empty derives from binding
  /// (early -> direct, late -> backfill, the Table I pairings).
  std::string scheduler;
  int pilots = 3;
  std::string selection = "predicted";  ///< "random" | "predicted"
};

/// Multi-tenant campaign shape; tenants == 0 = single-application request.
struct CampaignRequest {
  int tenants = 0;
  ArrivalSpec arrival;
  CampaignMode mode = CampaignMode::kSharedPool;
};

/// Fault injection. The plan file is resolved on the executing host (the
/// daemon runs next to the filesystem the client sees, like app-mesh).
struct FaultRequest {
  std::string plan_file;
  double pilot_failure_rate = 0.0;

  [[nodiscard]] bool any() const {
    return !plan_file.empty() || pilot_failure_rate > 0.0;
  }
};

/// Admission ladder + site breakers (campaign only). Zero-valued knobs keep
/// the policy defaults, mirroring the CLI flags.
struct AdmissionRequest {
  bool enabled = false;
  core::TenantQuota quota;
  std::string slo = "standard";  ///< "interactive" | "standard" | "batch"
  double max_queue_wait_s = 0.0;
  bool breaker = false;
  double breaker_threshold = 0.0;
  int breaker_min_events = 0;
  double breaker_cooldown_s = 0.0;
};

/// Observability (span tracer + metrics registry + sampler).
struct ObsRequest {
  bool enabled = false;
  double sample_interval_s = 30.0;
  /// Also render Chrome-trace/Prometheus/CSV artifacts into the snapshots.
  bool artifacts = false;
};

/// One run: what to simulate, under which strategy, how many trials.
struct RunRequest {
  /// Display label in the daemon's run table (defaults to a derived one).
  std::string name;
  /// Submitting tenant; the daemon fills its default for anonymous clients.
  std::string user;
  /// Built-in workload when no skeleton file is given: bag-uniform |
  /// bag-gaussian | montage | blast | cybershake | mapreduce.
  std::string profile = "bag-gaussian";
  /// Skeleton application config file (single-app only; overrides profile).
  std::string skeleton_file;
  /// Resource pool config file (empty = the paper's five sites).
  std::string testbed_file;
  int tasks = 128;
  double warmup_hours = 6.0;
  std::uint64_t seed = 42;
  /// Trials run at seeds seed+1 .. seed+trials, aggregated in seed order
  /// (bit-identical for every `jobs` value).
  int trials = 1;
  int jobs = 1;  ///< trial-level workers; 0 = hardware concurrency
  /// Client-requested completion deadline in wall seconds from submission;
  /// 0 = none. The daemon fails a run still queued at the deadline with a
  /// typed reason and cuts a running one at its next trial boundary. Local
  /// execution (aimes-run) ignores it, so a deadline never perturbs the
  /// daemon-vs-CLI checksum parity.
  double deadline_s = 0.0;
  StrategyRequest strategy;
  CampaignRequest campaign;
  core::ShardingConfig sharding;
  FaultRequest faults;
  AdmissionRequest admission;
  ObsRequest observability;

  [[nodiscard]] bool is_campaign() const { return campaign.tenants > 0; }
  /// The display label: `name`, or a derived "profile x tasks" form.
  [[nodiscard]] std::string display_name() const;
};

// --- shared spelling parsers (CLI flags and JSON fields use the same) -----

/// "poisson:RATE" (tenants/hour) or "fixed:SECONDS".
[[nodiscard]] common::Status parse_arrival_spec(const std::string& text, ArrivalSpec& out);
[[nodiscard]] std::string arrival_to_string(const ArrivalSpec& arrival);
/// "C[:U[:H]]" — concurrent cores, optionally :units and :core-hours.
[[nodiscard]] common::Status parse_quota(const std::string& text, core::TenantQuota& out);
[[nodiscard]] std::string quota_to_string(const core::TenantQuota& quota);
[[nodiscard]] common::Status parse_slo_class(const std::string& text, core::SloClass& out);

/// Structural + semantic validation; the first violation comes back as a
/// Status naming the field path ("field 'campaign.tenants': ...").
[[nodiscard]] common::Status validate(const RunRequest& req);

/// Round-trippable JSON form (the `aimesc submit` / POST /api/v1/runs body).
[[nodiscard]] std::string run_request_to_json(const RunRequest& req);
/// Parses the JSON form. Absent fields keep their defaults; malformed ones
/// fail with origin + dotted field path + byte offset. The parsed request is
/// then validate()d.
[[nodiscard]] common::Expected<RunRequest> parse_run_request(const std::string& origin,
                                                             const std::string& text);

/// A request resolved against the filesystem (skeleton/testbed/fault files
/// loaded) into the exact structs the trial runners consume.
struct ResolvedRun {
  bool is_campaign = false;
  AppSpec app;            ///< single-app form
  CampaignSpec campaign;  ///< campaign form
  WorldTweaks tweaks;
};

[[nodiscard]] common::Expected<ResolvedRun> resolve(const RunRequest& req);

/// One live snapshot of a run in flight, emitted at trial boundaries — the
/// typed progress event the daemon journals, streams over SSE, and
/// `aimesc watch`/`top` render. Counter semantics:
///
///  - `checksum` is a *prefix fold*: completed trials are folded in seed
///    order (out-of-order finishers wait in a pending buffer), so the
///    running value converges to the exact CellResult/CampaignCellResult
///    checksum when the last trial lands — a watcher sees the final
///    bit-identity witness before the result document exists.
///  - `vt_seconds` is the maximum virtual time reached by any completed
///    trial (ttc for single-app, makespan for campaigns); trials are
///    independent worlds, so a max is the only order-free notion of "how
///    far the simulation got".
///  - The remaining counters are sums over completed trials, so the *final*
///    snapshot is deterministic for every `jobs` value even though
///    intermediate snapshots depend on worker finish order.
struct RunProgress {
  int trials_done = 0;
  int trials_total = 0;
  std::uint64_t units_done = 0;
  std::uint64_t units_failed = 0;
  double vt_seconds = 0.0;
  std::uint64_t checksum = 0;
  /// Campaign-only (zero for single-app runs).
  std::uint64_t tenants_admitted = 0;
  std::uint64_t tenants_shed = 0;
  /// Recovery / fault-injection counters (single-app sums report.recovery
  /// and report.faults; campaigns sum the campaign recovery stats).
  std::uint64_t pilots_resubmitted = 0;
  std::uint64_t faults_injected = 0;
};

/// Single-line JSON object (no trailing newline) — the journal/SSE wire form.
[[nodiscard]] std::string run_progress_to_json(const RunProgress& progress);
/// Parses the wire form back; the checksum field is the hex16 string that
/// run_progress_to_json wrote.
[[nodiscard]] common::Expected<RunProgress> parse_run_progress(const std::string& origin,
                                                               const std::string& text);

/// Execution-side hooks, all optional. `log` receives progress lines from
/// whichever pool worker finished a trial (must be thread-safe when
/// jobs != 1); `progress` receives a RunProgress snapshot per trial boundary
/// (one initial zero-trials snapshot, then one per completed trial, from the
/// finishing worker — same thread-safety contract as `log`); `cancelled` is
/// polled before each trial starts.
struct RunHooks {
  std::function<void(const std::string&)> log;
  std::function<void(const RunProgress&)> progress;
  StopToken cancelled;
};

/// Everything a front end needs to report one finished run.
struct RunResult {
  /// The request was valid and the run executed (possibly with failing
  /// trials). False = rejected or resolve error; see `error`.
  bool ok = false;
  /// At least one completed trial succeeded.
  bool success = false;
  /// The stop token cut the run short; completed trials are still reported
  /// but the checksum no longer claims cross-run bit-identity.
  bool cancelled = false;
  std::string error;
  bool is_campaign = false;
  int trials_requested = 0;
  int trials_completed = 0;
  /// Single-app aggregate (default when is_campaign).
  CellResult cell;
  /// Campaign aggregate (default when !is_campaign).
  CampaignCellResult campaign;
  /// Trial 1's full result (seed+1), for single-run detail printing.
  bool has_first_trial = false;
  TrialResult first_trial;
  bool has_first_campaign = false;
  CampaignTrialResult first_campaign;
  /// The bit-identity witness: campaign.checksum or cell.span_checksum.
  std::uint64_t checksum = 0;
  double wall_seconds = 0.0;
  /// Progress snapshots emitted while running (0 when no progress hook ran)
  /// and the final snapshot — its checksum equals `checksum` for a run that
  /// completed every trial.
  int progress_events = 0;
  RunProgress progress;
};

/// Validates, resolves, and runs the request — the single execution path
/// under every front end.
[[nodiscard]] RunResult execute(const RunRequest& req, const RunHooks& hooks = {});

/// Status summary of a finished (or failed) run as a JSON object — the
/// daemon's view/list payload and `aimes-run --json`-style reporting.
[[nodiscard]] std::string run_result_to_json(const RunResult& result);

/// Parses run_result_to_json's output back into the scalar summary fields
/// (ok/success/cancelled/error/kind/trials/checksum/wall/progress). The
/// per-cell aggregates (Summary means, first-trial detail) are not on the
/// wire and stay default — this is the journal-replay path, which needs the
/// verdict and the bit-identity witness, not the full in-memory aggregates.
[[nodiscard]] common::Expected<RunResult> parse_run_result(const std::string& origin,
                                                           const std::string& text);

}  // namespace aimes::exp
