// The paper's experiment matrix (Table I).
//
// Four experiments x nine application sizes. "Each skeleton is a distinct
// application that belongs to the same application class (bag-of-task) but
// differs in size... between 8 and 2048 single-core tasks, with task length
// of 15 minutes or distributed following a truncated Gaussian (mean: 15
// min.; stdev: 5 min.; bounds: [1-30 min.])."
//
//   Exp 1: early binding, direct scheduler,   1 pilot,  uniform durations
//   Exp 2: early binding, direct scheduler,   1 pilot,  Gaussian durations
//   Exp 3: late binding,  backfill scheduler, 3 pilots, uniform durations
//   Exp 4: late binding,  backfill scheduler, 3 pilots, Gaussian durations
#pragma once

#include <string>
#include <vector>

#include "core/planner.hpp"
#include "skeleton/spec.hpp"

namespace aimes::exp {

/// One row class of Table I.
struct ExperimentSpec {
  int id = 1;
  core::Binding binding = core::Binding::kEarly;
  pilot::UnitSchedulerKind scheduler = pilot::UnitSchedulerKind::kDirect;
  int n_pilots = 1;
  /// False: every task 15 min; true: truncated Gaussian (15, 5, [1,30]) min.
  bool gaussian_durations = false;
  std::string label;

  /// The skeleton for one application size of this experiment.
  [[nodiscard]] skeleton::SkeletonSpec make_skeleton(int tasks) const;

  /// The planner inputs realizing this experiment's strategy. Site selection
  /// is randomized, as the paper randomized pilot submission across its
  /// resource pool.
  [[nodiscard]] core::PlannerConfig make_planner_config() const;
};

/// The four experiments of Table I.
[[nodiscard]] std::vector<ExperimentSpec> table1_experiments();

/// One experiment by id (1-4); asserts on out-of-range ids.
[[nodiscard]] ExperimentSpec table1_experiment(int id);

/// The nine application sizes: 2^n for n in [3, 11].
[[nodiscard]] std::vector<int> table1_task_counts();

}  // namespace aimes::exp
