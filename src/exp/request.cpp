#include "exp/request.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "cluster/testbed_config.hpp"
#include "common/cli.hpp"
#include "common/config.hpp"
#include "core/json_scan.hpp"
#include "sim/faults.hpp"
#include "skeleton/profiles.hpp"
#include "skeleton/spec.hpp"

namespace aimes::exp {

namespace {

common::Status field_error(const std::string& path, const std::string& what) {
  return common::Status::error("request: field '" + path + "': " + what);
}

/// The strategy-string vocabularies, checked by validate() and mapped by
/// resolve(). One table each, so the spellings cannot drift apart.
bool known_binding(const std::string& s) { return s == "early" || s == "late"; }
bool known_scheduler(const std::string& s) {
  return s.empty() || s == "direct" || s == "round-robin" || s == "backfill";
}
bool known_selection(const std::string& s) { return s == "random" || s == "predicted"; }
bool known_profile(const std::string& s) {
  return s == "bag-uniform" || s == "bag-gaussian" || s == "montage" || s == "blast" ||
         s == "cybershake" || s == "mapreduce";
}

std::string hex16(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string RunRequest::display_name() const {
  if (!name.empty()) return name;
  std::string base = skeleton_file.empty() ? profile : skeleton_file;
  if (is_campaign()) {
    return "campaign-" + std::to_string(campaign.tenants) + "x" + base + "-" +
           std::to_string(tasks);
  }
  if (strategy.experiment > 0) base = "exp" + std::to_string(strategy.experiment);
  return base + "-" + std::to_string(tasks);
}

common::Status parse_arrival_spec(const std::string& text, ArrivalSpec& out) {
  const auto colon = text.find(':');
  const std::string kind = text.substr(0, colon);
  const std::string rest = colon == std::string::npos ? "" : text.substr(colon + 1);
  if (kind == "poisson") {
    auto rate = common::cli::parse_double(rest, 1e-6, 1e6);
    if (!rate) return common::Status::error(rate.error());
    out.poisson_per_hour = *rate;
    return {};
  }
  if (kind == "fixed") {
    auto seconds = common::cli::parse_double(rest, 0.0, 1e9);
    if (!seconds) return common::Status::error(seconds.error());
    out.poisson_per_hour = 0.0;
    out.fixed_spacing = common::SimDuration::seconds(*seconds);
    return {};
  }
  return common::Status::error("expected poisson:RATE or fixed:SECONDS");
}

std::string arrival_to_string(const ArrivalSpec& arrival) {
  if (arrival.poisson_per_hour > 0.0) return "poisson:" + fmt(arrival.poisson_per_hour);
  return "fixed:" + fmt(arrival.fixed_spacing.to_seconds());
}

common::Status parse_quota(const std::string& text, core::TenantQuota& out) {
  std::string rest = text;
  double parts[3] = {0.0, 0.0, 0.0};
  for (int i = 0; i < 3 && !rest.empty(); ++i) {
    const auto colon = rest.find(':');
    auto field = common::cli::parse_double(rest.substr(0, colon), 0.0, 1e12);
    if (!field) return common::Status::error(field.error());
    parts[i] = *field;
    if (colon == std::string::npos) break;
    rest = rest.substr(colon + 1);
  }
  out.max_cores = static_cast<int>(parts[0]);
  out.max_concurrent_units = static_cast<int>(parts[1]);
  out.max_core_hours = parts[2];
  return {};
}

std::string quota_to_string(const core::TenantQuota& quota) {
  return std::to_string(quota.max_cores) + ":" + std::to_string(quota.max_concurrent_units) +
         ":" + fmt(quota.max_core_hours);
}

common::Status parse_slo_class(const std::string& text, core::SloClass& out) {
  if (text == "interactive") {
    out = core::SloClass::kInteractive;
  } else if (text == "standard") {
    out = core::SloClass::kStandard;
  } else if (text == "batch") {
    out = core::SloClass::kBatch;
  } else {
    return common::Status::error("expected interactive, standard, or batch");
  }
  return {};
}

common::Status validate(const RunRequest& req) {
  if (req.tasks < 1 || req.tasks > 10000000) {
    return field_error("tasks", "must be in [1, 10000000]");
  }
  if (req.trials < 1 || req.trials > 1000000) {
    return field_error("trials", "must be in [1, 1000000]");
  }
  if (req.jobs < 0 || req.jobs > 4096) return field_error("jobs", "must be in [0, 4096]");
  if (req.deadline_s < 0.0 || req.deadline_s > 24.0 * 3600.0 * 365.0) {
    return field_error("deadline_s", "must be in [0, 31536000] (0 = no deadline)");
  }
  if (req.warmup_hours < 0.0 || req.warmup_hours > 24.0 * 365.0) {
    return field_error("warmup_hours", "must be in [0, 8760]");
  }
  if (req.skeleton_file.empty() && !known_profile(req.profile)) {
    return field_error("profile", "unknown profile '" + req.profile + "'");
  }

  const auto& s = req.strategy;
  if (s.experiment < 0 || s.experiment > 4) {
    return field_error("strategy.experiment", "must be 0 (custom) or a Table I row 1-4");
  }
  if (s.experiment > 0 && !req.skeleton_file.empty()) {
    return field_error("strategy.experiment",
                       "a Table I experiment fixes the workload; it cannot combine with "
                       "skeleton_file");
  }
  if (!known_binding(s.binding)) {
    return field_error("strategy.binding", "expected early or late");
  }
  if (!known_scheduler(s.scheduler)) {
    return field_error("strategy.scheduler",
                       "expected direct, round-robin, backfill, or empty to derive");
  }
  if (s.pilots < 1 || s.pilots > 4096) {
    return field_error("strategy.pilots", "must be in [1, 4096]");
  }
  if (!known_selection(s.selection)) {
    return field_error("strategy.selection", "expected random or predicted");
  }

  const auto& c = req.campaign;
  if (c.tenants != 0 && (c.tenants < 2 || c.tenants > 256)) {
    return field_error("campaign.tenants", "must be 0 (single application) or in [2, 256]");
  }
  if (c.tenants > 0) {
    if (!req.skeleton_file.empty()) {
      return field_error("campaign.tenants",
                         "a campaign builds size-cycled bags; it cannot combine with "
                         "skeleton_file");
    }
    if (req.profile != "bag-uniform" && req.profile != "bag-gaussian") {
      return field_error("profile",
                         "a campaign supports the bag-uniform and bag-gaussian profiles");
    }
    if (s.experiment > 0) {
      return field_error("strategy.experiment",
                         "Table I experiments are single-application; campaigns take the "
                         "custom strategy fields");
    }
  }

  const auto& a = req.admission;
  if ((a.enabled || a.breaker) && c.tenants == 0) {
    return field_error("admission.enabled",
                       "admission and breakers guard campaigns; set campaign.tenants");
  }
  if ((a.enabled || a.breaker) && c.mode == CampaignMode::kSequential) {
    return field_error("campaign.mode",
                       "sequential campaigns run tenants one at a time through the "
                       "single-app path, which has no admission controller or site "
                       "breakers; use shared or private");
  }
  core::SloClass slo_class = core::SloClass::kStandard;
  if (auto st = parse_slo_class(a.slo, slo_class); !st.ok()) {
    return field_error("admission.slo", st.error());
  }
  if (a.max_queue_wait_s < 0.0) {
    return field_error("admission.max_queue_wait_s", "must be >= 0 (0 keeps the default)");
  }
  if (a.breaker_threshold != 0.0 &&
      (a.breaker_threshold < 0.01 || a.breaker_threshold > 1.0)) {
    return field_error("admission.breaker_threshold",
                       "must be in [0.01, 1] (0 keeps the default)");
  }
  if (a.breaker_min_events < 0) {
    return field_error("admission.breaker_min_events", "must be >= 0");
  }
  if (a.breaker_cooldown_s < 0.0) {
    return field_error("admission.breaker_cooldown_s", "must be >= 0");
  }

  if (req.sharding.shards < 0 || req.sharding.shards > 4096) {
    return field_error("sharding.shards", "must be in [0, 4096]");
  }
  if (req.sharding.grid_sites < 0 || req.sharding.grid_sites > 100000) {
    return field_error("sharding.grid_sites", "must be in [0, 100000]");
  }
  if (req.sharding.shard_workers < 0 || req.sharding.shard_workers > 4096) {
    return field_error("sharding.shard_workers", "must be in [0, 4096]");
  }
  if (req.faults.pilot_failure_rate < 0.0 || req.faults.pilot_failure_rate > 1.0) {
    return field_error("faults.pilot_failure_rate", "must be in [0, 1]");
  }
  if (req.observability.sample_interval_s <= 0.0) {
    return field_error("observability.sample_interval_s", "must be > 0");
  }
  return {};
}

std::string run_request_to_json(const RunRequest& req) {
  std::ostringstream out;
  const auto& s = req.strategy;
  const auto& c = req.campaign;
  const auto& a = req.admission;
  const auto& o = req.observability;
  out << "{\n";
  out << "  \"name\": \"" << core::json::escape(req.name) << "\",\n";
  out << "  \"user\": \"" << core::json::escape(req.user) << "\",\n";
  out << "  \"profile\": \"" << core::json::escape(req.profile) << "\",\n";
  out << "  \"skeleton_file\": \"" << core::json::escape(req.skeleton_file) << "\",\n";
  out << "  \"testbed_file\": \"" << core::json::escape(req.testbed_file) << "\",\n";
  out << "  \"tasks\": " << req.tasks << ",\n";
  out << "  \"warmup_hours\": " << fmt(req.warmup_hours) << ",\n";
  out << "  \"seed\": " << req.seed << ",\n";
  out << "  \"trials\": " << req.trials << ",\n";
  out << "  \"jobs\": " << req.jobs << ",\n";
  out << "  \"deadline_s\": " << fmt(req.deadline_s) << ",\n";
  out << "  \"strategy\": {\n";
  out << "    \"experiment\": " << s.experiment << ",\n";
  out << "    \"binding\": \"" << core::json::escape(s.binding) << "\",\n";
  out << "    \"scheduler\": \"" << core::json::escape(s.scheduler) << "\",\n";
  out << "    \"pilots\": " << s.pilots << ",\n";
  out << "    \"selection\": \"" << core::json::escape(s.selection) << "\"\n";
  out << "  },\n";
  out << "  \"campaign\": {\n";
  out << "    \"tenants\": " << c.tenants << ",\n";
  out << "    \"arrival\": \"" << arrival_to_string(c.arrival) << "\",\n";
  out << "    \"mode\": \"" << to_string(c.mode) << "\"\n";
  out << "  },\n";
  out << "  \"sharding\": {\n";
  out << "    \"shards\": " << req.sharding.shards << ",\n";
  out << "    \"grid_sites\": " << req.sharding.grid_sites << ",\n";
  out << "    \"shard_workers\": " << req.sharding.shard_workers << "\n";
  out << "  },\n";
  out << "  \"faults\": {\n";
  out << "    \"plan_file\": \"" << core::json::escape(req.faults.plan_file) << "\",\n";
  out << "    \"pilot_failure_rate\": " << fmt(req.faults.pilot_failure_rate) << "\n";
  out << "  },\n";
  out << "  \"admission\": {\n";
  out << "    \"enabled\": " << (a.enabled ? "true" : "false") << ",\n";
  out << "    \"quota\": \"" << quota_to_string(a.quota) << "\",\n";
  out << "    \"slo\": \"" << core::json::escape(a.slo) << "\",\n";
  out << "    \"max_queue_wait_s\": " << fmt(a.max_queue_wait_s) << ",\n";
  out << "    \"breaker\": " << (a.breaker ? "true" : "false") << ",\n";
  out << "    \"breaker_threshold\": " << fmt(a.breaker_threshold) << ",\n";
  out << "    \"breaker_min_events\": " << a.breaker_min_events << ",\n";
  out << "    \"breaker_cooldown_s\": " << fmt(a.breaker_cooldown_s) << "\n";
  out << "  },\n";
  out << "  \"observability\": {\n";
  out << "    \"enabled\": " << (o.enabled ? "true" : "false") << ",\n";
  out << "    \"sample_interval_s\": " << fmt(o.sample_interval_s) << ",\n";
  out << "    \"artifacts\": " << (o.artifacts ? "true" : "false") << "\n";
  out << "  }\n";
  out << "}\n";
  return out.str();
}

namespace {

/// Copies `key` out of `scan` into `dst` when present (absent keeps the
/// default). The helpers keep parse_run_request to one line per field while
/// every error still carries the scanner's origin/path/offset coordinates.
common::Status take_text(const core::json::FieldScanner& scan, const std::string& key,
                         std::string& dst) {
  if (!scan.has(key)) return {};
  auto v = scan.text(key);
  if (!v) return common::Status::error(v.error());
  dst = std::move(*v);
  return {};
}

common::Status take_int(const core::json::FieldScanner& scan, const std::string& key,
                        int& dst) {
  if (!scan.has(key)) return {};
  auto v = scan.number(key);
  if (!v) return common::Status::error(v.error());
  dst = static_cast<int>(*v);
  return {};
}

common::Status take_double(const core::json::FieldScanner& scan, const std::string& key,
                           double& dst) {
  if (!scan.has(key)) return {};
  auto v = scan.number(key);
  if (!v) return common::Status::error(v.error());
  dst = *v;
  return {};
}

common::Status take_bool(const core::json::FieldScanner& scan, const std::string& key,
                         bool& dst) {
  if (!scan.has(key)) return {};
  auto v = scan.boolean(key);
  if (!v) return common::Status::error(v.error());
  dst = *v;
  return {};
}

common::Status take_u64(const core::json::FieldScanner& scan, const std::string& key,
                        std::uint64_t& dst) {
  if (!scan.has(key)) return {};
  auto v = scan.number(key);
  if (!v) return common::Status::error(v.error());
  if (*v < 0) return common::Status::error(scan.describe(key) + ": expected >= 0");
  dst = static_cast<std::uint64_t>(*v);
  return {};
}

/// Checksums travel as hex16 strings (JSON numbers lose uint64 precision
/// past 2^53); this reads one back.
common::Status take_hex64(const core::json::FieldScanner& scan, const std::string& key,
                          std::uint64_t& dst) {
  if (!scan.has(key)) return {};
  auto v = scan.text(key);
  if (!v) return common::Status::error(v.error());
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(v->c_str(), &end, 16);
  if (end == v->c_str() || *end != '\0') {
    return common::Status::error(scan.describe(key) + ": expected a hex checksum string");
  }
  dst = value;
  return {};
}

}  // namespace

common::Expected<RunRequest> parse_run_request(const std::string& origin,
                                               const std::string& text) {
  using E = common::Expected<RunRequest>;
  RunRequest req;
  // Every field is optional, so a scanner over a non-object document would
  // "succeed" with all defaults. Require an actual JSON object up front so a
  // garbage body is a typed 400, not a silently-defaulted run.
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) {
    return E::error(origin + ": empty document, expected a JSON object");
  }
  if (text[first] != '{') {
    return E::error(origin + ": expected a JSON object (byte " + std::to_string(first) +
                    ")");
  }
  const core::json::FieldScanner top(origin, text);

#define AIMES_TAKE(expr)                                  \
  do {                                                    \
    if (auto st = (expr); !st.ok()) return E::error(st.error()); \
  } while (0)

  AIMES_TAKE(take_text(top, "name", req.name));
  AIMES_TAKE(take_text(top, "user", req.user));
  AIMES_TAKE(take_text(top, "profile", req.profile));
  AIMES_TAKE(take_text(top, "skeleton_file", req.skeleton_file));
  AIMES_TAKE(take_text(top, "testbed_file", req.testbed_file));
  AIMES_TAKE(take_int(top, "tasks", req.tasks));
  AIMES_TAKE(take_double(top, "warmup_hours", req.warmup_hours));
  AIMES_TAKE(take_u64(top, "seed", req.seed));
  AIMES_TAKE(take_int(top, "trials", req.trials));
  AIMES_TAKE(take_int(top, "jobs", req.jobs));
  AIMES_TAKE(take_double(top, "deadline_s", req.deadline_s));

  if (top.has("strategy")) {
    auto scan = top.object("strategy");
    if (!scan) return E::error(scan.error());
    AIMES_TAKE(take_int(*scan, "experiment", req.strategy.experiment));
    AIMES_TAKE(take_text(*scan, "binding", req.strategy.binding));
    AIMES_TAKE(take_text(*scan, "scheduler", req.strategy.scheduler));
    AIMES_TAKE(take_int(*scan, "pilots", req.strategy.pilots));
    AIMES_TAKE(take_text(*scan, "selection", req.strategy.selection));
  }
  if (top.has("campaign")) {
    auto scan = top.object("campaign");
    if (!scan) return E::error(scan.error());
    AIMES_TAKE(take_int(*scan, "tenants", req.campaign.tenants));
    if (scan->has("arrival")) {
      auto text_value = scan->text("arrival");
      if (!text_value) return E::error(text_value.error());
      if (auto st = parse_arrival_spec(*text_value, req.campaign.arrival); !st.ok()) {
        return E::error(scan->describe("arrival") + ": " + st.error());
      }
    }
    if (scan->has("mode")) {
      auto text_value = scan->text("mode");
      if (!text_value) return E::error(text_value.error());
      if (!parse_campaign_mode(*text_value, req.campaign.mode)) {
        return E::error(scan->describe("mode") + ": expected shared, private, or sequential");
      }
    }
  }
  if (top.has("sharding")) {
    auto scan = top.object("sharding");
    if (!scan) return E::error(scan.error());
    AIMES_TAKE(take_int(*scan, "shards", req.sharding.shards));
    AIMES_TAKE(take_int(*scan, "grid_sites", req.sharding.grid_sites));
    AIMES_TAKE(take_int(*scan, "shard_workers", req.sharding.shard_workers));
  }
  if (top.has("faults")) {
    auto scan = top.object("faults");
    if (!scan) return E::error(scan.error());
    AIMES_TAKE(take_text(*scan, "plan_file", req.faults.plan_file));
    AIMES_TAKE(take_double(*scan, "pilot_failure_rate", req.faults.pilot_failure_rate));
  }
  if (top.has("admission")) {
    auto scan = top.object("admission");
    if (!scan) return E::error(scan.error());
    AIMES_TAKE(take_bool(*scan, "enabled", req.admission.enabled));
    if (scan->has("quota")) {
      auto text_value = scan->text("quota");
      if (!text_value) return E::error(text_value.error());
      if (auto st = parse_quota(*text_value, req.admission.quota); !st.ok()) {
        return E::error(scan->describe("quota") + ": " + st.error());
      }
    }
    AIMES_TAKE(take_text(*scan, "slo", req.admission.slo));
    AIMES_TAKE(take_double(*scan, "max_queue_wait_s", req.admission.max_queue_wait_s));
    AIMES_TAKE(take_bool(*scan, "breaker", req.admission.breaker));
    AIMES_TAKE(take_double(*scan, "breaker_threshold", req.admission.breaker_threshold));
    AIMES_TAKE(take_int(*scan, "breaker_min_events", req.admission.breaker_min_events));
    AIMES_TAKE(take_double(*scan, "breaker_cooldown_s", req.admission.breaker_cooldown_s));
  }
  if (top.has("observability")) {
    auto scan = top.object("observability");
    if (!scan) return E::error(scan.error());
    AIMES_TAKE(take_bool(*scan, "enabled", req.observability.enabled));
    AIMES_TAKE(take_double(*scan, "sample_interval_s", req.observability.sample_interval_s));
    AIMES_TAKE(take_bool(*scan, "artifacts", req.observability.artifacts));
  }
#undef AIMES_TAKE

  if (auto st = validate(req); !st.ok()) return E::error(st.error());
  return req;
}

std::string run_progress_to_json(const RunProgress& p) {
  std::ostringstream out;
  out << "{\"trials_done\": " << p.trials_done << ", \"trials_total\": " << p.trials_total
      << ", \"units_done\": " << p.units_done << ", \"units_failed\": " << p.units_failed
      << ", \"vt_s\": " << fmt(p.vt_seconds) << ", \"checksum\": \"" << hex16(p.checksum)
      << "\", \"tenants_admitted\": " << p.tenants_admitted
      << ", \"tenants_shed\": " << p.tenants_shed
      << ", \"pilots_resubmitted\": " << p.pilots_resubmitted
      << ", \"faults_injected\": " << p.faults_injected << "}";
  return out.str();
}

common::Expected<RunProgress> parse_run_progress(const std::string& origin,
                                                 const std::string& text) {
  using E = common::Expected<RunProgress>;
  RunProgress p;
  const core::json::FieldScanner scan(origin, text);
#define AIMES_TAKE(expr)                                        \
  do {                                                          \
    if (auto st = (expr); !st.ok()) return E::error(st.error()); \
  } while (0)
  AIMES_TAKE(take_int(scan, "trials_done", p.trials_done));
  AIMES_TAKE(take_int(scan, "trials_total", p.trials_total));
  AIMES_TAKE(take_u64(scan, "units_done", p.units_done));
  AIMES_TAKE(take_u64(scan, "units_failed", p.units_failed));
  AIMES_TAKE(take_double(scan, "vt_s", p.vt_seconds));
  AIMES_TAKE(take_hex64(scan, "checksum", p.checksum));
  AIMES_TAKE(take_u64(scan, "tenants_admitted", p.tenants_admitted));
  AIMES_TAKE(take_u64(scan, "tenants_shed", p.tenants_shed));
  AIMES_TAKE(take_u64(scan, "pilots_resubmitted", p.pilots_resubmitted));
  AIMES_TAKE(take_u64(scan, "faults_injected", p.faults_injected));
#undef AIMES_TAKE
  return p;
}

common::Expected<ResolvedRun> resolve(const RunRequest& req) {
  using E = common::Expected<ResolvedRun>;
  if (auto st = validate(req); !st.ok()) return E::error(st.error());

  ResolvedRun run;
  run.is_campaign = req.is_campaign();

  run.tweaks.warmup = common::SimDuration::hours(req.warmup_hours);
  run.tweaks.sharding = req.sharding;
  run.tweaks.observability.enabled = req.observability.enabled;
  run.tweaks.observability.sample_interval =
      common::SimDuration::seconds(req.observability.sample_interval_s);
  run.tweaks.obs_artifacts = req.observability.artifacts;
  if (!req.testbed_file.empty()) {
    auto file = common::Config::load(req.testbed_file);
    if (!file) return E::error("testbed: " + file.error());
    auto pool = cluster::parse_testbed(*file);
    if (!pool) return E::error("testbed: " + pool.error());
    run.tweaks.testbed = std::move(*pool);
  }
  if (!req.faults.plan_file.empty()) {
    auto file = common::Config::load(req.faults.plan_file);
    if (!file) return E::error("fault plan: " + file.error());
    auto plan = sim::FaultPlan::parse(*file);
    if (!plan) return E::error("fault plan: " + plan.error());
    run.tweaks.faults.plan = std::move(*plan);
  }
  if (req.faults.pilot_failure_rate > 0.0) {
    auto rates = run.tweaks.faults.plan.rates();
    rates.pilot_launch_failure = req.faults.pilot_failure_rate;
    run.tweaks.faults.plan.with_rates(rates);
  }
  // Any requested fault makes Execution-Manager recovery part of the
  // experiment (the historical aimes-run behavior); campaigns arm their own
  // recovery through spec.recovery below.
  run.tweaks.recovery.enabled = !run.tweaks.faults.empty();

  if (run.is_campaign) {
    CampaignSpec& spec = run.campaign;
    spec.n_tenants = req.campaign.tenants;
    spec.base_tasks = req.tasks;
    spec.gaussian_durations = req.profile == "bag-gaussian";
    spec.n_pilots = req.strategy.pilots;
    spec.arrival = req.campaign.arrival;
    spec.mode = req.campaign.mode;
    spec.admission.policy.enabled = req.admission.enabled;
    if (req.admission.max_queue_wait_s > 0.0) {
      spec.admission.policy.max_queue_wait =
          common::SimDuration::seconds(req.admission.max_queue_wait_s);
    }
    if (req.admission.enabled) {
      core::SloClass slo = core::SloClass::kStandard;
      (void)parse_slo_class(req.admission.slo, slo);  // validated above
      spec.admission.slos = {slo};
      spec.admission.quotas = {req.admission.quota};
    }
    spec.admission.breaker.enabled = req.admission.breaker;
    if (req.admission.breaker_threshold > 0.0) {
      spec.admission.breaker.trip_threshold = req.admission.breaker_threshold;
    }
    if (req.admission.breaker_min_events > 0) {
      spec.admission.breaker.min_events = req.admission.breaker_min_events;
    }
    if (req.admission.breaker_cooldown_s > 0.0) {
      spec.admission.breaker.cooldown =
          common::SimDuration::seconds(req.admission.breaker_cooldown_s);
    }
    // As in single-app mode, any requested fault arms pilot recovery.
    spec.recovery.enabled = !run.tweaks.faults.empty();
    return run;
  }

  if (req.strategy.experiment > 0) {
    run.app = make_app_spec(table1_experiment(req.strategy.experiment), req.tasks);
    if (!req.name.empty()) run.app.label = req.name;
    return run;
  }

  if (!req.skeleton_file.empty()) {
    auto config = common::Config::load(req.skeleton_file);
    if (!config) return E::error("skeleton: " + config.error());
    auto spec = skeleton::parse_spec(*config);
    if (!spec) return E::error("skeleton: " + spec.error());
    run.app.skeleton = std::move(*spec);
  } else if (req.profile == "bag-uniform") {
    run.app.skeleton = skeleton::profiles::bag_uniform(req.tasks);
  } else if (req.profile == "bag-gaussian") {
    run.app.skeleton = skeleton::profiles::bag_gaussian(req.tasks);
  } else if (req.profile == "montage") {
    run.app.skeleton = skeleton::profiles::montage_like(req.tasks);
  } else if (req.profile == "blast") {
    run.app.skeleton = skeleton::profiles::blast_like(req.tasks);
  } else if (req.profile == "cybershake") {
    run.app.skeleton = skeleton::profiles::cybershake_like(req.tasks);
  } else {  // "mapreduce"; validate() rejected everything else
    run.app.skeleton = skeleton::profiles::map_reduce(
        req.tasks, std::max(1, req.tasks / 8), common::DistributionSpec::constant(300),
        common::DistributionSpec::constant(120));
  }
  run.app.planner.binding =
      req.strategy.binding == "early" ? core::Binding::kEarly : core::Binding::kLate;
  if (req.strategy.scheduler == "direct") {
    run.app.planner.scheduler = pilot::UnitSchedulerKind::kDirect;
  } else if (req.strategy.scheduler == "round-robin") {
    run.app.planner.scheduler = pilot::UnitSchedulerKind::kRoundRobin;
  } else if (req.strategy.scheduler == "backfill") {
    run.app.planner.scheduler = pilot::UnitSchedulerKind::kBackfill;
  }  // empty: leave unset, the planner derives it from the binding
  run.app.planner.n_pilots = req.strategy.pilots;
  run.app.planner.selection = req.strategy.selection == "random"
                                  ? core::SiteSelection::kRandom
                                  : core::SiteSelection::kPredictedWait;
  run.app.label = req.display_name();
  return run;
}

RunResult execute(const RunRequest& req, const RunHooks& hooks) {
  RunResult result;
  result.trials_requested = req.trials;
  result.is_campaign = req.is_campaign();

  auto resolved = resolve(req);
  if (!resolved) {
    result.error = resolved.error();
    return result;
  }

  const auto started = std::chrono::steady_clock::now();
  std::mutex first_mutex;

  // Live telemetry: one RunProgress per trial boundary, maintained under
  // first_mutex because trials finish on pool workers. The checksum is a
  // prefix fold — out-of-order finishers park in `pending_*` keyed by trial
  // index until the seed-order predecessor lands — so the final snapshot's
  // checksum equals the cell checksum for a run that completed every trial.
  RunProgress live;
  live.trials_total = req.trials;
  live.checksum = kChecksumSeed;
  int next_fold = 0;
  std::map<int, std::uint64_t> pending_spans;
  std::map<int, CampaignTrialResult> pending_campaign;
  const auto emit = [&] {
    ++result.progress_events;
    result.progress = live;
    if (hooks.progress) hooks.progress(live);
  };
  {
    // Initial snapshot: watchers learn trials_total before any trial lands.
    const std::lock_guard<std::mutex> lock(first_mutex);
    emit();
  }

  if (resolved->is_campaign) {
    const CampaignProgress progress = [&](int t, const CampaignTrialResult& r) {
      {
        const std::lock_guard<std::mutex> lock(first_mutex);
        if (t == 0) {
          result.first_campaign = r;
          result.has_first_campaign = true;
        }
        ++live.trials_done;
        live.units_done += static_cast<std::uint64_t>(r.report.units_done());
        live.vt_seconds = std::max(live.vt_seconds, r.makespan.to_seconds());
        live.pilots_resubmitted +=
            static_cast<std::uint64_t>(r.report.recovery.pilots_resubmitted);
        for (const auto& ten : r.report.tenants) {
          live.units_failed += static_cast<std::uint64_t>(ten.units_failed);
          if (ten.admission == core::AdmissionOutcome::kShed) {
            ++live.tenants_shed;
          } else if (ten.planned) {
            ++live.tenants_admitted;
          }
        }
        CampaignTrialResult trimmed = r;
        trimmed.obs = {};  // the fold never reads obs; don't park artifact buffers
        pending_campaign.emplace(t, std::move(trimmed));
        while (!pending_campaign.empty() && pending_campaign.begin()->first == next_fold) {
          live.checksum = fold_campaign_trial(live.checksum, pending_campaign.begin()->second);
          pending_campaign.erase(pending_campaign.begin());
          ++next_fold;
        }
        emit();
      }
      if (hooks.log) {
        hooks.log("trial " + std::to_string(t + 1) + "/" + std::to_string(req.trials) +
                  ": makespan " + r.makespan.str() +
                  (r.success ? "" : " (INCOMPLETE)"));
      }
    };
    result.campaign = run_campaign_cell(resolved->campaign, req.trials, req.seed,
                                        resolved->tweaks, req.jobs, progress,
                                        hooks.cancelled);
    result.cancelled = result.campaign.cancelled();
    result.trials_completed =
        req.trials - static_cast<int>(result.campaign.trials_skipped);
    result.success = result.trials_completed > 0 &&
                     result.campaign.failures <
                         static_cast<std::size_t>(result.trials_completed);
    result.checksum = result.campaign.checksum;
  } else {
    const TrialProgress progress = [&](int t, const TrialResult& r) {
      {
        const std::lock_guard<std::mutex> lock(first_mutex);
        if (t == 0) {
          result.first_trial = r;
          result.has_first_trial = true;
        }
        ++live.trials_done;
        live.units_done += static_cast<std::uint64_t>(r.report.units_done);
        live.units_failed += static_cast<std::uint64_t>(r.report.units_failed);
        live.vt_seconds = std::max(live.vt_seconds, r.report.ttc.ttc.to_seconds());
        live.pilots_resubmitted +=
            static_cast<std::uint64_t>(r.report.recovery.pilots_resubmitted);
        live.faults_injected += static_cast<std::uint64_t>(r.report.faults.total());
        pending_spans.emplace(t, r.obs.span_checksum);
        while (!pending_spans.empty() && pending_spans.begin()->first == next_fold) {
          live.checksum = fold_trial_span(live.checksum, pending_spans.begin()->second);
          pending_spans.erase(pending_spans.begin());
          ++next_fold;
        }
        emit();
      }
      if (hooks.log) {
        hooks.log("trial " + std::to_string(t + 1) + "/" + std::to_string(req.trials) +
                  ": ttc " + r.report.ttc.ttc.str() +
                  (r.report.success ? "" : " (INCOMPLETE)"));
      }
    };
    result.cell = run_cell(resolved->app, req.trials, req.seed, resolved->tweaks, progress,
                           req.jobs, hooks.cancelled);
    result.cancelled = result.cell.cancelled();
    result.trials_completed = req.trials - static_cast<int>(result.cell.trials_skipped);
    result.success =
        result.trials_completed > 0 &&
        result.cell.failures < static_cast<std::size_t>(result.trials_completed);
    result.checksum = result.cell.span_checksum;
  }

  result.ok = true;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  return result;
}

std::string run_result_to_json(const RunResult& result) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"ok\": " << (result.ok ? "true" : "false") << ",\n";
  out << "  \"success\": " << (result.success ? "true" : "false") << ",\n";
  out << "  \"cancelled\": " << (result.cancelled ? "true" : "false") << ",\n";
  out << "  \"error\": \"" << core::json::escape(result.error) << "\",\n";
  out << "  \"kind\": \"" << (result.is_campaign ? "campaign" : "single") << "\",\n";
  out << "  \"trials_requested\": " << result.trials_requested << ",\n";
  out << "  \"trials_completed\": " << result.trials_completed << ",\n";
  // Hex string: JSON numbers lose uint64 precision past 2^53.
  out << "  \"checksum\": \"" << hex16(result.checksum) << "\",\n";
  out << "  \"wall_seconds\": " << fmt(result.wall_seconds) << ",\n";
  out << "  \"progress_events\": " << result.progress_events << ",\n";
  out << "  \"progress\": " << run_progress_to_json(result.progress) << ",\n";
  if (result.is_campaign) {
    const auto& c = result.campaign;
    out << "  \"failures\": " << c.failures << ",\n";
    out << "  \"makespan_mean_s\": " << fmt(c.makespan_s.mean()) << ",\n";
    out << "  \"makespan_stddev_s\": " << fmt(c.makespan_s.stddev()) << ",\n";
    out << "  \"tenant_ttc_mean_s\": " << fmt(c.tenant_ttc_s.mean()) << ",\n";
    out << "  \"tenants_admitted\": " << c.tenants_admitted << ",\n";
    out << "  \"tenants_shed\": " << c.tenants_shed << ",\n";
    out << "  \"slo_violations\": " << c.slo_violations << "\n";
  } else {
    const auto& c = result.cell;
    out << "  \"failures\": " << c.failures << ",\n";
    out << "  \"tasks\": " << c.tasks << ",\n";
    out << "  \"ttc_mean_s\": " << fmt(c.ttc_s.mean()) << ",\n";
    out << "  \"ttc_stddev_s\": " << fmt(c.ttc_s.stddev()) << ",\n";
    out << "  \"tw_mean_s\": " << fmt(c.tw_s.mean()) << ",\n";
    out << "  \"tx_mean_s\": " << fmt(c.tx_s.mean()) << ",\n";
    out << "  \"ts_mean_s\": " << fmt(c.ts_s.mean()) << ",\n";
    out << "  \"events_executed\": " << c.events_executed << "\n";
  }
  out << "}\n";
  return out.str();
}

common::Expected<RunResult> parse_run_result(const std::string& origin,
                                             const std::string& text) {
  using E = common::Expected<RunResult>;
  RunResult result;
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos || text[first] != '{') {
    return E::error(origin + ": expected a JSON object");
  }
  const core::json::FieldScanner top(origin, text);
#define AIMES_TAKE(expr)                                        \
  do {                                                          \
    if (auto st = (expr); !st.ok()) return E::error(st.error()); \
  } while (0)
  AIMES_TAKE(take_bool(top, "ok", result.ok));
  AIMES_TAKE(take_bool(top, "success", result.success));
  AIMES_TAKE(take_bool(top, "cancelled", result.cancelled));
  AIMES_TAKE(take_text(top, "error", result.error));
  std::string kind = "single";
  AIMES_TAKE(take_text(top, "kind", kind));
  result.is_campaign = kind == "campaign";
  AIMES_TAKE(take_int(top, "trials_requested", result.trials_requested));
  AIMES_TAKE(take_int(top, "trials_completed", result.trials_completed));
  AIMES_TAKE(take_hex64(top, "checksum", result.checksum));
  AIMES_TAKE(take_double(top, "wall_seconds", result.wall_seconds));
  AIMES_TAKE(take_int(top, "progress_events", result.progress_events));
#undef AIMES_TAKE
  if (top.has("progress")) {
    auto raw = top.raw_object("progress");
    if (!raw) return E::error(raw.error());
    auto progress = parse_run_progress(origin, *raw);
    if (!progress) return E::error(progress.error());
    result.progress = *progress;
  }
  return result;
}

}  // namespace aimes::exp
