#include "exp/grid.hpp"

#include <cassert>
#include <chrono>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "cluster/shard_plan.hpp"
#include "cluster/site.hpp"
#include "cluster/workload.hpp"
#include "common/rng.hpp"
#include "net/sharded_stager.hpp"
#include "net/topology.hpp"
#include "net/transfer.hpp"
#include "obs/recorder.hpp"
#include "sim/replica_pool.hpp"
#include "sim/sharded_engine.hpp"

namespace aimes::exp {

namespace {

constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

struct Fnv {
  std::uint64_t h = kFnvBasis;
  void add(std::uint64_t x) {
    h ^= x;
    h *= kFnvPrime;
  }
};

/// The heterogeneous WAN link cycle (same shape core::Aimes defaults to);
/// the 25 ms entry is the topology's min latency, i.e. the lookahead.
net::LinkSpec grid_link(std::size_t site_index) {
  static constexpr double kMiBs[] = {400.0, 250.0, 150.0, 80.0, 300.0};
  static constexpr std::int64_t kLatencyMs[] = {25, 40, 55, 70, 35};
  const std::size_t k = site_index % 5;
  net::LinkSpec link;
  link.capacity = common::Bandwidth::mib_per_sec(kMiBs[k]);
  link.latency = common::SimDuration::millis(kLatencyMs[k]);
  return link;
}

/// One site's group: everything here lives on one shard's engine.
struct GridSite {
  std::unique_ptr<cluster::ClusterSite> site;
  std::unique_ptr<cluster::WorkloadGenerator> workload;
  std::unique_ptr<obs::Recorder> recorder;  // per *group*, not per shard
  /// Control jobs this site received / finished (written on the site's
  /// shard during the run, read by the coordinator after it).
  std::uint64_t control_received = 0;
  std::uint64_t control_finished = 0;
};

/// The whole sharded world of one trial.
class ShardedGrid {
 public:
  ShardedGrid(const GridSpec& spec, std::uint64_t seed);

  GridTrialResult run();

 private:
  void launch_control_job();
  void schedule_next_control();

  const GridSpec& spec_;
  /// Declared (and thus constructed) before engines_: the engine options
  /// lambda derives the lookahead from the already-built topology.
  net::Topology topology_;
  sim::ShardedEngine engines_;
  cluster::ShardPlan plan_;
  std::unique_ptr<net::TransferManager> transfers_;
  std::unique_ptr<net::ShardedStager> stager_;
  std::vector<GridSite> sites_;
  std::unique_ptr<obs::Recorder> driver_recorder_;

  // Origin-side campaign driver state: shard 0 events only.
  common::Rng driver_rng_;
  std::uint64_t control_launched_ = 0;
  std::uint64_t control_completed_ = 0;
  std::uint64_t control_failed_ = 0;
  std::unordered_map<std::uint64_t, obs::SpanId> control_spans_;
};

sim::ShardedEngine::Options engine_options(const GridSpec& spec,
                                           const net::Topology& topology) {
  sim::ShardedEngine::Options options;
  options.shards = spec.shards < 1 ? 1 : static_cast<std::size_t>(spec.shards);
  options.workers = spec.workers < 0 ? 1 : static_cast<std::size_t>(spec.workers);
  options.lookahead = topology.min_latency();
  if (options.lookahead <= common::SimDuration::zero()) {
    options.lookahead = common::SimDuration::millis(25);
  }
  return options;
}

ShardedGrid::ShardedGrid(const GridSpec& spec, std::uint64_t seed)
    : spec_(spec),
      engines_([&] {
        // The topology (and thus the lookahead) is a pure function of the
        // spec; build it before the engines need it.
        for (int i = 0; i < spec.sites; ++i) {
          topology_.add_site(common::SiteId(static_cast<std::uint64_t>(i) + 1),
                             grid_link(static_cast<std::size_t>(i)));
        }
        return engine_options(spec, topology_);
      }()),
      plan_(cluster::ShardPlan::round_robin(static_cast<std::size_t>(spec.sites),
                                            engines_.shards())),
      driver_rng_(common::Rng::stream(seed, "grid/driver")) {
  transfers_ = std::make_unique<net::TransferManager>(engines_.shard(0), topology_);
  stager_ = std::make_unique<net::ShardedStager>(engines_, *transfers_, topology_);
  if (spec_.observability) {
    driver_recorder_ = std::make_unique<obs::Recorder>(engines_.shard(0));
  }

  cluster::WorkloadConfig load;
  load.target_utilization = spec_.target_utilization;
  load.runtime = common::DistributionSpec::lognormal(spec_.runtime_mu, spec_.runtime_sigma);
  load.horizon = spec_.horizon;

  sites_.resize(static_cast<std::size_t>(spec_.sites));
  for (int i = 0; i < spec_.sites; ++i) {
    const auto index = static_cast<std::size_t>(i);
    const common::SiteId id(static_cast<std::uint64_t>(i) + 1);
    sim::Engine& engine = engines_.shard(plan_.shard_of(index));
    stager_->assign(id, plan_.shard_of(index));

    cluster::SiteConfig site_config;
    site_config.name = "grid-" + std::to_string(i);
    site_config.nodes = spec_.nodes_per_site;
    site_config.cores_per_node = spec_.cores_per_node;

    GridSite& entry = sites_[index];
    entry.site = std::make_unique<cluster::ClusterSite>(
        engine, id, site_config, common::Rng::stream(seed, "grid/site/" + site_config.name));
    entry.workload = std::make_unique<cluster::WorkloadGenerator>(
        engine, *entry.site, load,
        common::Rng::stream(seed, "grid/load/" + site_config.name));
    if (spec_.observability) {
      entry.recorder = std::make_unique<obs::Recorder>(engine);
      entry.site->set_recorder(entry.recorder.get());
    }
  }

  // Outage injection rides the owning shard's own queue — scheduled during
  // setup (all clocks at zero), so no cross-shard post is needed and the
  // schedule is identical for every shard count.
  for (const GridOutage& outage : spec_.outages) {
    if (outage.site_index < 0 || outage.site_index >= spec_.sites) continue;
    const auto index = static_cast<std::size_t>(outage.site_index);
    cluster::ClusterSite* site = sites_[index].site.get();
    const auto duration = outage.duration;
    engines_.shard(plan_.shard_of(index))
        .schedule_at(common::SimTime::epoch() + outage.start,
                     [site, duration] { site->begin_outage(duration); });
  }

  for (auto& entry : sites_) entry.workload->prime();
  for (auto& entry : sites_) entry.workload->start();
  if (spec_.control_jobs_per_hour > 0.0) schedule_next_control();
}

void ShardedGrid::schedule_next_control() {
  const double mean_gap_s = 3600.0 / spec_.control_jobs_per_hour;
  const auto gap = common::SimDuration::seconds(driver_rng_.exponential(mean_gap_s));
  sim::Engine& origin = engines_.shard(0);
  const common::SimTime when = origin.now() + gap;
  if (when - common::SimTime::epoch() >= spec_.horizon) return;  // arrivals stop
  origin.schedule_at(when, [this] {
    launch_control_job();
    schedule_next_control();
  });
}

void ShardedGrid::launch_control_job() {
  const std::size_t target = driver_rng_.index(sites_.size());
  const std::uint64_t ticket = control_launched_++;
  // Job shape is drawn on the driver side so it is part of the driver's
  // deterministic stream, independent of shard packing.
  const auto runtime = common::SimDuration::seconds(driver_rng_.uniform(60.0, 600.0));

  if (driver_recorder_) {
    control_spans_[ticket] =
        driver_recorder_->begin_span("control-job", "grid/driver");
  }

  GridSite* slot = &sites_[target];
  net::ShardedStager* stager = stager_.get();
  obs::Recorder* site_recorder = slot->recorder.get();
  const common::SiteId site_id = slot->site->id();
  const std::uint64_t t = ticket;

  auto notice = [this, t] {
    // Back on shard 0: close the ledger (and the span) for this ticket.
    ++control_completed_;
    if (driver_recorder_) {
      auto it = control_spans_.find(t);
      if (it != control_spans_.end()) {
        driver_recorder_->end_span(it->second);
        control_spans_.erase(it);
      }
    }
  };

  auto status = stager_->stage_in(
      site_id, spec_.stage_size,
      [slot, stager, site_recorder, site_id, runtime, t, notice](common::SimTime) {
        // Running on the site's shard now: the input landed, launch the job.
        ++slot->control_received;
        if (site_recorder != nullptr) {
          site_recorder->instant("control-arrival", "grid/site");
        }
        cluster::ClusterSite* site = slot->site.get();
        cluster::JobRequest request;
        request.name = "ctl-" + std::to_string(t);
        request.nodes = 1;
        request.runtime = runtime;
        request.walltime = runtime + common::SimDuration::minutes(30);
        request.owner = "campaign";
        request.on_state_change = [slot, stager, site_id, notice](const cluster::Job& job) {
          if (!cluster::is_final(job.state)) return;
          ++slot->control_finished;
          stager->notify_origin(site_id, notice);
        };
        if (!site->submit(request)) {
          // Site down (outage injection): report the refusal back the same
          // mailbox path a completion would take.
          stager->notify_origin(site_id, notice);
        }
      });
  if (!status) {
    ++control_failed_;
    notice();
  }
}

GridTrialResult ShardedGrid::run() {
  GridTrialResult result;
  const auto wall_start = std::chrono::steady_clock::now();
  engines_.run();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  result.events = engines_.executed();
  result.windows = engines_.windows();
  result.posts = engines_.posted();
  result.control_jobs = control_launched_;
  result.control_completed = control_completed_;

  if (spec_.observability) {
    std::vector<obs::Snapshot> parts;
    parts.reserve(sites_.size() + 1);
    parts.push_back(driver_recorder_->snapshot());
    for (const auto& entry : sites_) parts.push_back(entry.recorder->snapshot());
    result.obs = obs::merge_snapshots(parts);
  }

  Fnv digest;
  for (const auto& entry : sites_) {
    const cluster::ClusterSite& site = *entry.site;
    result.background_jobs += entry.workload->submitted();
    digest.add(entry.workload->submitted());
    digest.add(site.finished_count(cluster::JobState::kCompleted));
    digest.add(site.finished_count(cluster::JobState::kTimeout));
    digest.add(site.finished_count(cluster::JobState::kCancelled));
    digest.add(site.finished_count(cluster::JobState::kPreempted));
    digest.add(site.queue_length());
    digest.add(static_cast<std::uint64_t>(site.free_nodes()));
    digest.add(entry.control_received);
    digest.add(entry.control_finished);
    for (const cluster::WaitRecord& record : site.wait_history()) {
      digest.add(static_cast<std::uint64_t>(record.submitted_at.count_ms()));
      digest.add(static_cast<std::uint64_t>(record.started_at.count_ms()));
      digest.add(static_cast<std::uint64_t>(record.nodes));
    }
  }
  digest.add(control_launched_);
  digest.add(control_completed_);
  digest.add(control_failed_);
  digest.add(transfers_->completed());
  digest.add(result.events);
  digest.add(result.posts);
  digest.add(result.obs.span_checksum);
  digest.add(result.obs.instant_count);
  result.digest = digest.h;
  return result;
}

}  // namespace

GridTrialResult run_grid_trial(const GridSpec& spec, std::uint64_t seed) {
  ShardedGrid grid(spec, seed);
  return grid.run();
}

GridCellResult run_grid_cell(const GridSpec& spec, int n_trials, std::uint64_t base_seed,
                             int jobs) {
  GridCellResult cell;
  if (n_trials <= 0) return cell;
  sim::ReplicaPool pool(jobs < 0 ? 1u : static_cast<unsigned>(jobs));
  const std::vector<GridTrialResult> results = pool.map<GridTrialResult>(
      static_cast<std::size_t>(n_trials), [&](std::size_t t) {
        return run_grid_trial(spec, base_seed + static_cast<std::uint64_t>(t) + 1);
      });
  Fnv digest;
  Fnv spans;
  for (const GridTrialResult& r : results) {
    digest.add(r.digest);
    spans.add(r.obs.span_checksum);
    cell.events += r.events;
    cell.windows += r.windows;
    cell.posts += r.posts;
    cell.background_jobs += r.background_jobs;
    cell.control_jobs += r.control_jobs;
    cell.control_completed += r.control_completed;
    cell.wall_seconds += r.wall_seconds;
  }
  cell.digest = digest.h;
  cell.obs_span_checksum = spans.h;
  return cell;
}

}  // namespace aimes::exp
