// The sharded machine-room grid: the scale scenario of the sharded engine.
//
// One grid trial is a self-contained world of N heterogeneous sites, each
// with its own batch queue and background workload, partitioned across
// sim::ShardedEngine shards by a cluster::ShardPlan, plus an origin-side
// campaign driver on shard 0 that continuously stages input files out to
// random sites (shard-0 TransferManager flows) and launches a grid job on
// each arrival; completion notices flow back the same way. Every
// cross-shard interaction rides the stager's mailboxes, so a trial's digest
// — an FNV-1a fold over per-site queue/wait/finish observables, the driver's
// ledger, and the merged obs snapshot — is bit-identical for every shard
// count, which the differential tests and the sharded substrate bench
// assert. This is the 1000-site, millions-of-background-jobs shape of
// ROADMAP item 2 (RADICAL-Pilot on leadership platforms sets the scale bar).
#pragma once

#include <cstdint>
#include <vector>

#include "common/data_size.hpp"
#include "common/time.hpp"
#include "obs/recorder.hpp"

namespace aimes::exp {

/// One injected site downtime window (times relative to the trial epoch).
struct GridOutage {
  int site_index = 0;
  common::SimDuration start = common::SimDuration::hours(1);
  common::SimDuration duration = common::SimDuration::minutes(30);
};

/// Shape of one grid trial.
struct GridSpec {
  int sites = 64;
  /// Logical shard count; results are bit-identical for every value.
  int shards = 1;
  /// Worker threads (0 = min(shards, hardware)); a throughput knob only.
  int workers = 0;
  /// Per-site machine size. Small machines keep the per-site state cheap so
  /// the site *count* carries the scale.
  int nodes_per_site = 32;
  int cores_per_node = 8;
  double target_utilization = 0.95;
  /// Background job runtime: lognormal over seconds. The default median of
  /// ~4.5 minutes makes event density (not job length) dominate, which is
  /// the regime the events/sec benchmark measures.
  double runtime_mu = 5.6;
  double runtime_sigma = 0.8;
  /// Arrivals stop at the horizon and the trial runs until quiescent.
  common::SimDuration horizon = common::SimDuration::hours(2);
  /// Poisson rate of origin control jobs (stage a file to a random site,
  /// run a job there, notice back) — the cross-shard traffic.
  double control_jobs_per_hour = 120.0;
  common::DataSize stage_size = common::DataSize::mib(64);
  /// Per-group recorders (driver spans + per-site instants), merged
  /// deterministically into the trial's Snapshot.
  bool observability = false;
  /// Site downtime injection (the fault-differential test drives this).
  std::vector<GridOutage> outages;
};

/// Result of one grid trial.
struct GridTrialResult {
  /// FNV-1a over per-site observables (submitted, finish counts, wait
  /// history), the driver ledger, events executed, posts routed, and the
  /// merged span checksum, in site order — the bit-identity witness across
  /// shard counts and `jobs` values.
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t posts = 0;
  std::uint64_t background_jobs = 0;
  std::uint64_t control_jobs = 0;
  std::uint64_t control_completed = 0;
  double wall_seconds = 0.0;
  /// Merged per-group observability snapshot (all-zero when disabled).
  obs::Snapshot obs;
};

/// Runs one grid trial in a fresh world derived from `seed`.
[[nodiscard]] GridTrialResult run_grid_trial(const GridSpec& spec, std::uint64_t seed);

/// Aggregate of repeated grid trials.
struct GridCellResult {
  /// FNV-1a fold of trial digests in seed order.
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t posts = 0;
  std::uint64_t background_jobs = 0;
  std::uint64_t control_jobs = 0;
  std::uint64_t control_completed = 0;
  double wall_seconds = 0.0;
  std::uint64_t obs_span_checksum = 0;
};

/// Runs `n_trials` trials (seeds base_seed+1 ...) on a sim::ReplicaPool of
/// `jobs` workers and aggregates in seed order; bit-identical for every
/// (jobs, shards) combination. Sharded trials already parallelize inside,
/// so benches pick jobs == 1 with shards > 1 or vice versa.
[[nodiscard]] GridCellResult run_grid_cell(const GridSpec& spec, int n_trials,
                                           std::uint64_t base_seed, int jobs = 1);

}  // namespace aimes::exp
