// CLI flag surface of exp::RunRequest — one registration shared by every
// front end that accepts the run flags (`aimes-run`, `aimesc submit`), so
// `--pilots` cannot mean one thing on the CLI and another over HTTP. Every
// spelling, bound, and help string is the historical aimes-run one; the
// request tests assert flag-built and JSON-built requests coincide.
#pragma once

#include "common/cli.hpp"
#include "exp/request.hpp"

namespace aimes::exp {

/// Registers the shared run flags on `cli`, writing into `req` (and the
/// `--quick` flag into `quick`). The caller adds its own front-end-specific
/// flags (presentation, daemon address, ...) on the same parser; `req` and
/// `quick` must outlive the parse.
void declare_request_options(common::cli::Parser& cli, RunRequest& req, bool& quick);

/// Post-parse fixups that depend on which flags were *seen*: `--quick`
/// defaults (16 tasks, 2 pilots, 1 h warmup unless overridden), the
/// quota/slo/queue-wait knobs arming admission, and the breaker knobs arming
/// the breakers. Call after cli.parse(); validate(req) still applies.
void finalize_request_options(const common::cli::Parser& cli, RunRequest& req, bool quick);

}  // namespace aimes::exp
