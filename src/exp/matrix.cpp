#include "exp/matrix.hpp"

#include <cassert>

#include "skeleton/profiles.hpp"

namespace aimes::exp {

skeleton::SkeletonSpec ExperimentSpec::make_skeleton(int tasks) const {
  return gaussian_durations ? skeleton::profiles::bag_gaussian(tasks)
                            : skeleton::profiles::bag_uniform(tasks);
}

core::PlannerConfig ExperimentSpec::make_planner_config() const {
  core::PlannerConfig cfg;
  cfg.binding = binding;
  cfg.scheduler = scheduler;
  cfg.n_pilots = n_pilots;
  cfg.selection = core::SiteSelection::kRandom;
  return cfg;
}

std::vector<ExperimentSpec> table1_experiments() {
  std::vector<ExperimentSpec> out;
  out.push_back({1, core::Binding::kEarly, pilot::UnitSchedulerKind::kDirect, 1, false,
                 "Early Uniform 1 Pilot (Exp. 1)"});
  out.push_back({2, core::Binding::kEarly, pilot::UnitSchedulerKind::kDirect, 1, true,
                 "Early Gaussian 1 Pilot (Exp. 2)"});
  out.push_back({3, core::Binding::kLate, pilot::UnitSchedulerKind::kBackfill, 3, false,
                 "Late Uniform 3 Pilots (Exp. 3)"});
  out.push_back({4, core::Binding::kLate, pilot::UnitSchedulerKind::kBackfill, 3, true,
                 "Late Gaussian 3 Pilots (Exp. 4)"});
  return out;
}

ExperimentSpec table1_experiment(int id) {
  assert(id >= 1 && id <= 4);
  return table1_experiments()[static_cast<std::size_t>(id - 1)];
}

std::vector<int> table1_task_counts() {
  std::vector<int> out;
  for (int n = 3; n <= 11; ++n) out.push_back(1 << n);
  return out;
}

}  // namespace aimes::exp
