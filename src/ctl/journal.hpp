// Persistent run journal: the registry's crash-safe memory.
//
// `aimesd --journal FILE` turns the in-memory run table into a durable one:
// the registry appends one JSONL record per lifecycle transition (submit /
// start / log / progress / finish) and replays the file at startup, so a
// restarted daemon serves the full history of every prior run — request,
// log, progress snapshots, result — and marks runs that were in flight when
// the process died as failed with the typed daemon-restart reason.
//
// The format is append-only JSONL written through the typed core::json
// layer: one self-describing object per line, whole RunRequest / RunResult /
// RunProgress documents embedded as nested objects (newlines stripped — the
// line *is* the framing). Replay is a pure function of the file: it
// tolerates a truncated final line (the SIGKILL-mid-write case) by skipping
// anything that does not parse, and replaying the same file twice yields
// identical records.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "ctl/registry.hpp"

namespace aimes::ctl {

/// Append-side of the journal. All writes are one flushed line; an unopened
/// journal ignores every write (the registry runs journal-less by default).
class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens `path` for append (creating it). Replay is the caller's job —
  /// open() never reads.
  [[nodiscard]] common::Status open(const std::string& path);
  [[nodiscard]] bool is_open() const { return file_ != nullptr; }

  void submit(const RunRecord& record);
  void start(const RunRecord& record);
  void log_line(std::uint64_t id, const std::string& line);
  void progress(std::uint64_t id, const exp::RunProgress& progress);
  /// One terminal record carrying the final state, the typed reasons, and
  /// the whole result document.
  void finish(const RunRecord& record);

 private:
  void append(const std::string& line);

  std::FILE* file_ = nullptr;
};

/// Result of replaying one journal file.
struct JournalReplay {
  /// Reconstructed records in id order, exactly as the journal's transitions
  /// left them — runs without a finish record come back queued/running and
  /// the registry resurrects them as failed (daemon-restart).
  std::vector<RunRecord> records;
  std::size_t lines = 0;            ///< lines read (including skipped ones)
  std::size_t malformed_lines = 0;  ///< skipped: truncated tail, garbage
};

/// Replays `path` into records. A missing file is an empty journal (fresh
/// daemon), not an error; only an unreadable existing file fails. Pure: no
/// side effects, idempotent across repeated calls.
[[nodiscard]] common::Expected<JournalReplay> replay_journal(const std::string& path);

/// Spelling parsers for the journal's state/reason strings (the inverses of
/// the to_string overloads in registry.hpp). Return false on unknown text.
[[nodiscard]] bool parse_run_state(std::string_view text, RunState& out);
[[nodiscard]] bool parse_cancel_reason(std::string_view text, CancelReason& out);
[[nodiscard]] bool parse_fail_reason(std::string_view text, FailReason& out);

}  // namespace aimes::ctl
