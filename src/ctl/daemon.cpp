#include "ctl/daemon.hpp"

#include <algorithm>
#include <cinttypes>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>

#include "cluster/testbed.hpp"
#include "ctl/journal.hpp"
#include "core/json_scan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"

namespace aimes::ctl {

namespace {

net::HttpResponse json_error(int status, const std::string& message) {
  net::HttpResponse res;
  res.status = status;
  res.body = "{\"error\": \"" + core::json::escape(message) + "\"}\n";
  return res;
}

net::HttpResponse json_ok(std::string body) {
  net::HttpResponse res;
  res.body = std::move(body);
  return res;
}

/// Splits "/api/v1/runs/17/log" past the prefix into (id, trailing verb).
bool parse_run_path(const std::string& path, std::uint64_t& id, std::string& verb) {
  const std::string prefix = "/api/v1/runs/";
  if (path.rfind(prefix, 0) != 0) return false;
  const std::string rest = path.substr(prefix.size());
  char* end = nullptr;
  id = std::strtoull(rest.c_str(), &end, 10);
  if (end == rest.c_str()) return false;
  verb = *end == '/' ? std::string(end + 1) : std::string(end);
  return verb.empty() || *end == '/';
}

/// Parses a decimal query parameter; an absent value means 0. Rejects any
/// non-digit text (a garbled offset must be a 400, not a silent restart
/// from byte 0 that would duplicate everything the client already has).
bool parse_offset(const std::string& text, std::uint64_t& out) {
  out = 0;
  if (text.empty()) return true;
  if (text[0] < '0' || text[0] > '9') return false;  // strtoull accepts "-1"
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return *end == '\0';
}

}  // namespace

std::string run_record_to_json(const RunRecord& record) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"id\": " << record.id << ",\n";
  out << "  \"user\": \"" << core::json::escape(record.user) << "\",\n";
  out << "  \"name\": \"" << core::json::escape(record.name) << "\",\n";
  out << "  \"state\": \"" << to_string(record.state) << "\",\n";
  out << "  \"cancel_reason\": \"" << to_string(record.cancel_reason) << "\",\n";
  out << "  \"fail_reason\": \"" << to_string(record.fail_reason) << "\",\n";
  out << "  \"kind\": \"" << (record.request.is_campaign() ? "campaign" : "single")
      << "\",\n";
  out << "  \"trials\": " << record.request.trials << ",\n";
  out << "  \"seed\": " << record.request.seed << ",\n";
  out << "  \"submitted_at\": " << record.submitted_at << ",\n";
  out << "  \"started_at\": " << record.started_at << ",\n";
  out << "  \"finished_at\": " << record.finished_at << ",\n";
  out << "  \"log_lines\": " << record.log.size() << ",\n";
  out << "  \"progress_events\": " << record.progress.size() << ",\n";
  // The most recent snapshots only: a long campaign emits one per trial and
  // the full stream lives on /events and in the journal.
  constexpr std::size_t kMaxProgress = 32;
  const std::size_t skip =
      record.progress.size() > kMaxProgress ? record.progress.size() - kMaxProgress : 0;
  out << "  \"progress\": [";
  for (std::size_t i = skip; i < record.progress.size(); ++i) {
    if (i > skip) out << ",";
    out << "\n    " << exp::run_progress_to_json(record.progress[i]);
  }
  out << (record.progress.size() > skip ? "\n  " : "") << "],\n";
  std::string result = exp::run_result_to_json(record.result);
  // Indent the nested object to keep the document readable in a terminal.
  std::string indented;
  for (const char c : result) {
    indented += c;
    if (c == '\n') indented += "  ";
  }
  while (!indented.empty() && (indented.back() == ' ' || indented.back() == '\n')) {
    indented.pop_back();
  }
  out << "  \"result\": " << indented << "\n";
  out << "}\n";
  return out.str();
}

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      registry_(Registry::Options{options_.workers, options_.executor,
                                  options_.journal_file, options_.quota,
                                  options_.clock_s}) {}

common::Expected<std::uint16_t> Daemon::start(std::uint16_t port) {
  return server_.start(port,
                       [this](const net::HttpRequest& request) { return handle(request); });
}

common::Status Daemon::start_unix(const std::string& path) {
  return server_.start_unix(
      path, [this](const net::HttpRequest& request) { return handle(request); });
}

void Daemon::stop() {
  server_.stop();
  registry_.drain(/*cancel_running=*/true);
}

net::HttpResponse Daemon::handle(const net::HttpRequest& request) {
  const std::string& path = request.path;
  if (path == "/api/v1/runs") {
    if (request.method == "POST") return submit(request);
    if (request.method == "GET") return list_runs(request);
    return json_error(405, "runs supports GET and POST");
  }
  std::uint64_t id = 0;
  std::string verb;
  if (parse_run_path(path, id, verb)) {
    if (verb.empty() && request.method == "GET") return view_run(id);
    if (verb.empty() && request.method == "DELETE") return cancel_run(id);
    if (verb == "log" && request.method == "GET") return run_log(id, request);
    if (verb == "events" && request.method == "GET") return run_events(id, request);
    if (verb == "cancel" && request.method == "POST") return cancel_run(id);
    return json_error(405, "unsupported run operation " + request.method + " /" + verb);
  }
  if (path == "/api/v1/resource" && request.method == "GET") return resource();
  if (path == "/api/v1/health" && request.method == "GET") return health();
  if (path == "/api/v1/shutdown" && request.method == "POST") {
    shutdown_.store(true);
    net::HttpResponse res;
    res.status = 202;
    res.body = "{\"status\": \"draining\"}\n";
    return res;
  }
  if (path == "/metrics" && request.method == "GET") return metrics();
  return json_error(404, "no route for " + request.method + " " + path);
}

net::HttpResponse Daemon::submit(const net::HttpRequest& request) {
  auto parsed = exp::parse_run_request("request body", request.body);
  if (!parsed) return json_error(400, parsed.error());
  std::string user = parsed->user.empty() ? options_.default_user : parsed->user;
  const std::string key = request.header("idempotency-key");
  const SubmitOutcome outcome = registry_.submit(std::move(*parsed), std::move(user), key);
  if (!outcome.accepted) {
    // The quota ladder's typed refusals: transient ones (bucket empty, quota
    // hit, queue full, draining) are 429/503 with a Retry-After hint so a
    // well-behaved client backs off instead of hammering; kInvalid stays a
    // 400 — no retry will ever help.
    int status = 400;
    switch (outcome.reject) {
      case RejectReason::kRateLimited:
      case RejectReason::kUserQueued:
        status = 429;
        break;
      case RejectReason::kQueueFull:
      case RejectReason::kDraining:
        status = 503;
        break;
      default:
        break;
    }
    net::HttpResponse res;
    res.status = status;
    std::ostringstream body;
    body << "{\"error\": \"" << core::json::escape(outcome.error) << "\", \"reason\": \""
         << to_string(outcome.reject) << "\"";
    if (status != 400) {
      res.headers["Retry-After"] =
          std::to_string(std::max(1, static_cast<int>(std::ceil(outcome.retry_after_s))));
      body << ", \"retry_after_s\": " << outcome.retry_after_s;
    }
    body << "}\n";
    res.body = body.str();
    return res;
  }
  net::HttpResponse res;
  res.status = 202;
  if (!key.empty()) res.headers["Idempotency-Key"] = key;
  res.body = "{\"id\": " + std::to_string(outcome.id) +
             ", \"duplicate\": " + (outcome.duplicate ? "true" : "false") + "}\n";
  return res;
}

net::HttpResponse Daemon::list_runs(const net::HttpRequest& request) {
  const std::string user = request.query_param("user");
  const std::string state_text = request.query_param("state");
  std::vector<RunRecord> records;
  if (state_text.empty()) {
    records = registry_.list(user);
  } else {
    RunState state = RunState::kQueued;
    if (!parse_run_state(state_text, state)) {
      return json_error(400, "unknown state '" + state_text +
                                 "' (queued|running|done|failed|cancelled)");
    }
    records = registry_.list(user, state);
  }
  std::ostringstream out;
  out << "{\"runs\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    // The latest snapshot rides along so `aimesc list` / `top` can show live
    // trial counts without one /runs/<id> round trip per row.
    const exp::RunProgress latest =
        r.progress.empty() ? exp::RunProgress{} : r.progress.back();
    out << "  {\"id\": " << r.id << ", \"user\": \"" << core::json::escape(r.user)
        << "\", \"name\": \"" << core::json::escape(r.name) << "\", \"state\": \""
        << to_string(r.state) << "\", \"kind\": \""
        << (r.request.is_campaign() ? "campaign" : "single")
        << "\", \"trials_done\": " << latest.trials_done
        << ", \"trials_total\": " << r.request.trials << ", \"vt_s\": " << latest.vt_seconds
        << ", \"sheds\": " << latest.tenants_shed << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  return json_ok(out.str());
}

net::HttpResponse Daemon::view_run(std::uint64_t id) {
  auto record = registry_.get(id);
  if (!record) return json_error(404, record.error());
  return json_ok(run_record_to_json(*record));
}

net::HttpResponse Daemon::run_log(std::uint64_t id, const net::HttpRequest& request) {
  std::uint64_t offset = 0;
  if (!parse_offset(request.query_param("offset"), offset)) {
    return json_error(400, "offset must be a non-negative integer");
  }
  auto tail = registry_.log_tail(id, offset);
  if (!tail) return json_error(404, tail.error());
  net::HttpResponse res;
  res.content_type = "text/plain";
  res.body = std::move(tail->data);
  if (request.query_param("follow") == "1" && !tail->terminal) {
    // Chunked live tail: each pull is one bounded registry wait, so the
    // stream stays responsive to both new log bytes and server shutdown.
    auto next = std::make_shared<std::size_t>(tail->next_offset);
    res.stream = [this, id, next](std::string& out) {
      auto slice = registry_.wait_log(id, *next, std::chrono::milliseconds(400));
      if (!slice) return false;
      out += slice->data;
      const bool drained = slice->data.empty();
      *next = slice->next_offset;
      return !(slice->terminal && drained);
    };
  }
  return res;
}

net::HttpResponse Daemon::run_events(std::uint64_t id, const net::HttpRequest& request) {
  std::uint64_t from_seq = 0;
  if (!parse_offset(request.query_param("offset"), from_seq)) {
    return json_error(400, "offset must be a non-negative integer");
  }
  if (auto record = registry_.get(id); !record) return json_error(404, record.error());
  net::HttpResponse res;
  res.content_type = "text/event-stream";
  struct Cursor {
    std::uint64_t next_seq;
    int idle_pulls = 0;
  };
  auto cursor = std::make_shared<Cursor>(Cursor{from_seq});
  res.stream = [this, id, cursor](std::string& out) {
    auto tail = registry_.wait_events(id, cursor->next_seq, std::chrono::milliseconds(400));
    if (!tail) return false;
    for (const auto& event : tail->events) {
      out += "id: " + std::to_string(event.seq) + "\n";
      out += "event: " + event.kind + "\n";
      out += "data: " + event.data + "\n\n";
    }
    cursor->next_seq = tail->next_seq;
    if (tail->events.empty()) {
      if (tail->terminal) return false;  // drained and no more will come
      // A zero-length chunk would terminate the stream, so quiet periods
      // send SSE comments instead — they also prove liveness to the client.
      if (++cursor->idle_pulls >= 5) {
        cursor->idle_pulls = 0;
        out += ": keepalive\n\n";
      }
    } else {
      cursor->idle_pulls = 0;
    }
    return true;
  };
  return res;
}

net::HttpResponse Daemon::cancel_run(std::uint64_t id) {
  if (auto st = registry_.cancel(id, CancelReason::kUser); !st.ok()) {
    return json_error(404, st.error());
  }
  auto record = registry_.get(id);
  net::HttpResponse res;
  res.status = 202;
  res.body = "{\"id\": " + std::to_string(id) + ", \"state\": \"" +
             std::string(record ? to_string(record->state) : "unknown") + "\"}\n";
  return res;
}

net::HttpResponse Daemon::resource() {
  // The grid every run executes on (unless its request replaces the testbed):
  // the paper's five-site pool.
  const auto sites = cluster::standard_testbed();
  std::ostringstream out;
  out << "{\"sites\": [\n";
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const auto& s = sites[i].site;
    out << "  {\"name\": \"" << core::json::escape(s.name) << "\", \"nodes\": " << s.nodes
        << ", \"cores_per_node\": " << s.cores_per_node << ", \"scheduler\": \""
        << core::json::escape(s.scheduler) << "\", \"max_walltime_h\": "
        << s.max_walltime.to_hours() << ", \"charge_per_core_hour\": "
        << s.charge_per_core_hour << "}" << (i + 1 < sites.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  return json_ok(out.str());
}

net::HttpResponse Daemon::health() {
  std::ostringstream out;
  out << "{\"status\": \"" << (shutdown_.load() ? "draining" : "ok")
      << "\", \"queued\": " << registry_.queued() << ", \"running\": " << registry_.running()
      << "}\n";
  return json_ok(out.str());
}

net::HttpResponse Daemon::metrics() {
  // Rebuilt per scrape from the registry's counters: obs::MetricsRegistry is
  // not thread-safe, and a scrape-local registry needs no locking discipline
  // beyond the registry's own.
  const RegistryCounters c = registry_.counters();
  obs::MetricsRegistry reg;
  reg.counter("aimes_ctl_runs_submitted").add(static_cast<double>(c.submitted));
  reg.counter("aimes_ctl_runs_completed").add(static_cast<double>(c.completed));
  reg.counter("aimes_ctl_runs_failed").add(static_cast<double>(c.failed));
  reg.counter("aimes_ctl_runs_cancelled").add(static_cast<double>(c.cancelled));
  reg.gauge("aimes_ctl_runs_queued").set(static_cast<double>(registry_.queued()));
  reg.gauge("aimes_ctl_runs_running").set(static_cast<double>(registry_.running()));
  auto& queue_wait =
      reg.histogram("aimes_ctl_run_queue_wait_seconds", {}, 0.0, 30.0, 10);
  for (const double v : registry_.queue_wait_seconds()) queue_wait.observe(v);
  auto& duration = reg.histogram("aimes_ctl_run_duration_seconds", {}, 0.0, 120.0, 12);
  for (const double v : registry_.run_duration_seconds()) duration.observe(v);
  // The hardening tier: per-user admission ledgers, the rate-limit total,
  // and how often idempotency keys were replayed (each submit-with-key run
  // contributes its replay count as one histogram sample, so the histogram's
  // count is keyed runs and its sum is retried submits answered for free).
  std::uint64_t rate_limited_total = 0;
  for (const auto& [user, uc] : registry_.user_counters()) {
    const obs::Labels labels{{"user", user}};
    reg.counter("aimes_ctl_user_runs_submitted", labels).add(static_cast<double>(uc.submitted));
    reg.counter("aimes_ctl_user_runs_admitted", labels).add(static_cast<double>(uc.admitted));
    reg.counter("aimes_ctl_user_runs_shed", labels).add(static_cast<double>(uc.shed));
    reg.counter("aimes_ctl_user_rate_limited", labels).add(static_cast<double>(uc.rate_limited));
    reg.counter("aimes_ctl_user_idempotent_replays", labels)
        .add(static_cast<double>(uc.replays));
    rate_limited_total += uc.rate_limited;
  }
  reg.counter("aimes_ctl_rate_limited_total").add(static_cast<double>(rate_limited_total));
  auto& replays = reg.histogram("aimes_ctl_idempotency_replays", {}, 0.0, 8.0, 8);
  for (const double v : registry_.idempotency_replays()) replays.observe(v);
  std::ostringstream out;
  obs::export_prometheus(reg, out);
  net::HttpResponse res;
  res.content_type = "text/plain; version=0.0.4";
  res.body = out.str();
  return res;
}

}  // namespace aimes::ctl
