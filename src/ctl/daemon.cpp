#include "ctl/daemon.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "cluster/testbed.hpp"
#include "core/json_scan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"

namespace aimes::ctl {

namespace {

net::HttpResponse json_error(int status, const std::string& message) {
  net::HttpResponse res;
  res.status = status;
  res.body = "{\"error\": \"" + core::json::escape(message) + "\"}\n";
  return res;
}

net::HttpResponse json_ok(std::string body) {
  net::HttpResponse res;
  res.body = std::move(body);
  return res;
}

/// Splits "/api/v1/runs/17/log" past the prefix into (id, trailing verb).
bool parse_run_path(const std::string& path, std::uint64_t& id, std::string& verb) {
  const std::string prefix = "/api/v1/runs/";
  if (path.rfind(prefix, 0) != 0) return false;
  const std::string rest = path.substr(prefix.size());
  char* end = nullptr;
  id = std::strtoull(rest.c_str(), &end, 10);
  if (end == rest.c_str()) return false;
  verb = *end == '/' ? std::string(end + 1) : std::string(end);
  return verb.empty() || *end == '/';
}

}  // namespace

std::string run_record_to_json(const RunRecord& record) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"id\": " << record.id << ",\n";
  out << "  \"user\": \"" << core::json::escape(record.user) << "\",\n";
  out << "  \"name\": \"" << core::json::escape(record.name) << "\",\n";
  out << "  \"state\": \"" << to_string(record.state) << "\",\n";
  out << "  \"cancel_reason\": \"" << to_string(record.cancel_reason) << "\",\n";
  out << "  \"kind\": \"" << (record.request.is_campaign() ? "campaign" : "single")
      << "\",\n";
  out << "  \"trials\": " << record.request.trials << ",\n";
  out << "  \"seed\": " << record.request.seed << ",\n";
  out << "  \"submitted_at\": " << record.submitted_at << ",\n";
  out << "  \"started_at\": " << record.started_at << ",\n";
  out << "  \"finished_at\": " << record.finished_at << ",\n";
  out << "  \"log_lines\": " << record.log.size() << ",\n";
  std::string result = exp::run_result_to_json(record.result);
  // Indent the nested object to keep the document readable in a terminal.
  std::string indented;
  for (const char c : result) {
    indented += c;
    if (c == '\n') indented += "  ";
  }
  while (!indented.empty() && (indented.back() == ' ' || indented.back() == '\n')) {
    indented.pop_back();
  }
  out << "  \"result\": " << indented << "\n";
  out << "}\n";
  return out.str();
}

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      registry_(Registry::Options{options_.workers, options_.executor}) {}

common::Expected<std::uint16_t> Daemon::start(std::uint16_t port) {
  return server_.start(port,
                       [this](const net::HttpRequest& request) { return handle(request); });
}

void Daemon::stop() {
  server_.stop();
  registry_.drain(/*cancel_running=*/true);
}

net::HttpResponse Daemon::handle(const net::HttpRequest& request) {
  const std::string& path = request.path;
  if (path == "/api/v1/runs") {
    if (request.method == "POST") return submit(request);
    if (request.method == "GET") return list_runs(request);
    return json_error(405, "runs supports GET and POST");
  }
  std::uint64_t id = 0;
  std::string verb;
  if (parse_run_path(path, id, verb)) {
    if (verb.empty() && request.method == "GET") return view_run(id);
    if (verb.empty() && request.method == "DELETE") return cancel_run(id);
    if (verb == "log" && request.method == "GET") return run_log(id);
    if (verb == "cancel" && request.method == "POST") return cancel_run(id);
    return json_error(405, "unsupported run operation " + request.method + " /" + verb);
  }
  if (path == "/api/v1/resource" && request.method == "GET") return resource();
  if (path == "/api/v1/health" && request.method == "GET") return health();
  if (path == "/api/v1/shutdown" && request.method == "POST") {
    shutdown_.store(true);
    net::HttpResponse res;
    res.status = 202;
    res.body = "{\"status\": \"draining\"}\n";
    return res;
  }
  if (path == "/metrics" && request.method == "GET") return metrics();
  return json_error(404, "no route for " + request.method + " " + path);
}

net::HttpResponse Daemon::submit(const net::HttpRequest& request) {
  auto parsed = exp::parse_run_request("request body", request.body);
  if (!parsed) return json_error(400, parsed.error());
  std::string user = parsed->user.empty() ? options_.default_user : parsed->user;
  auto id = registry_.submit(std::move(*parsed), std::move(user));
  if (!id) {
    // Intake refusals during drain are 503 (retry against the next daemon);
    // validation failures were caught by the parse above.
    const bool draining = id.error().find("draining") != std::string::npos;
    return json_error(draining ? 503 : 400, id.error());
  }
  net::HttpResponse res;
  res.status = 202;
  res.body = "{\"id\": " + std::to_string(*id) + "}\n";
  return res;
}

net::HttpResponse Daemon::list_runs(const net::HttpRequest& request) {
  const auto records = registry_.list(request.query_param("user"));
  std::ostringstream out;
  out << "{\"runs\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    out << "  {\"id\": " << r.id << ", \"user\": \"" << core::json::escape(r.user)
        << "\", \"name\": \"" << core::json::escape(r.name) << "\", \"state\": \""
        << to_string(r.state) << "\", \"kind\": \""
        << (r.request.is_campaign() ? "campaign" : "single") << "\"}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  return json_ok(out.str());
}

net::HttpResponse Daemon::view_run(std::uint64_t id) {
  auto record = registry_.get(id);
  if (!record) return json_error(404, record.error());
  return json_ok(run_record_to_json(*record));
}

net::HttpResponse Daemon::run_log(std::uint64_t id) {
  auto record = registry_.get(id);
  if (!record) return json_error(404, record.error());
  net::HttpResponse res;
  res.content_type = "text/plain";
  for (const auto& line : record->log) res.body += line + "\n";
  return res;
}

net::HttpResponse Daemon::cancel_run(std::uint64_t id) {
  if (auto st = registry_.cancel(id, CancelReason::kUser); !st.ok()) {
    return json_error(404, st.error());
  }
  auto record = registry_.get(id);
  net::HttpResponse res;
  res.status = 202;
  res.body = "{\"id\": " + std::to_string(id) + ", \"state\": \"" +
             std::string(record ? to_string(record->state) : "unknown") + "\"}\n";
  return res;
}

net::HttpResponse Daemon::resource() {
  // The grid every run executes on (unless its request replaces the testbed):
  // the paper's five-site pool.
  const auto sites = cluster::standard_testbed();
  std::ostringstream out;
  out << "{\"sites\": [\n";
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const auto& s = sites[i].site;
    out << "  {\"name\": \"" << core::json::escape(s.name) << "\", \"nodes\": " << s.nodes
        << ", \"cores_per_node\": " << s.cores_per_node << ", \"scheduler\": \""
        << core::json::escape(s.scheduler) << "\", \"max_walltime_h\": "
        << s.max_walltime.to_hours() << ", \"charge_per_core_hour\": "
        << s.charge_per_core_hour << "}" << (i + 1 < sites.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  return json_ok(out.str());
}

net::HttpResponse Daemon::health() {
  std::ostringstream out;
  out << "{\"status\": \"" << (shutdown_.load() ? "draining" : "ok")
      << "\", \"queued\": " << registry_.queued() << ", \"running\": " << registry_.running()
      << "}\n";
  return json_ok(out.str());
}

net::HttpResponse Daemon::metrics() {
  // Rebuilt per scrape from the registry's counters: obs::MetricsRegistry is
  // not thread-safe, and a scrape-local registry needs no locking discipline
  // beyond the registry's own.
  const RegistryCounters c = registry_.counters();
  obs::MetricsRegistry reg;
  reg.counter("aimes_ctl_runs_submitted").add(static_cast<double>(c.submitted));
  reg.counter("aimes_ctl_runs_completed").add(static_cast<double>(c.completed));
  reg.counter("aimes_ctl_runs_failed").add(static_cast<double>(c.failed));
  reg.counter("aimes_ctl_runs_cancelled").add(static_cast<double>(c.cancelled));
  reg.gauge("aimes_ctl_runs_queued").set(static_cast<double>(registry_.queued()));
  reg.gauge("aimes_ctl_runs_running").set(static_cast<double>(registry_.running()));
  std::ostringstream out;
  obs::export_prometheus(reg, out);
  net::HttpResponse res;
  res.content_type = "text/plain; version=0.0.4";
  res.body = out.str();
  return res;
}

}  // namespace aimes::ctl
