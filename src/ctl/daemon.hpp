// aimesd's brain: the HTTP route table over ctl::Registry.
//
// The daemon owns the registry (worker pool + run table) and an HTTP server,
// and maps the control-plane REST surface onto them:
//
//   POST   /api/v1/runs            submit a RunRequest (202 {"id": N} / 400;
//                                  quota refusals are typed 429/503 bodies
//                                  with Retry-After; an Idempotency-Key
//                                  header dedups retried submits)
//   GET    /api/v1/runs[?user=U][&state=S]   list runs, newest first
//   GET    /api/v1/runs/<id>       one run's record + result summary
//   GET    /api/v1/runs/<id>/log[?offset=N][&follow=1]
//                                  the run's log, text/plain; offset=N tails
//                                  from byte N, follow=1 streams live
//                                  (chunked) until the run is terminal
//   GET    /api/v1/runs/<id>/events[?offset=N]
//                                  live SSE stream of state transitions and
//                                  RunProgress snapshots, resumable by seq
//   POST   /api/v1/runs/<id>/cancel   request cancellation (also DELETE)
//   GET    /api/v1/resource        the simulated grid the runs execute on
//   GET    /api/v1/health          liveness + queue depth
//   POST   /api/v1/shutdown        ask the daemon to drain and exit
//   GET    /metrics                Prometheus counters + latency histograms
//
// handle() is a pure request->response function (given registry state), so
// the route tests drive it directly; the socket layer is net::HttpServer.
#pragma once

#include <atomic>
#include <cstdint>

#include "ctl/registry.hpp"
#include "net/http.hpp"

namespace aimes::ctl {

struct DaemonOptions {
  /// Owner recorded for submissions that name no user.
  std::string default_user = "anon";
  /// Concurrent runs (registry workers).
  int workers = 2;
  /// Executor override for tests; empty = exp::execute.
  Registry::Executor executor;
  /// JSONL run journal (aimesd --journal): replayed at startup, appended per
  /// lifecycle transition. Empty = in-memory only. Open/replay failures land
  /// in registry().journal_status(); aimesd refuses to start on them.
  std::string journal_file;
  /// The per-user quota ladder (aimesd --rate/--max-queued/...); all-zero
  /// defaults keep the daemon unlimited, matching the pre-hardening surface.
  QuotaPolicy quota;
  /// Clock override for the registry's rate limiter and deadlines (tests).
  std::function<double()> clock_s;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options = {});

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and serves. Returns the port.
  [[nodiscard]] common::Expected<std::uint16_t> start(std::uint16_t port);

  /// Binds a unix-domain socket at `path` (aimesd --socket) and serves.
  [[nodiscard]] common::Status start_unix(const std::string& path);

  /// Graceful shutdown: stop accepting HTTP, then drain the registry —
  /// queued runs are cancelled with the shutdown reason, in-flight runs are
  /// stopped at their next trial boundary and report trials_skipped.
  void stop();

  /// The route table, exposed for transport-free tests.
  [[nodiscard]] net::HttpResponse handle(const net::HttpRequest& request);

  /// Set once a client POSTs /api/v1/shutdown; aimesd's main loop polls it.
  [[nodiscard]] bool shutdown_requested() const { return shutdown_.load(); }

  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] std::uint16_t port() const { return server_.port(); }
  [[nodiscard]] const net::Endpoint& endpoint() const { return server_.endpoint(); }

 private:
  net::HttpResponse submit(const net::HttpRequest& request);
  net::HttpResponse list_runs(const net::HttpRequest& request);
  net::HttpResponse view_run(std::uint64_t id);
  net::HttpResponse run_log(std::uint64_t id, const net::HttpRequest& request);
  net::HttpResponse run_events(std::uint64_t id, const net::HttpRequest& request);
  net::HttpResponse cancel_run(std::uint64_t id);
  net::HttpResponse resource();
  net::HttpResponse health();
  net::HttpResponse metrics();

  DaemonOptions options_;
  Registry registry_;
  net::HttpServer server_;
  std::atomic<bool> shutdown_{false};
};

/// One run record as the daemon's JSON view (shared by view and list).
[[nodiscard]] std::string run_record_to_json(const RunRecord& record);

}  // namespace aimes::ctl
