#include "ctl/journal.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "core/json_scan.hpp"

namespace aimes::ctl {

namespace {

/// Flattens a multi-line JSON document (run_request_to_json and friends are
/// pretty-printed) onto one journal line. Newlines only ever appear between
/// JSON tokens — strings escape them — so a space substitution is lossless.
std::string compact(const std::string& json) {
  std::string out;
  out.reserve(json.size());
  for (const char c : json) out += c == '\n' ? ' ' : c;
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

}  // namespace

bool parse_run_state(std::string_view text, RunState& out) {
  if (text == "queued") {
    out = RunState::kQueued;
  } else if (text == "running") {
    out = RunState::kRunning;
  } else if (text == "done") {
    out = RunState::kDone;
  } else if (text == "failed") {
    out = RunState::kFailed;
  } else if (text == "cancelled") {
    out = RunState::kCancelled;
  } else {
    return false;
  }
  return true;
}

bool parse_cancel_reason(std::string_view text, CancelReason& out) {
  if (text == "none") {
    out = CancelReason::kNone;
  } else if (text == "user") {
    out = CancelReason::kUser;
  } else if (text == "shutdown") {
    out = CancelReason::kShutdown;
  } else if (text == "deadline") {
    out = CancelReason::kDeadline;
  } else {
    return false;
  }
  return true;
}

bool parse_fail_reason(std::string_view text, FailReason& out) {
  if (text == "none") {
    out = FailReason::kNone;
  } else if (text == "execution") {
    out = FailReason::kExecution;
  } else if (text == "daemon-restart") {
    out = FailReason::kDaemonRestart;
  } else if (text == "deadline") {
    out = FailReason::kDeadline;
  } else {
    return false;
  }
  return true;
}

Journal::~Journal() {
  if (file_ != nullptr) std::fclose(file_);
}

common::Status Journal::open(const std::string& path) {
  if (file_ != nullptr) return common::Status::error("journal: already open");
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    return common::Status::error("journal: cannot open " + path + " for append: " +
                                 std::strerror(errno));
  }
  return {};
}

void Journal::append(const std::string& line) {
  if (file_ == nullptr) return;
  std::fputs(line.c_str(), file_);
  std::fputc('\n', file_);
  // One flush per transition: a SIGKILL loses at most the line being
  // written, which replay tolerates as a truncated tail.
  std::fflush(file_);
}

void Journal::submit(const RunRecord& record) {
  if (file_ == nullptr) return;
  std::ostringstream out;
  out << "{\"event\": \"submit\", \"id\": " << record.id << ", \"at\": "
      << record.submitted_at << ", \"user\": \"" << core::json::escape(record.user)
      << "\", \"name\": \"" << core::json::escape(record.name) << "\"";
  // The dedup token rides the journal so a restarted daemon still recognizes
  // a client's retried submit as the same run.
  if (!record.idempotency_key.empty()) {
    out << ", \"idempotency_key\": \"" << core::json::escape(record.idempotency_key) << "\"";
  }
  out << ", \"request\": " << compact(exp::run_request_to_json(record.request)) << "}";
  append(out.str());
}

void Journal::start(const RunRecord& record) {
  if (file_ == nullptr) return;
  append("{\"event\": \"start\", \"id\": " + std::to_string(record.id) +
         ", \"at\": " + std::to_string(record.started_at) + "}");
}

void Journal::log_line(std::uint64_t id, const std::string& line) {
  if (file_ == nullptr) return;
  append("{\"event\": \"log\", \"id\": " + std::to_string(id) + ", \"line\": \"" +
         core::json::escape(line) + "\"}");
}

void Journal::progress(std::uint64_t id, const exp::RunProgress& progress) {
  if (file_ == nullptr) return;
  append("{\"event\": \"progress\", \"id\": " + std::to_string(id) +
         ", \"progress\": " + exp::run_progress_to_json(progress) + "}");
}

void Journal::finish(const RunRecord& record) {
  if (file_ == nullptr) return;
  std::ostringstream out;
  out << "{\"event\": \"finish\", \"id\": " << record.id << ", \"at\": "
      << record.finished_at << ", \"state\": \"" << to_string(record.state)
      << "\", \"cancel_reason\": \"" << to_string(record.cancel_reason)
      << "\", \"fail_reason\": \"" << to_string(record.fail_reason)
      << "\", \"result\": " << compact(exp::run_result_to_json(record.result)) << "}";
  append(out.str());
}

namespace {

/// Applies one journal line to the record table. Returns false when the line
/// is malformed or references an unknown run (both are skipped by replay —
/// the truncated-tail and schema-drift tolerance).
bool apply_line(const std::string& origin, const std::string& line,
                std::map<std::uint64_t, RunRecord>& records) {
  const core::json::FieldScanner scan(origin, line);
  auto event = scan.text("event");
  if (!event) return false;
  auto id_value = scan.number("id");
  if (!id_value || *id_value < 1) return false;
  const auto id = static_cast<std::uint64_t>(*id_value);

  if (*event == "submit") {
    auto raw = scan.raw_object("request");
    if (!raw) return false;
    auto request = exp::parse_run_request(origin, *raw);
    if (!request) return false;
    RunRecord record;
    record.id = id;
    if (scan.has("user")) {
      auto user = scan.text("user");
      if (!user) return false;
      record.user = std::move(*user);
    }
    if (scan.has("name")) {
      auto name = scan.text("name");
      if (!name) return false;
      record.name = std::move(*name);
    }
    if (scan.has("idempotency_key")) {
      auto key = scan.text("idempotency_key");
      if (!key) return false;
      record.idempotency_key = std::move(*key);
    }
    if (auto at = scan.number("at")) record.submitted_at = static_cast<std::time_t>(*at);
    record.request = std::move(*request);
    records[id] = std::move(record);
    return true;
  }

  const auto found = records.find(id);
  if (found == records.end()) return false;  // transition without a submit
  RunRecord& record = found->second;

  if (*event == "start") {
    record.state = RunState::kRunning;
    if (auto at = scan.number("at")) record.started_at = static_cast<std::time_t>(*at);
    return true;
  }
  if (*event == "log") {
    auto text = scan.text("line");
    if (!text) return false;
    record.log.push_back(std::move(*text));
    return true;
  }
  if (*event == "progress") {
    auto raw = scan.raw_object("progress");
    if (!raw) return false;
    auto progress = exp::parse_run_progress(origin, *raw);
    if (!progress) return false;
    record.progress.push_back(*progress);
    return true;
  }
  if (*event == "finish") {
    auto state_text = scan.text("state");
    if (!state_text) return false;
    RunState state = RunState::kQueued;
    if (!parse_run_state(*state_text, state)) return false;
    auto raw = scan.raw_object("result");
    if (!raw) return false;
    auto result = exp::parse_run_result(origin, *raw);
    if (!result) return false;
    record.state = state;
    record.result = std::move(*result);
    if (auto at = scan.number("at")) record.finished_at = static_cast<std::time_t>(*at);
    if (scan.has("cancel_reason")) {
      auto reason = scan.text("cancel_reason");
      if (reason) (void)parse_cancel_reason(*reason, record.cancel_reason);
    }
    if (scan.has("fail_reason")) {
      auto reason = scan.text("fail_reason");
      if (reason) (void)parse_fail_reason(*reason, record.fail_reason);
    }
    return true;
  }
  return false;  // unknown event kind
}

}  // namespace

common::Expected<JournalReplay> replay_journal(const std::string& path) {
  using E = common::Expected<JournalReplay>;
  JournalReplay out;
  errno = 0;
  std::ifstream in(path);
  if (!in.is_open()) {
    // A journal that does not exist yet is a fresh daemon, not a failure;
    // anything else (permissions, a directory) is.
    if (errno == ENOENT || errno == 0) return out;
    return E::error("journal: cannot read " + path + ": " + std::strerror(errno));
  }
  std::map<std::uint64_t, RunRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    ++out.lines;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const std::string origin = path + ":" + std::to_string(line_no);
    if (!apply_line(origin, line, records)) ++out.malformed_lines;
  }
  out.records.reserve(records.size());
  for (auto& [id, record] : records) out.records.push_back(std::move(record));
  return out;
}

}  // namespace aimes::ctl
