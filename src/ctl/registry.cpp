#include "ctl/registry.hpp"

#include <algorithm>
#include <utility>

namespace aimes::ctl {

std::string_view to_string(RunState state) {
  switch (state) {
    case RunState::kQueued: return "queued";
    case RunState::kRunning: return "running";
    case RunState::kDone: return "done";
    case RunState::kFailed: return "failed";
    case RunState::kCancelled: return "cancelled";
  }
  return "?";
}

std::string_view to_string(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone: return "none";
    case CancelReason::kUser: return "user";
    case CancelReason::kShutdown: return "shutdown";
  }
  return "?";
}

Registry::Registry() : Registry(Options()) {}

Registry::Registry(Options options) : options_(std::move(options)) {
  if (!options_.executor) {
    options_.executor = [](const exp::RunRequest& req, const exp::RunHooks& hooks) {
      return exp::execute(req, hooks);
    };
  }
  const int n = std::max(1, options_.workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Registry::~Registry() { drain(); }

common::Expected<std::uint64_t> Registry::submit(exp::RunRequest request, std::string user) {
  using E = common::Expected<std::uint64_t>;
  if (auto st = exp::validate(request); !st.ok()) return E::error(st.error());
  const std::lock_guard<std::mutex> lock(mutex_);
  if (draining_) return E::error("registry: draining, not accepting new runs");
  const std::uint64_t id = next_id_++;
  auto entry = std::make_unique<Entry>();
  entry->record.id = id;
  entry->record.user = std::move(user);
  entry->record.name = request.display_name();
  entry->record.request = std::move(request);
  entry->record.submitted_at = std::time(nullptr);
  runs_.emplace(id, std::move(entry));
  fifo_.push_back(id);
  ++counters_.submitted;
  work_cv_.notify_one();
  return id;
}

common::Expected<RunRecord> Registry::get(std::uint64_t id) const {
  using E = common::Expected<RunRecord>;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = runs_.find(id);
  if (it == runs_.end()) return E::error("unknown run id " + std::to_string(id));
  return it->second->record;
}

std::vector<RunRecord> Registry::list(const std::string& user) const {
  std::vector<RunRecord> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(runs_.size());
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
    if (!user.empty() && it->second->record.user != user) continue;
    out.push_back(it->second->record);
  }
  return out;
}

common::Status Registry::cancel(std::uint64_t id, CancelReason reason) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = runs_.find(id);
  if (it == runs_.end()) {
    return common::Status::error("unknown run id " + std::to_string(id));
  }
  Entry& entry = *it->second;
  switch (entry.record.state) {
    case RunState::kQueued:
      entry.record.state = RunState::kCancelled;
      entry.record.cancel_reason = reason;
      entry.record.finished_at = std::time(nullptr);
      entry.cancel.store(true);
      std::erase(fifo_, id);
      ++counters_.cancelled;
      entry.record.log.push_back("cancelled while queued (" +
                                 std::string(to_string(reason)) + ")");
      break;
    case RunState::kRunning:
      // The worker observes the flag at the next trial boundary and marks
      // the record cancelled itself.
      if (!entry.cancel.exchange(true)) {
        entry.record.cancel_reason = reason;
        entry.record.log.push_back("cancellation requested (" +
                                   std::string(to_string(reason)) + ")");
      }
      break;
    case RunState::kDone:
    case RunState::kFailed:
    case RunState::kCancelled:
      break;  // nothing left to cancel; not an error
  }
  return {};
}

void Registry::drain(bool cancel_running) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    if (cancel_running) {
      for (auto& [id, entry] : runs_) {
        if (entry->record.state != RunState::kRunning) continue;
        if (!entry->cancel.exchange(true)) {
          entry->record.cancel_reason = CancelReason::kShutdown;
          entry->record.log.push_back("cancellation requested (shutdown)");
        }
      }
    }
    // Queued runs never started; cancel them outright with the typed reason.
    for (const std::uint64_t id : fifo_) {
      Entry& entry = *runs_.at(id);
      entry.record.state = RunState::kCancelled;
      entry.record.cancel_reason = CancelReason::kShutdown;
      entry.record.finished_at = std::time(nullptr);
      entry.cancel.store(true);
      ++counters_.cancelled;
      entry.record.log.push_back("cancelled while queued (shutdown)");
    }
    fifo_.clear();
    work_cv_.notify_all();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

std::size_t Registry::queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return fifo_.size();
}

std::size_t Registry::running() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

RegistryCounters Registry::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void Registry::worker_loop() {
  for (;;) {
    Entry* entry = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return !fifo_.empty() || draining_; });
      if (fifo_.empty()) return;  // draining and nothing left to claim
      const std::uint64_t id = fifo_.front();
      fifo_.pop_front();
      entry = runs_.at(id).get();
      entry->record.state = RunState::kRunning;
      entry->record.started_at = std::time(nullptr);
      ++running_;
    }

    exp::RunHooks hooks;
    hooks.cancelled = [entry] { return entry->cancel.load(std::memory_order_relaxed); };
    hooks.log = [this, entry](const std::string& line) {
      const std::lock_guard<std::mutex> lock(mutex_);
      entry->record.log.push_back(line);
    };
    exp::RunResult result = options_.executor(entry->record.request, hooks);

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      entry->record.result = std::move(result);
      entry->record.finished_at = std::time(nullptr);
      --running_;
      const exp::RunResult& r = entry->record.result;
      if (!r.ok) {
        entry->record.state = RunState::kFailed;
        ++counters_.failed;
        entry->record.log.push_back("failed: " + r.error);
      } else if (r.cancelled) {
        entry->record.state = RunState::kCancelled;
        if (entry->record.cancel_reason == CancelReason::kNone) {
          // drain() flipped the flag without going through cancel().
          entry->record.cancel_reason = CancelReason::kShutdown;
        }
        ++counters_.cancelled;
        entry->record.log.push_back(
            "cancelled after " + std::to_string(r.trials_completed) + "/" +
            std::to_string(r.trials_requested) + " trials (" +
            std::string(to_string(entry->record.cancel_reason)) + ")");
      } else {
        entry->record.state = RunState::kDone;
        ++counters_.completed;
        entry->record.log.push_back(r.success ? "done" : "done (with failing trials)");
      }
    }
  }
}

}  // namespace aimes::ctl
