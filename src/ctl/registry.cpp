#include "ctl/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "ctl/journal.hpp"

namespace aimes::ctl {

namespace {

bool is_terminal(RunState state) {
  return state == RunState::kDone || state == RunState::kFailed ||
         state == RunState::kCancelled;
}

/// Single-line payload of a "state" RunEvent.
std::string state_event_json(const RunRecord& record) {
  return "{\"id\": " + std::to_string(record.id) + ", \"state\": \"" +
         std::string(to_string(record.state)) + "\", \"cancel_reason\": \"" +
         std::string(to_string(record.cancel_reason)) + "\", \"fail_reason\": \"" +
         std::string(to_string(record.fail_reason)) + "\"}";
}

double seconds_since(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - from).count();
}

std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3g", s);
  return buf;
}

}  // namespace

std::string_view to_string(RunState state) {
  switch (state) {
    case RunState::kQueued: return "queued";
    case RunState::kRunning: return "running";
    case RunState::kDone: return "done";
    case RunState::kFailed: return "failed";
    case RunState::kCancelled: return "cancelled";
  }
  return "?";
}

std::string_view to_string(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone: return "none";
    case CancelReason::kUser: return "user";
    case CancelReason::kShutdown: return "shutdown";
    case CancelReason::kDeadline: return "deadline";
  }
  return "?";
}

std::string_view to_string(FailReason reason) {
  switch (reason) {
    case FailReason::kNone: return "none";
    case FailReason::kExecution: return "execution";
    case FailReason::kDaemonRestart: return "daemon-restart";
    case FailReason::kDeadline: return "deadline";
  }
  return "?";
}

std::string_view to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kInvalid: return "invalid";
    case RejectReason::kRateLimited: return "rate-limited";
    case RejectReason::kUserQueued: return "user-queue-quota";
    case RejectReason::kQueueFull: return "queue-full";
    case RejectReason::kDraining: return "draining";
  }
  return "?";
}

Registry::Registry() : Registry(Options()) {}

Registry::Registry(Options options) : options_(std::move(options)) {
  if (!options_.executor) {
    options_.executor = [](const exp::RunRequest& req, const exp::RunHooks& hooks) {
      return exp::execute(req, hooks);
    };
  }
  if (!options_.clock_s) {
    options_.clock_s = [] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
  }
  if (!options_.journal_file.empty()) recover_journal();
  const int n = std::max(1, options_.workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  // A dedicated reaper sweeps deadlines: the workers may all be parked in
  // long executions when a queued run's deadline lands, so dispatch-time
  // checks alone would let it rot in the queue past its promise.
  reaper_ = std::jthread([this](const std::stop_token& st) { reaper_loop(st); });
}

Registry::~Registry() { drain(); }

void Registry::recover_journal() {
  // Runs from the constructor before any worker or server thread exists, so
  // no lock is needed (or wanted: journal_status_ must be set before start).
  auto replay = replay_journal(options_.journal_file);
  if (!replay) {
    journal_status_ = common::Status::error(replay.error());
    return;
  }
  std::vector<std::uint64_t> resurrected;
  for (auto& replayed : replay->records) {
    auto entry = std::make_unique<Entry>();
    entry->record = std::move(replayed);
    RunRecord& record = entry->record;
    if (!is_terminal(record.state)) {
      // The daemon died with this run queued or in flight: the journal has
      // no finish record, so fail it with the typed restart reason.
      const std::string was(to_string(record.state));
      record.state = RunState::kFailed;
      record.fail_reason = FailReason::kDaemonRestart;
      record.finished_at = std::time(nullptr);
      record.log.push_back("daemon restart: run was " + was +
                           ", marked failed (daemon-restart)");
      resurrected.push_back(record.id);
    }
    ++counters_.submitted;
    ++user_counters_[record.user].submitted;
    if (record.started_at != 0) ++user_counters_[record.user].admitted;
    switch (record.state) {
      case RunState::kDone: ++counters_.completed; break;
      case RunState::kFailed: ++counters_.failed; break;
      case RunState::kCancelled: ++counters_.cancelled; break;
      case RunState::kQueued:
      case RunState::kRunning: break;  // unreachable after resurrection
    }
    for (const auto& line : record.log) {
      entry->log_bytes += line;
      entry->log_bytes += '\n';
    }
    for (const auto& progress : record.progress) {
      RunEvent event;
      event.seq = entry->events.size();
      event.kind = "progress";
      event.data = exp::run_progress_to_json(progress);
      entry->events.push_back(std::move(event));
    }
    RunEvent event;
    event.seq = entry->events.size();
    event.kind = "state";
    event.data = state_event_json(record);
    entry->events.push_back(std::move(event));
    next_id_ = std::max(next_id_, record.id + 1);
    // The dedup index survives restarts: a client retrying a submit after a
    // crash must land on the journaled run, not create a second one.
    if (!record.idempotency_key.empty()) idempotency_[record.idempotency_key] = record.id;
    runs_.emplace(record.id, std::move(entry));
  }
  journal_ = std::make_unique<Journal>();
  if (auto st = journal_->open(options_.journal_file); !st.ok()) {
    journal_status_ = st;
    journal_.reset();
    return;
  }
  // Persist the resurrection itself — the restart log line and the terminal
  // state — so a second replay (another restart, or the idempotence test)
  // sees the finished record instead of re-deciding (and re-logging) it.
  for (const std::uint64_t id : resurrected) {
    const RunRecord& record = runs_.at(id)->record;
    journal_->log_line(id, record.log.back());
    journal_->finish(record);
  }
}

void Registry::append_log(Entry& entry, const std::string& line) {
  entry.record.log.push_back(line);
  entry.log_bytes += line;
  entry.log_bytes += '\n';
  if (journal_) journal_->log_line(entry.record.id, line);
  update_cv_.notify_all();
}

void Registry::push_state_event(Entry& entry) {
  RunEvent event;
  event.seq = entry.events.size();
  event.kind = "state";
  event.data = state_event_json(entry.record);
  entry.events.push_back(std::move(event));
  update_cv_.notify_all();
}

void Registry::push_progress_event(Entry& entry, const exp::RunProgress& progress) {
  RunEvent event;
  event.seq = entry.events.size();
  event.kind = "progress";
  event.data = exp::run_progress_to_json(progress);
  entry.events.push_back(std::move(event));
  update_cv_.notify_all();
}

SubmitOutcome Registry::submit(exp::RunRequest request, std::string user,
                               std::string idempotency_key) {
  SubmitOutcome out;
  if (auto st = exp::validate(request); !st.ok()) {
    out.reject = RejectReason::kInvalid;
    out.error = st.error();
    return out;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (draining_) {
    out.reject = RejectReason::kDraining;
    out.retry_after_s = 1.0;
    out.error = "registry: draining, not accepting new runs";
    return out;
  }
  // Idempotent replay comes before every quota rung: retries of an already
  // accepted submit must converge on the original run even when the user is
  // now rate-limited or over quota — that is the whole point of the key.
  if (!idempotency_key.empty()) {
    const auto hit = idempotency_.find(idempotency_key);
    if (hit != idempotency_.end()) {
      Entry& prior = *runs_.at(hit->second);
      ++prior.replays;
      ++user_counters_[prior.record.user].replays;
      out.accepted = true;
      out.duplicate = true;
      out.id = hit->second;
      return out;
    }
  }
  UserCounters& tallies = user_counters_[user];
  const QuotaPolicy& quota = options_.quota;
  // Ladder rung 1: the per-user token bucket on submit itself.
  if (quota.rate_per_s > 0.0) {
    Bucket& bucket = buckets_[user];
    const double now = now_s();
    const double burst =
        quota.rate_burst > 0.0 ? quota.rate_burst : std::max(1.0, quota.rate_per_s);
    if (!bucket.primed) {
      bucket.tokens = burst;
      bucket.last_s = now;
      bucket.primed = true;
    }
    bucket.tokens = std::min(burst, bucket.tokens + (now - bucket.last_s) * quota.rate_per_s);
    bucket.last_s = now;
    if (bucket.tokens < 1.0) {
      ++tallies.rate_limited;
      out.reject = RejectReason::kRateLimited;
      out.retry_after_s = (1.0 - bucket.tokens) / quota.rate_per_s;
      out.error = "user '" + user + "' rate-limited (" + fmt_seconds(quota.rate_per_s) +
                  " submits/s, burst " + fmt_seconds(burst) + ")";
      return out;
    }
    bucket.tokens -= 1.0;
  }
  // Rung 2: per-user queued-run quota.
  if (quota.max_queued_per_user > 0 &&
      queued_by_user_[user] >= quota.max_queued_per_user) {
    ++tallies.shed;
    out.reject = RejectReason::kUserQueued;
    out.retry_after_s = 1.0;
    out.error = "user '" + user + "' is at the queued-run quota (" +
                std::to_string(quota.max_queued_per_user) + ")";
    return out;
  }
  // Rung 3: the bounded global queue.
  if (quota.max_queue_depth > 0 && fifo_.size() >= quota.max_queue_depth) {
    ++tallies.shed;
    out.reject = RejectReason::kQueueFull;
    out.retry_after_s = 1.0;
    out.error =
        "queue full (" + std::to_string(quota.max_queue_depth) + " runs queued)";
    return out;
  }
  const std::uint64_t id = next_id_++;
  auto entry = std::make_unique<Entry>();
  entry->record.id = id;
  entry->record.user = std::move(user);
  entry->record.idempotency_key = idempotency_key;
  entry->record.name = request.display_name();
  entry->record.submitted_at = std::time(nullptr);
  entry->submitted_steady = std::chrono::steady_clock::now();
  if (request.deadline_s > 0.0) entry->deadline_at = now_s() + request.deadline_s;
  entry->record.request = std::move(request);
  Entry& ref = *entry;
  runs_.emplace(id, std::move(entry));
  fifo_.push_back(id);
  ++counters_.submitted;
  ++tallies.submitted;
  ++queued_by_user_[ref.record.user];
  if (!idempotency_key.empty()) idempotency_[std::move(idempotency_key)] = id;
  if (journal_) journal_->submit(ref.record);
  push_state_event(ref);
  work_cv_.notify_one();
  out.accepted = true;
  out.id = id;
  return out;
}

common::Expected<RunRecord> Registry::get(std::uint64_t id) const {
  using E = common::Expected<RunRecord>;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = runs_.find(id);
  if (it == runs_.end()) return E::error("unknown run id " + std::to_string(id));
  return it->second->record;
}

std::vector<RunRecord> Registry::list(const std::string& user) const {
  std::vector<RunRecord> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(runs_.size());
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
    if (!user.empty() && it->second->record.user != user) continue;
    out.push_back(it->second->record);
  }
  return out;
}

std::vector<RunRecord> Registry::list(const std::string& user, RunState state) const {
  std::vector<RunRecord> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
    if (!user.empty() && it->second->record.user != user) continue;
    if (it->second->record.state != state) continue;
    out.push_back(it->second->record);
  }
  return out;
}

common::Expected<Registry::LogTail> Registry::log_tail(std::uint64_t id,
                                                       std::size_t offset) const {
  using E = common::Expected<LogTail>;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = runs_.find(id);
  if (it == runs_.end()) return E::error("unknown run id " + std::to_string(id));
  const Entry& entry = *it->second;
  LogTail tail;
  tail.state = entry.record.state;
  tail.terminal = is_terminal(tail.state);
  tail.data = entry.log_bytes.substr(std::min(offset, entry.log_bytes.size()));
  tail.next_offset = entry.log_bytes.size();
  return tail;
}

common::Expected<Registry::LogTail> Registry::wait_log(std::uint64_t id, std::size_t offset,
                                                       std::chrono::milliseconds timeout) {
  using E = common::Expected<LogTail>;
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = runs_.find(id);
  if (it == runs_.end()) return E::error("unknown run id " + std::to_string(id));
  Entry& entry = *it->second;  // entries are never erased: stable address
  update_cv_.wait_for(lock, timeout, [&entry, offset] {
    return entry.log_bytes.size() > offset || is_terminal(entry.record.state);
  });
  LogTail tail;
  tail.state = entry.record.state;
  tail.terminal = is_terminal(tail.state);
  tail.data = entry.log_bytes.substr(std::min(offset, entry.log_bytes.size()));
  tail.next_offset = entry.log_bytes.size();
  return tail;
}

common::Expected<Registry::EventTail> Registry::wait_events(
    std::uint64_t id, std::uint64_t from_seq, std::chrono::milliseconds timeout) {
  using E = common::Expected<EventTail>;
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = runs_.find(id);
  if (it == runs_.end()) return E::error("unknown run id " + std::to_string(id));
  Entry& entry = *it->second;
  update_cv_.wait_for(lock, timeout, [&entry, from_seq] {
    return entry.events.size() > from_seq || is_terminal(entry.record.state);
  });
  EventTail tail;
  tail.state = entry.record.state;
  tail.terminal = is_terminal(tail.state);
  for (std::size_t i = from_seq; i < entry.events.size(); ++i) {
    tail.events.push_back(entry.events[i]);
  }
  tail.next_seq = entry.events.size();
  return tail;
}

common::Status Registry::cancel(std::uint64_t id, CancelReason reason) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = runs_.find(id);
  if (it == runs_.end()) {
    return common::Status::error("unknown run id " + std::to_string(id));
  }
  Entry& entry = *it->second;
  switch (entry.record.state) {
    case RunState::kQueued:
      entry.record.state = RunState::kCancelled;
      entry.record.cancel_reason = reason;
      entry.record.finished_at = std::time(nullptr);
      entry.cancel.store(true);
      std::erase(fifo_, id);
      --queued_by_user_[entry.record.user];
      ++counters_.cancelled;
      append_log(entry, "cancelled while queued (" + std::string(to_string(reason)) + ")");
      if (journal_) journal_->finish(entry.record);
      push_state_event(entry);
      break;
    case RunState::kRunning:
      // The worker observes the flag at the next trial boundary and marks
      // the record cancelled itself.
      if (!entry.cancel.exchange(true)) {
        entry.record.cancel_reason = reason;
        append_log(entry,
                   "cancellation requested (" + std::string(to_string(reason)) + ")");
      }
      break;
    case RunState::kDone:
    case RunState::kFailed:
    case RunState::kCancelled:
      break;  // nothing left to cancel; not an error
  }
  return {};
}

void Registry::drain(bool cancel_running) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    if (cancel_running) {
      for (auto& [id, entry] : runs_) {
        if (entry->record.state != RunState::kRunning) continue;
        if (!entry->cancel.exchange(true)) {
          entry->record.cancel_reason = CancelReason::kShutdown;
          append_log(*entry, "cancellation requested (shutdown)");
        }
      }
    }
    // Queued runs never started; cancel them outright with the typed reason.
    for (const std::uint64_t id : fifo_) {
      Entry& entry = *runs_.at(id);
      entry.record.state = RunState::kCancelled;
      entry.record.cancel_reason = CancelReason::kShutdown;
      entry.record.finished_at = std::time(nullptr);
      entry.cancel.store(true);
      ++counters_.cancelled;
      append_log(entry, "cancelled while queued (shutdown)");
      if (journal_) journal_->finish(entry.record);
      push_state_event(entry);
    }
    fifo_.clear();
    queued_by_user_.clear();
    work_cv_.notify_all();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (reaper_.joinable()) {
    reaper_.request_stop();
    reaper_.join();
  }
}

std::size_t Registry::queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return fifo_.size();
}

std::size_t Registry::running() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

RegistryCounters Registry::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::map<std::string, UserCounters> Registry::user_counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return user_counters_;
}

std::vector<double> Registry::idempotency_replays() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<double> out;
  for (const auto& [id, entry] : runs_) {
    if (entry->record.idempotency_key.empty()) continue;
    out.push_back(static_cast<double>(entry->replays));
  }
  return out;
}

common::Status Registry::journal_status() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return journal_status_;
}

std::vector<double> Registry::queue_wait_seconds() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_wait_s_;
}

std::vector<double> Registry::run_duration_seconds() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return run_duration_s_;
}

void Registry::expire_deadlines_locked() {
  const double now = now_s();
  // Queued past-deadline runs fail typed right here — a run that cannot
  // start in time must not burn a worker just to discover that.
  for (auto it = fifo_.begin(); it != fifo_.end();) {
    Entry& entry = *runs_.at(*it);
    if (entry.deadline_at <= 0.0 || now < entry.deadline_at) {
      ++it;
      continue;
    }
    it = fifo_.erase(it);
    --queued_by_user_[entry.record.user];
    entry.record.state = RunState::kFailed;
    entry.record.fail_reason = FailReason::kDeadline;
    entry.record.finished_at = std::time(nullptr);
    entry.cancel.store(true);
    ++counters_.failed;
    append_log(entry, "deadline (" + fmt_seconds(entry.record.request.deadline_s) +
                          " s) expired while queued");
    if (journal_) journal_->finish(entry.record);
    push_state_event(entry);
  }
  // Running ones get the cooperative cut: flag + typed reason, and the
  // worker's finish path turns the cancelled result into failed/deadline.
  for (auto& [id, entry] : runs_) {
    if (entry->record.state != RunState::kRunning) continue;
    if (entry->deadline_at <= 0.0 || now < entry->deadline_at) continue;
    if (!entry->cancel.exchange(true)) {
      entry->record.cancel_reason = CancelReason::kDeadline;
      append_log(*entry, "deadline (" + fmt_seconds(entry->record.request.deadline_s) +
                             " s) exceeded; stopping at the next trial boundary");
    }
  }
}

void Registry::reaper_loop(const std::stop_token& st) {
  while (!st.stop_requested()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      // drain() owns queued runs once it starts; don't race its sweep.
      if (!draining_) expire_deadlines_locked();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

Registry::Entry* Registry::claim_next_locked() {
  const QuotaPolicy& quota = options_.quota;
  for (auto it = fifo_.begin(); it != fifo_.end(); ++it) {
    Entry& entry = *runs_.at(*it);
    const std::string& user = entry.record.user;
    // Per-user concurrency cap: skip (don't reorder other users behind) a
    // run whose owner is saturated; it stays queued in place.
    if (quota.max_running_per_user > 0 &&
        running_by_user_[user] >= quota.max_running_per_user) {
      continue;
    }
    fifo_.erase(it);
    --queued_by_user_[user];
    ++running_by_user_[user];
    ++user_counters_[user].admitted;
    return &entry;
  }
  return nullptr;
}

void Registry::worker_loop() {
  for (;;) {
    Entry* entry = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        expire_deadlines_locked();
        entry = claim_next_locked();
        if (entry != nullptr) break;
        if (draining_) return;  // drain() cancelled whatever was left queued
        // Bounded wait: a finish notification wakes us when a user-capped
        // head run becomes eligible; the timeout backstops deadline sweeps.
        work_cv_.wait_for(lock, std::chrono::milliseconds(100));
      }
      entry->record.state = RunState::kRunning;
      entry->record.started_at = std::time(nullptr);
      entry->started_steady = std::chrono::steady_clock::now();
      queue_wait_s_.push_back(seconds_since(entry->submitted_steady));
      ++running_;
      if (journal_) journal_->start(entry->record);
      push_state_event(*entry);
    }

    exp::RunHooks hooks;
    hooks.cancelled = [entry] { return entry->cancel.load(std::memory_order_relaxed); };
    hooks.log = [this, entry](const std::string& line) {
      const std::lock_guard<std::mutex> lock(mutex_);
      append_log(*entry, line);
    };
    hooks.progress = [this, entry](const exp::RunProgress& progress) {
      const std::lock_guard<std::mutex> lock(mutex_);
      entry->record.progress.push_back(progress);
      push_progress_event(*entry, progress);
      if (journal_) journal_->progress(entry->record.id, progress);
    };
    exp::RunResult result = options_.executor(entry->record.request, hooks);

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      entry->record.result = std::move(result);
      entry->record.finished_at = std::time(nullptr);
      run_duration_s_.push_back(seconds_since(entry->started_steady));
      --running_;
      --running_by_user_[entry->record.user];
      const exp::RunResult& r = entry->record.result;
      if (!r.ok) {
        entry->record.state = RunState::kFailed;
        entry->record.fail_reason = FailReason::kExecution;
        ++counters_.failed;
        append_log(*entry, "failed: " + r.error);
      } else if (r.cancelled) {
        if (entry->record.cancel_reason == CancelReason::kDeadline) {
          // A deadline cut is a typed failure, not a user cancel: the client
          // asked for completion by T and the daemon could not deliver.
          entry->record.state = RunState::kFailed;
          entry->record.fail_reason = FailReason::kDeadline;
          ++counters_.failed;
          append_log(*entry, "failed: deadline exceeded after " +
                                 std::to_string(r.trials_completed) + "/" +
                                 std::to_string(r.trials_requested) + " trials");
        } else {
          entry->record.state = RunState::kCancelled;
          if (entry->record.cancel_reason == CancelReason::kNone) {
            // drain() flipped the flag without going through cancel().
            entry->record.cancel_reason = CancelReason::kShutdown;
          }
          ++counters_.cancelled;
          append_log(*entry,
                     "cancelled after " + std::to_string(r.trials_completed) + "/" +
                         std::to_string(r.trials_requested) + " trials (" +
                         std::string(to_string(entry->record.cancel_reason)) + ")");
        }
      } else {
        entry->record.state = RunState::kDone;
        ++counters_.completed;
        append_log(*entry, r.success ? "done" : "done (with failing trials)");
      }
      if (journal_) journal_->finish(entry->record);
      push_state_event(*entry);
      // A finish may free a user-capped worker's head-of-queue run.
      work_cv_.notify_all();
    }
  }
}

}  // namespace aimes::ctl
