#include "ctl/registry.hpp"

#include <algorithm>
#include <utility>

#include "ctl/journal.hpp"

namespace aimes::ctl {

namespace {

bool is_terminal(RunState state) {
  return state == RunState::kDone || state == RunState::kFailed ||
         state == RunState::kCancelled;
}

/// Single-line payload of a "state" RunEvent.
std::string state_event_json(const RunRecord& record) {
  return "{\"id\": " + std::to_string(record.id) + ", \"state\": \"" +
         std::string(to_string(record.state)) + "\", \"cancel_reason\": \"" +
         std::string(to_string(record.cancel_reason)) + "\", \"fail_reason\": \"" +
         std::string(to_string(record.fail_reason)) + "\"}";
}

double seconds_since(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - from).count();
}

}  // namespace

std::string_view to_string(RunState state) {
  switch (state) {
    case RunState::kQueued: return "queued";
    case RunState::kRunning: return "running";
    case RunState::kDone: return "done";
    case RunState::kFailed: return "failed";
    case RunState::kCancelled: return "cancelled";
  }
  return "?";
}

std::string_view to_string(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone: return "none";
    case CancelReason::kUser: return "user";
    case CancelReason::kShutdown: return "shutdown";
  }
  return "?";
}

std::string_view to_string(FailReason reason) {
  switch (reason) {
    case FailReason::kNone: return "none";
    case FailReason::kExecution: return "execution";
    case FailReason::kDaemonRestart: return "daemon-restart";
  }
  return "?";
}

Registry::Registry() : Registry(Options()) {}

Registry::Registry(Options options) : options_(std::move(options)) {
  if (!options_.executor) {
    options_.executor = [](const exp::RunRequest& req, const exp::RunHooks& hooks) {
      return exp::execute(req, hooks);
    };
  }
  if (!options_.journal_file.empty()) recover_journal();
  const int n = std::max(1, options_.workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Registry::~Registry() { drain(); }

void Registry::recover_journal() {
  // Runs from the constructor before any worker or server thread exists, so
  // no lock is needed (or wanted: journal_status_ must be set before start).
  auto replay = replay_journal(options_.journal_file);
  if (!replay) {
    journal_status_ = common::Status::error(replay.error());
    return;
  }
  std::vector<std::uint64_t> resurrected;
  for (auto& replayed : replay->records) {
    auto entry = std::make_unique<Entry>();
    entry->record = std::move(replayed);
    RunRecord& record = entry->record;
    if (!is_terminal(record.state)) {
      // The daemon died with this run queued or in flight: the journal has
      // no finish record, so fail it with the typed restart reason.
      const std::string was(to_string(record.state));
      record.state = RunState::kFailed;
      record.fail_reason = FailReason::kDaemonRestart;
      record.finished_at = std::time(nullptr);
      record.log.push_back("daemon restart: run was " + was +
                           ", marked failed (daemon-restart)");
      resurrected.push_back(record.id);
    }
    ++counters_.submitted;
    switch (record.state) {
      case RunState::kDone: ++counters_.completed; break;
      case RunState::kFailed: ++counters_.failed; break;
      case RunState::kCancelled: ++counters_.cancelled; break;
      case RunState::kQueued:
      case RunState::kRunning: break;  // unreachable after resurrection
    }
    for (const auto& line : record.log) {
      entry->log_bytes += line;
      entry->log_bytes += '\n';
    }
    for (const auto& progress : record.progress) {
      RunEvent event;
      event.seq = entry->events.size();
      event.kind = "progress";
      event.data = exp::run_progress_to_json(progress);
      entry->events.push_back(std::move(event));
    }
    RunEvent event;
    event.seq = entry->events.size();
    event.kind = "state";
    event.data = state_event_json(record);
    entry->events.push_back(std::move(event));
    next_id_ = std::max(next_id_, record.id + 1);
    runs_.emplace(record.id, std::move(entry));
  }
  journal_ = std::make_unique<Journal>();
  if (auto st = journal_->open(options_.journal_file); !st.ok()) {
    journal_status_ = st;
    journal_.reset();
    return;
  }
  // Persist the resurrection itself — the restart log line and the terminal
  // state — so a second replay (another restart, or the idempotence test)
  // sees the finished record instead of re-deciding (and re-logging) it.
  for (const std::uint64_t id : resurrected) {
    const RunRecord& record = runs_.at(id)->record;
    journal_->log_line(id, record.log.back());
    journal_->finish(record);
  }
}

void Registry::append_log(Entry& entry, const std::string& line) {
  entry.record.log.push_back(line);
  entry.log_bytes += line;
  entry.log_bytes += '\n';
  if (journal_) journal_->log_line(entry.record.id, line);
  update_cv_.notify_all();
}

void Registry::push_state_event(Entry& entry) {
  RunEvent event;
  event.seq = entry.events.size();
  event.kind = "state";
  event.data = state_event_json(entry.record);
  entry.events.push_back(std::move(event));
  update_cv_.notify_all();
}

void Registry::push_progress_event(Entry& entry, const exp::RunProgress& progress) {
  RunEvent event;
  event.seq = entry.events.size();
  event.kind = "progress";
  event.data = exp::run_progress_to_json(progress);
  entry.events.push_back(std::move(event));
  update_cv_.notify_all();
}

common::Expected<std::uint64_t> Registry::submit(exp::RunRequest request, std::string user) {
  using E = common::Expected<std::uint64_t>;
  if (auto st = exp::validate(request); !st.ok()) return E::error(st.error());
  const std::lock_guard<std::mutex> lock(mutex_);
  if (draining_) return E::error("registry: draining, not accepting new runs");
  const std::uint64_t id = next_id_++;
  auto entry = std::make_unique<Entry>();
  entry->record.id = id;
  entry->record.user = std::move(user);
  entry->record.name = request.display_name();
  entry->record.request = std::move(request);
  entry->record.submitted_at = std::time(nullptr);
  entry->submitted_steady = std::chrono::steady_clock::now();
  Entry& ref = *entry;
  runs_.emplace(id, std::move(entry));
  fifo_.push_back(id);
  ++counters_.submitted;
  if (journal_) journal_->submit(ref.record);
  push_state_event(ref);
  work_cv_.notify_one();
  return id;
}

common::Expected<RunRecord> Registry::get(std::uint64_t id) const {
  using E = common::Expected<RunRecord>;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = runs_.find(id);
  if (it == runs_.end()) return E::error("unknown run id " + std::to_string(id));
  return it->second->record;
}

std::vector<RunRecord> Registry::list(const std::string& user) const {
  std::vector<RunRecord> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(runs_.size());
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
    if (!user.empty() && it->second->record.user != user) continue;
    out.push_back(it->second->record);
  }
  return out;
}

std::vector<RunRecord> Registry::list(const std::string& user, RunState state) const {
  std::vector<RunRecord> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
    if (!user.empty() && it->second->record.user != user) continue;
    if (it->second->record.state != state) continue;
    out.push_back(it->second->record);
  }
  return out;
}

common::Expected<Registry::LogTail> Registry::log_tail(std::uint64_t id,
                                                       std::size_t offset) const {
  using E = common::Expected<LogTail>;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = runs_.find(id);
  if (it == runs_.end()) return E::error("unknown run id " + std::to_string(id));
  const Entry& entry = *it->second;
  LogTail tail;
  tail.state = entry.record.state;
  tail.terminal = is_terminal(tail.state);
  tail.data = entry.log_bytes.substr(std::min(offset, entry.log_bytes.size()));
  tail.next_offset = entry.log_bytes.size();
  return tail;
}

common::Expected<Registry::LogTail> Registry::wait_log(std::uint64_t id, std::size_t offset,
                                                       std::chrono::milliseconds timeout) {
  using E = common::Expected<LogTail>;
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = runs_.find(id);
  if (it == runs_.end()) return E::error("unknown run id " + std::to_string(id));
  Entry& entry = *it->second;  // entries are never erased: stable address
  update_cv_.wait_for(lock, timeout, [&entry, offset] {
    return entry.log_bytes.size() > offset || is_terminal(entry.record.state);
  });
  LogTail tail;
  tail.state = entry.record.state;
  tail.terminal = is_terminal(tail.state);
  tail.data = entry.log_bytes.substr(std::min(offset, entry.log_bytes.size()));
  tail.next_offset = entry.log_bytes.size();
  return tail;
}

common::Expected<Registry::EventTail> Registry::wait_events(
    std::uint64_t id, std::uint64_t from_seq, std::chrono::milliseconds timeout) {
  using E = common::Expected<EventTail>;
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = runs_.find(id);
  if (it == runs_.end()) return E::error("unknown run id " + std::to_string(id));
  Entry& entry = *it->second;
  update_cv_.wait_for(lock, timeout, [&entry, from_seq] {
    return entry.events.size() > from_seq || is_terminal(entry.record.state);
  });
  EventTail tail;
  tail.state = entry.record.state;
  tail.terminal = is_terminal(tail.state);
  for (std::size_t i = from_seq; i < entry.events.size(); ++i) {
    tail.events.push_back(entry.events[i]);
  }
  tail.next_seq = entry.events.size();
  return tail;
}

common::Status Registry::cancel(std::uint64_t id, CancelReason reason) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = runs_.find(id);
  if (it == runs_.end()) {
    return common::Status::error("unknown run id " + std::to_string(id));
  }
  Entry& entry = *it->second;
  switch (entry.record.state) {
    case RunState::kQueued:
      entry.record.state = RunState::kCancelled;
      entry.record.cancel_reason = reason;
      entry.record.finished_at = std::time(nullptr);
      entry.cancel.store(true);
      std::erase(fifo_, id);
      ++counters_.cancelled;
      append_log(entry, "cancelled while queued (" + std::string(to_string(reason)) + ")");
      if (journal_) journal_->finish(entry.record);
      push_state_event(entry);
      break;
    case RunState::kRunning:
      // The worker observes the flag at the next trial boundary and marks
      // the record cancelled itself.
      if (!entry.cancel.exchange(true)) {
        entry.record.cancel_reason = reason;
        append_log(entry,
                   "cancellation requested (" + std::string(to_string(reason)) + ")");
      }
      break;
    case RunState::kDone:
    case RunState::kFailed:
    case RunState::kCancelled:
      break;  // nothing left to cancel; not an error
  }
  return {};
}

void Registry::drain(bool cancel_running) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    if (cancel_running) {
      for (auto& [id, entry] : runs_) {
        if (entry->record.state != RunState::kRunning) continue;
        if (!entry->cancel.exchange(true)) {
          entry->record.cancel_reason = CancelReason::kShutdown;
          append_log(*entry, "cancellation requested (shutdown)");
        }
      }
    }
    // Queued runs never started; cancel them outright with the typed reason.
    for (const std::uint64_t id : fifo_) {
      Entry& entry = *runs_.at(id);
      entry.record.state = RunState::kCancelled;
      entry.record.cancel_reason = CancelReason::kShutdown;
      entry.record.finished_at = std::time(nullptr);
      entry.cancel.store(true);
      ++counters_.cancelled;
      append_log(entry, "cancelled while queued (shutdown)");
      if (journal_) journal_->finish(entry.record);
      push_state_event(entry);
    }
    fifo_.clear();
    work_cv_.notify_all();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

std::size_t Registry::queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return fifo_.size();
}

std::size_t Registry::running() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

RegistryCounters Registry::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

common::Status Registry::journal_status() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return journal_status_;
}

std::vector<double> Registry::queue_wait_seconds() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_wait_s_;
}

std::vector<double> Registry::run_duration_seconds() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return run_duration_s_;
}

void Registry::worker_loop() {
  for (;;) {
    Entry* entry = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return !fifo_.empty() || draining_; });
      if (fifo_.empty()) return;  // draining and nothing left to claim
      const std::uint64_t id = fifo_.front();
      fifo_.pop_front();
      entry = runs_.at(id).get();
      entry->record.state = RunState::kRunning;
      entry->record.started_at = std::time(nullptr);
      entry->started_steady = std::chrono::steady_clock::now();
      queue_wait_s_.push_back(seconds_since(entry->submitted_steady));
      ++running_;
      if (journal_) journal_->start(entry->record);
      push_state_event(*entry);
    }

    exp::RunHooks hooks;
    hooks.cancelled = [entry] { return entry->cancel.load(std::memory_order_relaxed); };
    hooks.log = [this, entry](const std::string& line) {
      const std::lock_guard<std::mutex> lock(mutex_);
      append_log(*entry, line);
    };
    hooks.progress = [this, entry](const exp::RunProgress& progress) {
      const std::lock_guard<std::mutex> lock(mutex_);
      entry->record.progress.push_back(progress);
      push_progress_event(*entry, progress);
      if (journal_) journal_->progress(entry->record.id, progress);
    };
    exp::RunResult result = options_.executor(entry->record.request, hooks);

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      entry->record.result = std::move(result);
      entry->record.finished_at = std::time(nullptr);
      run_duration_s_.push_back(seconds_since(entry->started_steady));
      --running_;
      const exp::RunResult& r = entry->record.result;
      if (!r.ok) {
        entry->record.state = RunState::kFailed;
        entry->record.fail_reason = FailReason::kExecution;
        ++counters_.failed;
        append_log(*entry, "failed: " + r.error);
      } else if (r.cancelled) {
        entry->record.state = RunState::kCancelled;
        if (entry->record.cancel_reason == CancelReason::kNone) {
          // drain() flipped the flag without going through cancel().
          entry->record.cancel_reason = CancelReason::kShutdown;
        }
        ++counters_.cancelled;
        append_log(*entry,
                   "cancelled after " + std::to_string(r.trials_completed) + "/" +
                       std::to_string(r.trials_requested) + " trials (" +
                       std::string(to_string(entry->record.cancel_reason)) + ")");
      } else {
        entry->record.state = RunState::kDone;
        ++counters_.completed;
        append_log(*entry, r.success ? "done" : "done (with failing trials)");
      }
      if (journal_) journal_->finish(entry->record);
      push_state_event(*entry);
    }
  }
}

}  // namespace aimes::ctl
