// The control plane's run registry: the daemon-side table of every campaign
// and single-app run submitted over HTTP, with FIFO dispatch onto a small
// worker pool, per-run log capture, cooperative cancellation, and a graceful
// drain for shutdown.
//
// The registry is transport-agnostic — it consumes exp::RunRequest and
// produces exp::RunResult through an injectable Executor, so the lifecycle
// tests drive it with a stub executor (no simulation) and the daemon wires
// in exp::execute. Workers poll each run's cancel flag through the
// RunHooks::cancelled token, so a cancel lands at trial granularity: the
// in-flight trial finishes, the rest are skipped and reported as such.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <ctime>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exp/request.hpp"

namespace aimes::ctl {

/// Lifecycle of one submitted run.
enum class RunState {
  kQueued,     ///< accepted, waiting for a worker
  kRunning,    ///< a worker is executing trials
  kDone,       ///< finished; result.success says how well
  kFailed,     ///< executor rejected it (resolve error) or every trial failed
  kCancelled,  ///< cancelled before or during execution
};

[[nodiscard]] std::string_view to_string(RunState state);

/// Why a cancelled run was cancelled — the typed reason the acceptance
/// criteria require for drained-on-shutdown runs.
enum class CancelReason {
  kNone,
  kUser,      ///< explicit aimesc cancel / DELETE
  kShutdown,  ///< daemon drained while the run was queued or in flight
};

[[nodiscard]] std::string_view to_string(CancelReason reason);

/// Full record of one run, copyable for handout under the registry lock.
struct RunRecord {
  std::uint64_t id = 0;
  std::string user;
  std::string name;
  exp::RunRequest request;
  RunState state = RunState::kQueued;
  CancelReason cancel_reason = CancelReason::kNone;
  exp::RunResult result;
  std::vector<std::string> log;
  std::time_t submitted_at = 0;
  std::time_t started_at = 0;
  std::time_t finished_at = 0;
};

/// Monotonic totals across the registry's lifetime (the /metrics counters).
struct RegistryCounters {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< reached kDone
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
};

class Registry {
 public:
  /// Runs one request to completion; the daemon injects exp::execute, tests
  /// inject stubs. Must honor hooks.cancelled for cancellation to bite.
  using Executor = std::function<exp::RunResult(const exp::RunRequest&, const exp::RunHooks&)>;

  struct Options {
    /// Concurrent runs (each run parallelizes its own trials via req.jobs).
    int workers = 2;
    /// Defaults to exp::execute when empty.
    Executor executor;
  };

  Registry();  // default Options (out-of-line: NSDMIs of a nested class
               // cannot appear in a default argument inside this class)
  explicit Registry(Options options);
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Validates and enqueues. Returns the run id, or the typed validation
  /// error (a 400, not a 500: nothing was enqueued). Rejects after drain().
  [[nodiscard]] common::Expected<std::uint64_t> submit(exp::RunRequest request,
                                                       std::string user);

  /// Copy of one run's record (its log included); error for unknown ids.
  [[nodiscard]] common::Expected<RunRecord> get(std::uint64_t id) const;

  /// All runs, newest first; `user` filters when non-empty.
  [[nodiscard]] std::vector<RunRecord> list(const std::string& user = "") const;

  /// Requests cancellation. A queued run is cancelled immediately; a running
  /// one finishes its in-flight trial and reports the rest skipped. Errors
  /// for unknown ids; a no-op for already-finished runs.
  [[nodiscard]] common::Status cancel(std::uint64_t id, CancelReason reason);

  /// Graceful shutdown: stop intake, cancel queued runs with kShutdown, and
  /// join the workers. In-flight runs complete by default (they were
  /// admitted); `cancel_running` instead stops them at the next trial
  /// boundary with the kShutdown reason. Idempotent; the destructor calls it.
  void drain(bool cancel_running = false);

  [[nodiscard]] std::size_t queued() const;
  [[nodiscard]] std::size_t running() const;
  [[nodiscard]] RegistryCounters counters() const;

 private:
  /// Atomics are per-run (the executor polls cancel from a worker thread
  /// while cancel() flips it from the HTTP thread), so records live in
  /// stable heap entries and hand out copies.
  struct Entry {
    RunRecord record;
    std::atomic<bool> cancel{false};
  };

  void worker_loop();

  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::map<std::uint64_t, std::unique_ptr<Entry>> runs_;
  std::deque<std::uint64_t> fifo_;
  std::uint64_t next_id_ = 1;
  bool draining_ = false;
  std::size_t running_ = 0;
  RegistryCounters counters_;
  std::vector<std::jthread> workers_;
};

}  // namespace aimes::ctl
