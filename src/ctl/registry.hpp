// The control plane's run registry: the daemon-side table of every campaign
// and single-app run submitted over HTTP, with FIFO dispatch onto a small
// worker pool, per-run log capture, cooperative cancellation, and a graceful
// drain for shutdown.
//
// The registry is transport-agnostic — it consumes exp::RunRequest and
// produces exp::RunResult through an injectable Executor, so the lifecycle
// tests drive it with a stub executor (no simulation) and the daemon wires
// in exp::execute. Workers poll each run's cancel flag through the
// RunHooks::cancelled token, so a cancel lands at trial granularity: the
// in-flight trial finishes, the rest are skipped and reported as such.
//
// The registry is also where hostile tenants are stopped (the daemon-tier
// mirror of core::AdmissionController's admit -> queue -> shed ladder):
// per-user token-bucket rate limiting on submit, per-user queued/running
// quotas, a bounded global queue, typed RejectReason results the daemon maps
// to 429/503 + Retry-After, request deadlines (queued past-deadline runs
// failed with a typed reason by a reaper thread, running ones cut at the
// next trial boundary), and client-generated idempotency keys so a retried
// submit lands on the existing run instead of duplicating it. The quota
// clock is injectable, so the rate-limit and deadline tests are
// deterministic.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <ctime>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exp/request.hpp"

namespace aimes::ctl {

class Journal;

/// Lifecycle of one submitted run.
enum class RunState {
  kQueued,     ///< accepted, waiting for a worker
  kRunning,    ///< a worker is executing trials
  kDone,       ///< finished; result.success says how well
  kFailed,     ///< executor rejected it (resolve error) or every trial failed
  kCancelled,  ///< cancelled before or during execution
};

[[nodiscard]] std::string_view to_string(RunState state);

/// Why a cancelled run was cancelled — the typed reason the acceptance
/// criteria require for drained-on-shutdown runs.
enum class CancelReason {
  kNone,
  kUser,      ///< explicit aimesc cancel / DELETE
  kShutdown,  ///< daemon drained while the run was queued or in flight
  kDeadline,  ///< the request's deadline expired while the run was in flight
};

[[nodiscard]] std::string_view to_string(CancelReason reason);

/// Why a failed run failed — distinguishes an executor rejection from a run
/// orphaned by a daemon crash and resurrected from the journal.
enum class FailReason {
  kNone,
  kExecution,      ///< the executor reported !ok (resolve/validation error)
  kDaemonRestart,  ///< in flight when the daemon died; journal replay marked it
  kDeadline,       ///< the request's deadline expired (in queue or mid-run)
};

[[nodiscard]] std::string_view to_string(FailReason reason);

/// Why a submit was refused at the door — the daemon-tier ShedReason. The
/// daemon maps kRateLimited/kUserQueued to 429 and kQueueFull/kDraining to
/// 503, both with Retry-After; kInvalid stays a 400.
enum class RejectReason {
  kNone,         ///< accepted
  kInvalid,      ///< request failed validation (no retry will help)
  kRateLimited,  ///< user's token bucket for POST /runs is empty
  kUserQueued,   ///< user is at their queued-run quota
  kQueueFull,    ///< global queue depth bound reached
  kDraining,     ///< daemon is shutting down
};

[[nodiscard]] std::string_view to_string(RejectReason reason);

/// Full record of one run, copyable for handout under the registry lock.
struct RunRecord {
  std::uint64_t id = 0;
  std::string user;
  std::string name;
  /// Client-generated dedup token (the Idempotency-Key header); empty when
  /// the client sent none. Journaled with the submit record, so the dedup
  /// index survives a daemon restart.
  std::string idempotency_key;
  exp::RunRequest request;
  RunState state = RunState::kQueued;
  CancelReason cancel_reason = CancelReason::kNone;
  FailReason fail_reason = FailReason::kNone;
  exp::RunResult result;
  std::vector<std::string> log;
  /// Every RunProgress snapshot the run emitted, in emission order (replayed
  /// from the journal after a restart).
  std::vector<exp::RunProgress> progress;
  std::time_t submitted_at = 0;
  std::time_t started_at = 0;
  std::time_t finished_at = 0;
};

/// One entry of a run's event stream (the /events SSE feed): a state
/// transition or a progress snapshot, with a monotonically increasing
/// per-run sequence number clients use to resume after a reconnect.
struct RunEvent {
  std::uint64_t seq = 0;
  std::string kind;  ///< "state" | "progress"
  std::string data;  ///< single-line JSON payload
};

/// Monotonic totals across the registry's lifetime (the /metrics counters).
struct RegistryCounters {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< reached kDone
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
};

/// Per-user monotonic totals (the labeled /metrics counters).
struct UserCounters {
  std::uint64_t submitted = 0;     ///< accepted submissions (new runs)
  std::uint64_t admitted = 0;      ///< dispatched to a worker
  std::uint64_t shed = 0;          ///< refused on a quota (kUserQueued/kQueueFull)
  std::uint64_t rate_limited = 0;  ///< refused by the token bucket
  std::uint64_t replays = 0;       ///< idempotent resubmits answered from the index
};

/// The daemon-tier quota ladder (all zero = everything unlimited, the
/// pre-hardening behavior the lifecycle tests rely on).
struct QuotaPolicy {
  int max_queued_per_user = 0;   ///< queued runs one user may hold; 0 = unlimited
  int max_running_per_user = 0;  ///< concurrent runs one user may hold; 0 = unlimited
  std::size_t max_queue_depth = 0;  ///< global queued-run bound; 0 = unlimited
  double rate_per_s = 0.0;          ///< per-user submit token refill; 0 = unlimited
  double rate_burst = 0.0;          ///< bucket capacity; 0 = max(1, rate_per_s)
};

/// What submit() decided. Exactly one of these holds: accepted (possibly a
/// `duplicate` replay of an earlier idempotency key, in which case `id` is
/// the existing run), or rejected with a typed reason, a retry hint, and a
/// human description.
struct SubmitOutcome {
  bool accepted = false;
  std::uint64_t id = 0;
  bool duplicate = false;
  RejectReason reject = RejectReason::kNone;
  double retry_after_s = 0.0;
  std::string error;
};

class Registry {
 public:
  /// Runs one request to completion; the daemon injects exp::execute, tests
  /// inject stubs. Must honor hooks.cancelled for cancellation to bite.
  using Executor = std::function<exp::RunResult(const exp::RunRequest&, const exp::RunHooks&)>;

  struct Options {
    /// Concurrent runs (each run parallelizes its own trials via req.jobs).
    int workers = 2;
    /// Defaults to exp::execute when empty.
    Executor executor;
    /// JSONL journal file: replayed on construction (history recovered,
    /// orphaned runs failed with kDaemonRestart), then appended per
    /// lifecycle transition. Empty = no persistence. Open/replay problems
    /// land in journal_status(), not a constructor failure.
    std::string journal_file;
    /// The per-user ladder; default = unlimited everything.
    QuotaPolicy quota;
    /// Monotonic seconds for the token buckets and deadlines; defaults to
    /// steady_clock. Tests inject a fake to step time deterministically.
    std::function<double()> clock_s;
  };

  Registry();  // default Options (out-of-line: NSDMIs of a nested class
               // cannot appear in a default argument inside this class)
  explicit Registry(Options options);
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Validates, applies the quota ladder, dedups on `idempotency_key` (empty
  /// = no dedup), and enqueues. Never throws away an accepted run: a replayed
  /// key returns the existing run with duplicate = true, even after it
  /// finished or the daemon restarted (the key rides the journal).
  [[nodiscard]] SubmitOutcome submit(exp::RunRequest request, std::string user,
                                     std::string idempotency_key = {});

  /// Copy of one run's record (its log included); error for unknown ids.
  [[nodiscard]] common::Expected<RunRecord> get(std::uint64_t id) const;

  /// All runs, newest first; `user` filters when non-empty. The second form
  /// additionally keeps only runs in `state`.
  [[nodiscard]] std::vector<RunRecord> list(const std::string& user = "") const;
  [[nodiscard]] std::vector<RunRecord> list(const std::string& user, RunState state) const;

  /// A slice of one run's log as flat bytes ("line\n" joined), from `offset`
  /// to the current end — the /log?offset=N tail. next_offset is the byte
  /// position to pass next time; terminal means no more bytes will ever come.
  struct LogTail {
    std::string data;
    std::size_t next_offset = 0;
    RunState state = RunState::kQueued;
    bool terminal = false;
  };
  [[nodiscard]] common::Expected<LogTail> log_tail(std::uint64_t id,
                                                   std::size_t offset) const;
  /// Blocking form: waits up to `timeout` for bytes past `offset` (or a
  /// terminal transition). Each wait is one bounded slice, so stream pulls
  /// stay responsive to server shutdown.
  [[nodiscard]] common::Expected<LogTail> wait_log(std::uint64_t id, std::size_t offset,
                                                   std::chrono::milliseconds timeout);

  /// Events with seq >= from_seq (the /events SSE feed), waiting up to
  /// `timeout` for new ones; terminal means the stream is complete once the
  /// returned events are consumed.
  struct EventTail {
    std::vector<RunEvent> events;
    std::uint64_t next_seq = 0;
    RunState state = RunState::kQueued;
    bool terminal = false;
  };
  [[nodiscard]] common::Expected<EventTail> wait_events(std::uint64_t id,
                                                        std::uint64_t from_seq,
                                                        std::chrono::milliseconds timeout);

  /// Requests cancellation. A queued run is cancelled immediately; a running
  /// one finishes its in-flight trial and reports the rest skipped. Errors
  /// for unknown ids; a no-op for already-finished runs.
  [[nodiscard]] common::Status cancel(std::uint64_t id, CancelReason reason);

  /// Graceful shutdown: stop intake, cancel queued runs with kShutdown, and
  /// join the workers. In-flight runs complete by default (they were
  /// admitted); `cancel_running` instead stops them at the next trial
  /// boundary with the kShutdown reason. Idempotent; the destructor calls it.
  void drain(bool cancel_running = false);

  [[nodiscard]] std::size_t queued() const;
  [[nodiscard]] std::size_t running() const;
  [[nodiscard]] RegistryCounters counters() const;
  /// Per-user totals in user order (stable exposition for /metrics).
  [[nodiscard]] std::map<std::string, UserCounters> user_counters() const;
  /// Replay count of every run submitted with an idempotency key (0 = the
  /// key was never retried) — the /metrics retry histogram's samples.
  [[nodiscard]] std::vector<double> idempotency_replays() const;

  /// Journal health: OK when no journal was configured or replay + open
  /// succeeded; otherwise the typed open/replay error (aimesd refuses to
  /// start on it — a silently non-durable daemon is worse than no daemon).
  [[nodiscard]] common::Status journal_status() const;

  /// Latency samples for the daemon's /metrics histograms: seconds each run
  /// waited in the queue, and seconds each finished run spent executing.
  [[nodiscard]] std::vector<double> queue_wait_seconds() const;
  [[nodiscard]] std::vector<double> run_duration_seconds() const;

 private:
  /// Atomics are per-run (the executor polls cancel from a worker thread
  /// while cancel() flips it from the HTTP thread), so records live in
  /// stable heap entries and hand out copies.
  struct Entry {
    RunRecord record;
    std::atomic<bool> cancel{false};
    /// The run's event stream (seq == index) and its log as flat bytes —
    /// derived views the /events and /log?offset=N routes serve.
    std::vector<RunEvent> events;
    std::string log_bytes;
    /// Steady-clock counterparts of submitted_at/started_at for the latency
    /// histograms (wall time_t has 1 s granularity and can step).
    std::chrono::steady_clock::time_point submitted_steady{};
    std::chrono::steady_clock::time_point started_steady{};
    /// clock_s() instant the request's deadline lands; 0 = no deadline.
    double deadline_at = 0.0;
    /// Times this run's idempotency key was replayed by a retried submit.
    std::uint64_t replays = 0;
  };

  /// Per-user token bucket for the submit rate limit.
  struct Bucket {
    double tokens = 0.0;
    double last_s = 0.0;
    bool primed = false;
  };

  void worker_loop();
  void reaper_loop(const std::stop_token& st);
  [[nodiscard]] double now_s() const { return options_.clock_s(); }
  /// Fails queued past-deadline runs and flips the cancel flag (with the
  /// kDeadline reason) on running ones. Callers hold mutex_.
  void expire_deadlines_locked();
  /// First FIFO run whose user is under the running cap, removed from the
  /// queue and accounted as dispatched; nullptr when none is eligible.
  /// Callers hold mutex_.
  [[nodiscard]] Entry* claim_next_locked();
  /// Appends to record.log + log_bytes + journal and wakes waiters. Callers
  /// hold mutex_.
  void append_log(Entry& entry, const std::string& line);
  /// Records a state-transition event (and journals terminal ones via the
  /// caller) and wakes waiters. Callers hold mutex_.
  void push_state_event(Entry& entry);
  void push_progress_event(Entry& entry, const exp::RunProgress& progress);
  /// Replays options_.journal_file into runs_ (resurrecting orphans as
  /// failed) and opens it for append. Called from the constructor before the
  /// workers exist, so it runs unlocked.
  void recover_journal();

  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  /// Notified on every record mutation (log line, progress, state change);
  /// wait_log/wait_events block on it.
  std::condition_variable update_cv_;
  std::map<std::uint64_t, std::unique_ptr<Entry>> runs_;
  std::deque<std::uint64_t> fifo_;
  std::uint64_t next_id_ = 1;
  bool draining_ = false;
  std::size_t running_ = 0;
  RegistryCounters counters_;
  std::map<std::string, UserCounters> user_counters_;
  std::unordered_map<std::string, int> queued_by_user_;
  std::unordered_map<std::string, int> running_by_user_;
  std::unordered_map<std::string, Bucket> buckets_;
  /// Idempotency key -> run id, rebuilt from the journal on restart.
  std::unordered_map<std::string, std::uint64_t> idempotency_;
  std::unique_ptr<Journal> journal_;
  common::Status journal_status_;
  std::vector<double> queue_wait_s_;
  std::vector<double> run_duration_s_;
  std::vector<std::jthread> workers_;
  std::jthread reaper_;
};

}  // namespace aimes::ctl
