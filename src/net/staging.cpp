#include "net/staging.hpp"

#include <cassert>

namespace aimes::net {

StagingService::StagingService(sim::Engine& engine, TransferManager& transfers,
                               StagingPolicy policy, sim::FaultInjector* faults)
    : engine_(engine), transfers_(transfers), policy_(policy), faults_(faults) {}

common::Status StagingService::stage(const std::string& file, SiteId site, Direction dir,
                                     DataSize size, Callback done) {
  assert(done);
  const common::SimTime started = engine_.now();
  // Injected transfer failure, decided once per staged file in staging
  // order. The failure manifests partway through the wire time: overhead
  // plus half the estimated transfer (a stream dying mid-flight costs real
  // time before the error surfaces).
  if (faults_ != nullptr && faults_->transfer_should_fail()) {
    auto wire = transfers_.estimate(site, dir, size);
    const SimDuration lost =
        policy_.per_file_overhead + (wire.ok() ? *wire * 0.5 : SimDuration::zero());
    engine_.schedule(lost, [this, file, site, dir, size, started, done = std::move(done)] {
      StagingDone notice;
      notice.file = file;
      notice.site = site;
      notice.direction = dir;
      notice.size = size;
      notice.started_at = started;
      notice.finished_at = engine_.now();
      notice.ok = false;
      done(notice);
    });
    return {};
  }
  // Per-file overhead elapses first, then the wire transfer starts.
  engine_.schedule(policy_.per_file_overhead,
                   [this, file, site, dir, size, started, done = std::move(done)] {
    auto res = transfers_.start(site, dir, size,
                                [this, file, started, done](const TransferDone& t) {
      ++staged_;
      staged_bytes_ += t.size;
      done(StagingDone{file, t.site, t.direction, t.size, started, t.finished_at});
    });
    // The topology is validated at strategy enactment; a missing link here
    // is a programming error.
    assert(res.ok());
    (void)res;
  });
  return {};
}

Expected<SimDuration> StagingService::estimate(SiteId site, Direction dir,
                                               DataSize size) const {
  auto wire = transfers_.estimate(site, dir, size);
  if (!wire) return wire;
  return policy_.per_file_overhead + *wire;
}

}  // namespace aimes::net
