#include "net/staging.hpp"

#include <cassert>

namespace aimes::net {

StagingService::StagingService(sim::Engine& engine, TransferManager& transfers,
                               StagingPolicy policy)
    : engine_(engine), transfers_(transfers), policy_(policy) {}

common::Status StagingService::stage(const std::string& file, SiteId site, Direction dir,
                                     DataSize size, Callback done) {
  assert(done);
  const common::SimTime started = engine_.now();
  // Per-file overhead elapses first, then the wire transfer starts.
  engine_.schedule(policy_.per_file_overhead,
                   [this, file, site, dir, size, started, done = std::move(done)] {
    auto res = transfers_.start(site, dir, size,
                                [this, file, started, done](const TransferDone& t) {
      ++staged_;
      staged_bytes_ += t.size;
      done(StagingDone{file, t.site, t.direction, t.size, started, t.finished_at});
    });
    // The topology is validated at strategy enactment; a missing link here
    // is a programming error.
    assert(res.ok());
    (void)res;
  });
  return {};
}

Expected<SimDuration> StagingService::estimate(SiteId site, Direction dir,
                                               DataSize size) const {
  auto wire = transfers_.estimate(site, dir, size);
  if (!wire) return wire;
  return policy_.per_file_overhead + *wire;
}

}  // namespace aimes::net
