#include "net/topology.hpp"

#include <algorithm>

namespace aimes::net {

void Topology::add_site(SiteId site, LinkSpec in, LinkSpec out) {
  channels_[site] = Channels{in, out};
}

bool Topology::has_site(SiteId site) const { return channels_.count(site) > 0; }

Expected<LinkSpec> Topology::link(SiteId site, Direction dir) const {
  auto it = channels_.find(site);
  if (it == channels_.end()) {
    return Expected<LinkSpec>::error("no link registered for " + site.str());
  }
  return dir == Direction::kIn ? it->second.in : it->second.out;
}

Expected<SimDuration> Topology::ideal_duration(SiteId site, Direction dir, DataSize size) const {
  auto l = link(site, dir);
  if (!l) return Expected<SimDuration>::error(l.error());
  const double secs =
      static_cast<double>(size.count_bytes()) / l->capacity.bytes_per_sec();
  return l->latency + SimDuration::seconds(secs);
}

SimDuration Topology::min_latency() const {
  SimDuration best = SimDuration::max();
  for (const auto& [id, ch] : channels_) {
    best = std::min(best, std::min(ch.in.latency, ch.out.latency));
  }
  return best == SimDuration::max() ? SimDuration::zero() : best;
}

std::vector<SiteId> Topology::sites() const {
  std::vector<SiteId> out;
  out.reserve(channels_.size());
  for (const auto& [id, _] : channels_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace aimes::net
