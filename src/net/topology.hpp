// Network topology between the user's origin host and the simulated sites.
//
// AIMES runs on the user's machine and stages every task's input files to
// the resource that executes it and its outputs back (paper §III.E). The
// topology models one WAN channel per (site, direction) with a latency and a
// capacity that concurrent flows share fairly. That is enough structure to
// reproduce the paper's Ts behaviour (linear in the number of tasks, small
// by experimental design) while still penalizing poorly-connected sites in
// strategies that account for data.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/data_size.hpp"
#include "common/expected.hpp"
#include "common/id.hpp"
#include "common/time.hpp"

namespace aimes::net {

using common::Bandwidth;
using common::DataSize;
using common::Expected;
using common::SimDuration;
using common::SiteId;

enum class Direction { kIn, kOut };  // relative to the site: kIn = origin -> site

/// One directed WAN channel.
struct LinkSpec {
  Bandwidth capacity = Bandwidth::mib_per_sec(100.0);
  SimDuration latency = SimDuration::millis(40);
};

/// The set of origin<->site channels.
class Topology {
 public:
  /// Registers both directions for a site. Overwrites existing entries.
  void add_site(SiteId site, LinkSpec in, LinkSpec out);

  /// Registers a symmetric site link.
  void add_site(SiteId site, LinkSpec both) { add_site(site, both, both); }

  [[nodiscard]] bool has_site(SiteId site) const;
  [[nodiscard]] Expected<LinkSpec> link(SiteId site, Direction dir) const;

  /// Ideal (contention-free) transfer duration over a channel.
  [[nodiscard]] Expected<SimDuration> ideal_duration(SiteId site, Direction dir,
                                                     DataSize size) const;

  [[nodiscard]] std::vector<SiteId> sites() const;

  /// Smallest latency over every registered channel (both directions) — the
  /// conservative lookahead of a sharded run: no cross-site interaction can
  /// land sooner than this after it was initiated. Zero when no site is
  /// registered (callers fall back to a default window).
  [[nodiscard]] SimDuration min_latency() const;

 private:
  struct Channels {
    LinkSpec in;
    LinkSpec out;
  };
  std::unordered_map<SiteId, Channels> channels_;
};

}  // namespace aimes::net
