#include "net/http.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "common/rng.hpp"
#include "net/fault.hpp"

namespace aimes::net {

namespace {

/// Hard cap on one message (start-line + headers + body). The control plane
/// exchanges kilobyte-scale JSON; anything bigger is a bug or abuse.
constexpr std::size_t kMaxMessageBytes = 1 << 20;
/// Per-connection read timeout; a stalled client cannot wedge the loop.
constexpr int kIoTimeoutMs = 5000;

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Arms the fd so the eventual ::close() aborts the connection (RST) rather
/// than lingering in a half-closed state, then shuts both directions down so
/// every in-flight operation on it fails immediately. Used by the fault shim
/// for mid-stream resets; the caller's normal close path stays the owner of
/// the fd (no double close).
void fault_abort(int fd) {
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  ::shutdown(fd, SHUT_RDWR);
}

/// recv(2) behind the fault shim: may stall, reset the connection (errno
/// ECONNRESET), or clamp the read to one byte — the torn-framing generator
/// every incremental parser above this layer must survive.
ssize_t net_recv(int fd, char* buf, std::size_t len) {
  if (net_faults_active()) {
    const FaultDecision d = next_net_fault(FaultPoint::kRead);
    if (d.stall_ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(d.stall_ms));
    if (d.reset) {
      fault_abort(fd);
      errno = ECONNRESET;
      return -1;
    }
    if (d.short_op && len > 1) len = 1;
  }
  return ::recv(fd, buf, len, 0);
}

bool send_all(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    std::size_t len = text.size() - sent;
    if (net_faults_active()) {
      const FaultDecision d = next_net_fault(FaultPoint::kWrite);
      if (d.reset) {
        fault_abort(fd);
        return false;
      }
      if (d.short_op && len > 1) len = 1;
    }
    const ssize_t n = ::send(fd, text.data() + sent, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Splits `text` into (start-line, headers, body) and fills `headers`/`body`.
/// Returns the start-line or an error. `head_only` skips the Content-Length
/// body check — the streaming client parses the header block before the body
/// exists.
common::Expected<std::string> parse_message(const std::string& text,
                                            std::map<std::string, std::string>& headers,
                                            std::string& body, bool head_only = false) {
  using E = common::Expected<std::string>;
  const auto head_end = text.find("\r\n\r\n");
  if (head_end == std::string::npos) return E::error("truncated message: no header terminator");
  const std::string head = text.substr(0, head_end);
  body = text.substr(head_end + 4);
  std::istringstream lines(head);
  std::string line;
  if (!std::getline(lines, line)) return E::error("empty message");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const std::string start_line = line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) return E::error("malformed header line '" + line + "'");
    headers[lower(trim(line.substr(0, colon)))] = trim(line.substr(colon + 1));
  }
  const auto length = headers.find("content-length");
  if (length != headers.end() && !head_only) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(length->second.c_str(), &end, 10);
    if (end == length->second.c_str() || n > kMaxMessageBytes) {
      return E::error("bad content-length '" + length->second + "'");
    }
    if (body.size() < n) return E::error("truncated body");
    body.resize(n);
  }
  return start_line;
}

/// Reads until the message is complete (headers seen and Content-Length
/// bytes of body arrived) or the cap/timeout trips.
common::Expected<std::string> read_message(int fd) {
  using E = common::Expected<std::string>;
  std::string buf;
  char chunk[4096];
  while (buf.size() <= kMaxMessageBytes) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kIoTimeoutMs);
    if (ready <= 0) return E::error("read timeout");
    const ssize_t n = net_recv(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return E::error(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) break;  // peer closed
    buf.append(chunk, static_cast<std::size_t>(n));
    const auto head_end = buf.find("\r\n\r\n");
    if (head_end == std::string::npos) continue;
    // Complete once the advertised body has arrived (no Content-Length =
    // complete at end of headers; the loop's recv of 0 also lands here).
    const std::string head = lower(buf.substr(0, head_end));
    const auto at = head.find("content-length:");
    if (at == std::string::npos) return buf;
    const unsigned long long want =
        std::strtoull(head.c_str() + at + std::strlen("content-length:"), nullptr, 10);
    if (want > kMaxMessageBytes) return E::error("oversized body");
    if (buf.size() - head_end - 4 >= want) return buf;
  }
  if (buf.size() > kMaxMessageBytes) return E::error("oversized message");
  return buf;
}

/// Non-blocking connect with a poll-based deadline: a black-holed address
/// fails typed after `timeout_ms` instead of hanging the caller in
/// ::connect() past any deadline it promised its own user.
common::Status connect_with_deadline(int fd, const sockaddr* addr, socklen_t len,
                                     int timeout_ms, const std::string& where) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return common::Status::error("fcntl: " + std::string(std::strerror(errno)));
  }
  if (::connect(fd, addr, len) < 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      return common::Status::error("connect " + where + ": " + std::strerror(errno));
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) {
      return common::Status::error("connect " + where + ": timeout after " +
                                   std::to_string(timeout_ms) + " ms");
    }
    int err = 0;
    socklen_t errlen = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen) < 0 || err != 0) {
      return common::Status::error("connect " + where + ": " +
                                   std::strerror(err != 0 ? err : errno));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    return common::Status::error("fcntl: " + std::string(std::strerror(errno)));
  }
  return {};
}

/// Creates and connects a client socket for `endpoint` (loopback TCP or
/// unix-domain). Returns the connected fd; the caller owns the close.
common::Expected<int> open_client_fd(const Endpoint& endpoint, int connect_timeout_ms) {
  using E = common::Expected<int>;
  sockaddr_storage storage{};
  socklen_t addr_len = 0;
  int fd = -1;
  if (endpoint.is_unix()) {
    auto* addr = reinterpret_cast<sockaddr_un*>(&storage);
    if (endpoint.socket_path.size() >= sizeof addr->sun_path) {
      return E::error("unix socket path too long: " + endpoint.socket_path);
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return E::error(std::string("socket: ") + std::strerror(errno));
    addr->sun_family = AF_UNIX;
    std::memcpy(addr->sun_path, endpoint.socket_path.c_str(), endpoint.socket_path.size() + 1);
    addr_len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                      endpoint.socket_path.size() + 1);
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return E::error(std::string("socket: ") + std::strerror(errno));
    auto* addr = reinterpret_cast<sockaddr_in*>(&storage);
    addr->sin_family = AF_INET;
    addr->sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr->sin_port = htons(endpoint.port);
    addr_len = sizeof(sockaddr_in);
  }
  if (auto st = connect_with_deadline(fd, reinterpret_cast<const sockaddr*>(&storage),
                                      addr_len, connect_timeout_ms, endpoint.describe());
      !st.ok()) {
    ::close(fd);
    return E::error(st.error());
  }
  return fd;
}

/// True when `name` is one of the headers the renderers synthesize; entries
/// in the user-facing maps with these names are skipped, not duplicated.
bool synthesized_header(const std::string& name) {
  const std::string key = lower(name);
  return key == "content-type" || key == "content-length" || key == "connection" ||
         key == "transfer-encoding" || key == "host";
}

void render_extra_headers(std::ostringstream& out,
                          const std::map<std::string, std::string>& headers) {
  for (const auto& [name, value] : headers) {
    if (synthesized_header(name)) continue;
    out << name << ": " << value << "\r\n";
  }
}

}  // namespace

std::string Endpoint::describe() const {
  return is_unix() ? "unix:" + socket_path : "127.0.0.1:" + std::to_string(port);
}

std::string HttpRequest::header(const std::string& name) const {
  const auto it = headers.find(lower(name));
  return it == headers.end() ? "" : it->second;
}

std::string HttpResponse::header(const std::string& name) const {
  const auto it = headers.find(lower(name));
  return it == headers.end() ? "" : it->second;
}

std::string HttpRequest::query_param(const std::string& key) const {
  std::size_t i = 0;
  while (i < query.size()) {
    auto amp = query.find('&', i);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(i, amp - i);
    const auto eq = pair.find('=');
    if (pair.substr(0, eq) == key) {
      return eq == std::string::npos ? "" : pair.substr(eq + 1);
    }
    i = amp + 1;
  }
  return "";
}

std::string_view status_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

common::Expected<HttpRequest> parse_http_request(const std::string& text) {
  using E = common::Expected<HttpRequest>;
  HttpRequest req;
  auto start = parse_message(text, req.headers, req.body);
  if (!start) return E::error(start.error());
  std::istringstream parts(*start);
  std::string version;
  if (!(parts >> req.method >> req.target >> version) ||
      version.rfind("HTTP/", 0) != 0) {
    return E::error("malformed request line '" + *start + "'");
  }
  std::transform(req.method.begin(), req.method.end(), req.method.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  const auto qmark = req.target.find('?');
  req.path = req.target.substr(0, qmark);
  req.query = qmark == std::string::npos ? "" : req.target.substr(qmark + 1);
  return req;
}

common::Expected<HttpResponse> parse_http_response(const std::string& text) {
  using E = common::Expected<HttpResponse>;
  HttpResponse res;
  auto start = parse_message(text, res.headers, res.body);
  if (!start) return E::error(start.error());
  std::istringstream parts(*start);
  std::string version;
  if (!(parts >> version >> res.status) || version.rfind("HTTP/", 0) != 0) {
    return E::error("malformed status line '" + *start + "'");
  }
  const auto it = res.headers.find("content-type");
  if (it != res.headers.end()) res.content_type = it->second;
  return res;
}

std::string render_http_response(const HttpResponse& response) {
  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << " " << status_phrase(response.status) << "\r\n"
      << "Content-Type: " << response.content_type << "\r\n"
      << "Content-Length: " << response.body.size() << "\r\n";
  render_extra_headers(out, response.headers);
  out << "Connection: close\r\n\r\n" << response.body;
  return out.str();
}

std::string render_stream_header(const HttpResponse& response) {
  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << " " << status_phrase(response.status) << "\r\n"
      << "Content-Type: " << response.content_type << "\r\n"
      << "Transfer-Encoding: chunked\r\n";
  render_extra_headers(out, response.headers);
  out << "Connection: close\r\n\r\n";
  return out.str();
}

std::string render_chunk(std::string_view data) {
  char size_line[32];
  std::snprintf(size_line, sizeof size_line, "%zx\r\n", data.size());
  std::string out = size_line;
  out.append(data);
  out += "\r\n";
  return out;
}

common::Status ChunkDecoder::feed(std::string_view data, std::string& out) {
  std::size_t i = 0;
  while (i < data.size()) {
    switch (state_) {
      case State::kSize: {
        // Accumulate the "<hex>[;ext]\r\n" size line. 32 bytes is generous
        // for a capped chunk size; more means garbage, not a bigger chunk.
        const char c = data[i++];
        if (c == '\n') {
          if (!line_.empty() && line_.back() == '\r') line_.pop_back();
          const std::string size_text = line_.substr(0, line_.find(';'));
          line_.clear();
          char* end = nullptr;
          const unsigned long long size = std::strtoull(size_text.c_str(), &end, 16);
          if (end == size_text.c_str() || *end != '\0') {
            return common::Status::error("malformed chunk size '" + size_text + "'");
          }
          if (size > kMaxMessageBytes) {
            return common::Status::error("oversized chunk (" + size_text + " > 1 MiB cap)");
          }
          if (size == 0) {
            state_ = State::kTrailer;
          } else {
            remaining_ = static_cast<std::size_t>(size);
            state_ = State::kData;
          }
        } else {
          line_ += c;
          if (line_.size() > 32) return common::Status::error("chunk size line too long");
        }
        break;
      }
      case State::kData: {
        const std::size_t take = std::min(remaining_, data.size() - i);
        out.append(data.substr(i, take));
        i += take;
        remaining_ -= take;
        if (remaining_ == 0) state_ = State::kDataEnd;
        break;
      }
      case State::kDataEnd: {
        // The CRLF that closes a data chunk.
        const char c = data[i++];
        if (c == '\r') {
          if (!line_.empty()) return common::Status::error("malformed chunk terminator");
          line_ = "\r";
        } else if (c == '\n' && line_ == "\r") {
          line_.clear();
          state_ = State::kSize;
        } else {
          return common::Status::error("malformed chunk terminator");
        }
        break;
      }
      case State::kTrailer: {
        // Trailer lines after the zero-length chunk; an empty line ends the
        // message. The control plane sends none, but tolerate them.
        const char c = data[i++];
        if (c == '\n') {
          if (!line_.empty() && line_.back() == '\r') line_.pop_back();
          const bool empty = line_.empty();
          line_.clear();
          if (empty) state_ = State::kDone;
        } else {
          line_ += c;
          if (line_.size() > 1024) return common::Status::error("trailer line too long");
        }
        break;
      }
      case State::kDone:
        return common::Status::error("data after final chunk");
    }
  }
  return {};
}

std::string render_http_request(const HttpRequest& request, const std::string& host) {
  std::ostringstream out;
  out << request.method << " " << request.target << " HTTP/1.1\r\n"
      << "Host: " << host << "\r\n"
      << "Content-Type: application/json\r\n"
      << "Content-Length: " << request.body.size() << "\r\n";
  render_extra_headers(out, request.headers);
  out << "Connection: close\r\n\r\n" << request.body;
  return out.str();
}

SseEvent parse_sse_event(const std::string& block) {
  SseEvent event;
  std::size_t pos = 0;
  while (pos <= block.size()) {
    const auto nl = block.find('\n', pos);
    const std::string line =
        block.substr(pos, nl == std::string::npos ? std::string::npos : nl - pos);
    pos = nl == std::string::npos ? block.size() + 1 : nl + 1;
    if (line.empty() || line.front() == ':') continue;  // comment / keepalive
    const auto colon = line.find(':');
    const std::string field = colon == std::string::npos ? line : line.substr(0, colon);
    std::string value = colon == std::string::npos ? "" : line.substr(colon + 1);
    if (!value.empty() && value.front() == ' ') value.erase(0, 1);
    if (field == "id") {
      event.has_id = true;
      event.id = std::strtoull(value.c_str(), nullptr, 10);
    } else if (field == "event") {
      event.kind = value;
    } else if (field == "data") {
      if (!event.data.empty()) event.data += '\n';
      event.data += value;
    }
    // Unknown fields are ignored per the SSE spec.
  }
  return event;
}

std::vector<SseEvent> drain_sse_frames(std::string& carry) {
  std::vector<SseEvent> events;
  for (;;) {
    const auto end = carry.find("\n\n");
    if (end == std::string::npos) break;
    const std::string block = carry.substr(0, end);
    carry.erase(0, end + 2);
    SseEvent event = parse_sse_event(block);
    if (!event.has_id && event.kind.empty() && event.data.empty()) continue;  // keepalive
    events.push_back(std::move(event));
  }
  return events;
}

int Backoff::next_ms() {
  const int n = attempt_++;
  const double base = static_cast<double>(base_ms_) *
                      static_cast<double>(1ULL << std::min(n, 20));
  const double capped = std::min(base, static_cast<double>(cap_ms_));
  std::uint64_t state = seed_ ^ (static_cast<std::uint64_t>(n) * 0x9e3779b97f4a7c15ULL);
  const double jitter01 =
      static_cast<double>(common::splitmix64(state) >> 11) * 0x1.0p-53;
  const double total = std::min(capped * (1.0 + 0.5 * jitter01),
                                static_cast<double>(cap_ms_));
  return std::max(1, static_cast<int>(total));
}

common::Expected<std::uint16_t> HttpServer::start(std::uint16_t port, Handler handler) {
  using E = common::Expected<std::uint16_t>;
  if (listen_fd_ >= 0) return E::error("server already running");
  handler_ = std::move(handler);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return E::error(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return E::error("bind 127.0.0.1:" + std::to_string(port) + ": " + err);
  }
  if (::listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return E::error("listen: " + err);
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return E::error("getsockname: " + err);
  }
  endpoint_ = Endpoint::tcp(ntohs(addr.sin_port));
  listen_fd_ = fd;
  thread_ = std::jthread([this](const std::stop_token& st) { serve(st); });
  return endpoint_.port;
}

common::Status HttpServer::start_unix(const std::string& path, Handler handler) {
  if (listen_fd_ >= 0) return common::Status::error("server already running");
  handler_ = std::move(handler);

  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    return common::Status::error("unix socket path too long (max " +
                                 std::to_string(sizeof addr.sun_path - 1) +
                                 " bytes): " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return common::Status::error(std::string("socket: ") + std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  // A stale socket file from a crashed daemon would make bind fail with
  // EADDRINUSE even though nobody is listening; replace it.
  ::unlink(path.c_str());
  const auto addr_len =
      static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + path.size() + 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), addr_len) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return common::Status::error("bind unix:" + path + ": " + err);
  }
  if (::listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    return common::Status::error("listen: " + err);
  }
  endpoint_ = Endpoint::unix_path(path);
  listen_fd_ = fd;
  thread_ = std::jthread([this](const std::stop_token& st) { serve(st); });
  return {};
}

void HttpServer::stop() {
  if (listen_fd_ < 0) return;
  // Streaming connection threads re-check this between pulls; set it before
  // joining so a follower mid-stream winds down instead of wedging stop().
  stopping_.store(true, std::memory_order_relaxed);
  thread_.request_stop();
  // Shut the listener down so a blocked accept/poll wakes immediately.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();  // joins the connection threads too
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (endpoint_.is_unix()) ::unlink(endpoint_.socket_path.c_str());
  endpoint_ = Endpoint{};
  stopping_.store(false, std::memory_order_relaxed);
}

void HttpServer::serve(const std::stop_token& stop_token) {
  while (!stop_token.stop_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (stop_token.stop_requested()) break;
    // Reap finished connection threads (jthread joins on destruction; a
    // done flag keeps that join instant).
    connections_.remove_if([](const Connection& c) {
      return c.done.load(std::memory_order_acquire);
    });
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    if (net_faults_active() && next_net_fault(FaultPoint::kAccept).reset) {
      // Accept-time reset: the client's connect succeeded but its first
      // read/write gets an abort — we own this fd, so close-with-linger-0
      // sends a genuine RST.
      fault_abort(conn);
      ::close(conn);
      continue;
    }
    Connection& slot = connections_.emplace_back();
    slot.thread = std::jthread([this, conn, &slot] {
      handle_connection(conn);
      slot.done.store(true, std::memory_order_release);
    });
  }
  // Accept loop exiting joins every connection (list destruction).
  connections_.clear();
}

void HttpServer::handle_connection(int conn) {
  // A dead client that stops reading must not wedge a streaming send.
  timeval send_timeout{};
  send_timeout.tv_sec = kIoTimeoutMs / 1000;
  ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &send_timeout, sizeof send_timeout);

  auto message = read_message(conn);
  HttpResponse response;
  if (!message) {
    response.status = message.error().find("oversized") != std::string::npos ? 413 : 400;
    response.body = "{\"error\": \"" + message.error() + "\"}\n";
  } else {
    auto request = parse_http_request(*message);
    if (!request) {
      response.status = 400;
      response.body = "{\"error\": \"" + request.error() + "\"}\n";
    } else {
      response = handler_(*request);
    }
  }
  if (response.stream) {
    bool alive = send_all(conn, render_stream_header(response));
    if (alive && !response.body.empty()) {
      alive = send_all(conn, render_chunk(response.body));
    }
    std::string piece;
    bool more = true;
    while (alive && more && !stopping_.load(std::memory_order_relaxed)) {
      piece.clear();
      more = response.stream(piece);
      if (!piece.empty()) alive = send_all(conn, render_chunk(piece));
    }
    // Terminator even on interrupt: a stopped server ends streams cleanly.
    if (alive) send_all(conn, render_chunk({}));
  } else {
    send_all(conn, render_http_response(response));
  }
  ::shutdown(conn, SHUT_RDWR);
  ::close(conn);
}

common::Expected<HttpResponse> http_call(const Endpoint& endpoint, const HttpRequest& request,
                                         int connect_timeout_ms) {
  using E = common::Expected<HttpResponse>;
  auto fd = open_client_fd(endpoint, connect_timeout_ms);
  if (!fd) return E::error(fd.error());
  const std::string host = endpoint.is_unix() ? "localhost" : endpoint.describe();
  if (!send_all(*fd, render_http_request(request, host))) {
    ::close(*fd);
    return E::error("send failed");
  }
  ::shutdown(*fd, SHUT_WR);
  auto message = read_message(*fd);
  ::close(*fd);
  if (!message) return E::error(message.error());
  return parse_http_response(*message);
}

common::Expected<HttpResponse> http_call(std::uint16_t port, const HttpRequest& request) {
  return http_call(Endpoint::tcp(port), request);
}

common::Expected<HttpResponse> http_stream(const Endpoint& endpoint, const HttpRequest& request,
                                           const StreamSink& on_data, int idle_timeout_ms,
                                           int connect_timeout_ms) {
  using E = common::Expected<HttpResponse>;
  auto opened = open_client_fd(endpoint, connect_timeout_ms);
  if (!opened) return E::error(opened.error());
  const int fd = *opened;
  const std::string host = endpoint.is_unix() ? "localhost" : endpoint.describe();
  if (!send_all(fd, render_http_request(request, host))) {
    ::close(fd);
    return E::error("send failed");
  }
  ::shutdown(fd, SHUT_WR);

  // Read the header block, then hand the rest to the chunk decoder as it
  // arrives — the whole point over http_call is not waiting for EOF.
  std::string buf;
  char chunk[4096];
  std::size_t head_end = std::string::npos;
  while (head_end == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, idle_timeout_ms);
    if (ready <= 0) {
      ::close(fd);
      return E::error("stream idle timeout waiting for headers");
    }
    const ssize_t n = net_recv(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return E::error(std::string("recv: ") + err);
    }
    if (n == 0) {
      ::close(fd);
      return E::error("connection closed before headers completed");
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    if (buf.size() > kMaxMessageBytes) {
      ::close(fd);
      return E::error("oversized header block");
    }
    head_end = buf.find("\r\n\r\n");
  }

  HttpResponse res;
  {
    // Header-only parse: the body is still in flight at this point.
    std::string ignored_body;
    auto start = parse_message(buf.substr(0, head_end + 4), res.headers, ignored_body,
                               /*head_only=*/true);
    if (!start) {
      ::close(fd);
      return E::error(start.error());
    }
    std::istringstream parts(*start);
    std::string version;
    if (!(parts >> version >> res.status) || version.rfind("HTTP/", 0) != 0) {
      ::close(fd);
      return E::error("malformed status line '" + *start + "'");
    }
  }
  const auto ct = res.headers.find("content-type");
  if (ct != res.headers.end()) res.content_type = ct->second;

  std::string rest = buf.substr(head_end + 4);
  if (lower(res.headers.count("transfer-encoding") != 0 ? res.headers.at("transfer-encoding")
                                                        : "") != "chunked") {
    // Non-chunked (the daemon's error responses): buffer to EOF like
    // http_call, bounded by Content-Length when present.
    res.body = std::move(rest);
    while (res.body.size() <= kMaxMessageBytes) {
      pollfd pfd{fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, idle_timeout_ms);
      if (ready <= 0) break;
      const ssize_t n = net_recv(fd, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      res.body.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    const auto length = res.headers.find("content-length");
    if (length != res.headers.end()) {
      const unsigned long long want = std::strtoull(length->second.c_str(), nullptr, 10);
      if (res.body.size() > want) res.body.resize(want);
    }
    return res;
  }

  ChunkDecoder decoder;
  std::string decoded;
  auto deliver = [&]() -> bool {  // false = sink asked to stop
    if (decoded.empty()) return true;
    const bool keep_going = !on_data || on_data(decoded);
    decoded.clear();
    return keep_going;
  };
  if (auto st = decoder.feed(rest, decoded); !st.ok()) {
    ::close(fd);
    return E::error(st.error());
  }
  if (!deliver()) {
    ::close(fd);
    return res;
  }
  while (!decoder.done()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, idle_timeout_ms);
    if (ready <= 0) {
      ::close(fd);
      return E::error("stream idle timeout");
    }
    const ssize_t n = net_recv(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return E::error(std::string("recv: ") + err);
    }
    if (n == 0) {
      ::close(fd);
      return E::error("connection closed mid-stream");
    }
    if (auto st = decoder.feed({chunk, static_cast<std::size_t>(n)}, decoded); !st.ok()) {
      ::close(fd);
      return E::error(st.error());
    }
    if (!deliver()) break;
  }
  ::close(fd);
  return res;
}

common::Expected<HttpResponse> http_stream(std::uint16_t port, const HttpRequest& request,
                                           const StreamSink& on_data, int idle_timeout_ms) {
  return http_stream(Endpoint::tcp(port), request, on_data, idle_timeout_ms);
}

}  // namespace aimes::net
