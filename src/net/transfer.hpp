// Fair-share progressive file transfers.
//
// Each (site, direction) channel serves its active flows with an equal share
// of the channel capacity; when a flow starts or finishes, the remaining
// bytes of every other flow on the channel are brought up to date and their
// completion events are rescheduled. This is the classic processor-sharing
// fluid model: cheap, deterministic, and accurate enough that Ts scales
// linearly in the number of concurrently staged files — the behaviour the
// paper's experiments rely on.
#pragma once

#include <functional>
#include <unordered_map>

#include "common/id.hpp"
#include "net/topology.hpp"
#include "obs/recorder.hpp"
#include "sim/engine.hpp"

namespace aimes::net {

using common::TransferId;

/// Completion notice for one transfer.
struct TransferDone {
  TransferId id;
  SiteId site;
  Direction direction = Direction::kIn;
  DataSize size;
  common::SimTime started_at;
  common::SimTime finished_at;
  [[nodiscard]] SimDuration duration() const { return finished_at - started_at; }
};

/// Runs flows over a Topology on the simulation engine.
class TransferManager {
 public:
  using Callback = std::function<void(const TransferDone&)>;

  /// `engine` and `topology` must outlive the manager.
  TransferManager(sim::Engine& engine, const Topology& topology);

  TransferManager(const TransferManager&) = delete;
  TransferManager& operator=(const TransferManager&) = delete;

  /// Starts a transfer of `size` bytes; `done` fires exactly once, when the
  /// last byte arrives (after channel latency). Errors if the site has no
  /// registered link.
  Expected<TransferId> start(SiteId site, Direction dir, DataSize size, Callback done);

  /// Number of in-flight flows on a channel.
  [[nodiscard]] std::size_t active_flows(SiteId site, Direction dir) const;

  /// Total flows completed since construction.
  [[nodiscard]] std::uint64_t completed() const { return completed_; }

  /// Estimated time for a new transfer started now, accounting for present
  /// contention (used by the Bundle query interface; the paper notes such
  /// estimates are useful "within an order of magnitude").
  [[nodiscard]] Expected<SimDuration> estimate(SiteId site, Direction dir, DataSize size) const;

  /// Total bytes of all in-flight flows (committed at start, released on
  /// completion — the "transfer bytes in flight" series).
  [[nodiscard]] double bytes_in_flight() const { return bytes_in_flight_; }

  /// Attaches the observability recorder (nullable; off by default). Emits
  /// transfer start/completion counters, staged-bytes totals, and registers
  /// the `aimes_net_bytes_in_flight` callback gauge.
  void set_recorder(obs::Recorder* recorder);

 private:
  struct ChannelKey {
    SiteId site;
    Direction dir;
    bool operator==(const ChannelKey&) const = default;
  };
  struct ChannelKeyHash {
    std::size_t operator()(const ChannelKey& k) const {
      return std::hash<std::uint64_t>{}(k.site.value() * 2 +
                                        (k.dir == Direction::kOut ? 1 : 0));
    }
  };
  struct Flow {
    TransferId id;
    ChannelKey channel;
    double remaining_bytes = 0;
    DataSize total;
    common::SimTime started_at;
    Callback done;
  };
  struct Channel {
    std::vector<TransferId> flows;
    common::SimTime last_update;
    common::EventId next_completion = common::EventId::invalid();
  };

  void update_channel(const ChannelKey& key);
  void reschedule_channel(const ChannelKey& key);
  [[nodiscard]] double share_bps(const ChannelKey& key, std::size_t nflows) const;

  sim::Engine& engine_;
  const Topology& topology_;
  common::IdGen<common::XferTag> ids_;
  std::unordered_map<TransferId, Flow> flows_;
  std::unordered_map<ChannelKey, Channel, ChannelKeyHash> channels_;
  std::uint64_t completed_ = 0;
  double bytes_in_flight_ = 0.0;
  obs::Recorder* recorder_ = nullptr;
  /// Per-direction counters resolved once in set_recorder (index 0 = in,
  /// 1 = out): transfers are hot enough that per-call registry lookups show
  /// up in the tracer-overhead bench.
  obs::Counter* obs_started_[2] = {nullptr, nullptr};
  obs::Counter* obs_completed_[2] = {nullptr, nullptr};
  obs::Counter* obs_bytes_[2] = {nullptr, nullptr};
};

}  // namespace aimes::net
