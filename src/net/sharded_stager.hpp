// Cross-shard routing of transfers and control messages.
//
// In a sharded run the TransferManager (and the whole origin/control group)
// lives on shard 0, while sites live wherever the ShardPlan put them. The
// stager is the boundary adapter: the WAN transfer itself runs as a shard-0
// fluid-model flow, and the *arrival* — the moment the destination site
// learns the data landed — crosses shards as a mailbox message delayed by
// that site's own link latency. Because the lookahead is the topology's
// minimum latency, every such message satisfies the conservative contract by
// construction; the stager asserts it anyway.
//
// Streams: the origin->site direction uses stream id `2 * site.value()` and
// the site->origin direction `2 * site.value() + 1`. A stream's sequence
// counter must count one logical sender's posts regardless of how groups
// are packed onto shards — folding both directions of a site into one
// stream would merge their counters exactly when the site shares shard 0
// with the origin (e.g. at --shards 1) and break packing independence.
#pragma once

#include <cstddef>
#include <functional>
#include <unordered_map>

#include "common/id.hpp"
#include "net/topology.hpp"
#include "net/transfer.hpp"
#include "sim/sharded_engine.hpp"

namespace aimes::net {

class ShardedStager {
 public:
  /// All references must outlive the stager. `transfers` must run on
  /// `engines.shard(0)` — the origin/control shard.
  ShardedStager(sim::ShardedEngine& engines, TransferManager& transfers,
                const Topology& topology);

  ShardedStager(const ShardedStager&) = delete;
  ShardedStager& operator=(const ShardedStager&) = delete;

  /// Declares which shard hosts `site`'s group.
  void assign(SiteId site, std::size_t shard);

  [[nodiscard]] std::size_t shard_of(SiteId site) const;

  /// Starts an origin -> site transfer on the shard-0 channel; when the last
  /// byte arrives, `deliver` runs *on the site's shard* one in-link latency
  /// later (the unpack handshake that carries the arrival across the shard
  /// boundary). Call from shard 0 only.
  Expected<common::TransferId> stage_in(SiteId site, DataSize size,
                                        std::function<void(common::SimTime)> deliver);

  /// Posts a control notice from `site`'s shard back to the origin shard,
  /// delayed by the site's out-link latency. Call from the site's shard only
  /// (typically a job-completion callback). Thread-safe with respect to
  /// other shards because it only reads the (setup-frozen) shard map and
  /// appends to the calling shard's own outbox.
  void notify_origin(SiteId site, std::function<void()> fn);

 private:
  sim::ShardedEngine& engines_;
  TransferManager& transfers_;
  const Topology& topology_;
  /// Frozen after world setup; concurrent reads from site shards are safe.
  std::unordered_map<SiteId, std::size_t> shard_of_;
};

}  // namespace aimes::net
