#include "net/fault.hpp"

#include <atomic>
#include <mutex>
#include <sstream>

#include "common/rng.hpp"

namespace aimes::net {
namespace {

struct ShimState {
  std::mutex mu;
  FaultSpec spec;
  std::uint64_t ops = 0;
};

// Hot-path gate: one relaxed load when no profile is installed.
std::atomic<bool> g_active{false};

ShimState& shim() {
  static ShimState state;
  return state;
}

// One uniform draw in [0, 1) per (seed, op, lane). Lanes keep the reset /
// short / stall decisions of a single operation independent of each other.
double uniform01(std::uint64_t seed, std::uint64_t op, std::uint64_t lane) {
  std::uint64_t state = seed ^ (op * 0x9e3779b97f4a7c15ULL) ^ (lane << 56);
  const std::uint64_t bits = common::splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

common::Expected<FaultSpec> spec_error(const std::string& what) {
  return common::Expected<FaultSpec>::error(
      "invalid --net-faults spec: " + what +
      " (expected comma-separated key=value with keys seed, short-read, "
      "short-write, read-stall, reset, accept-reset, stall-ms)");
}

bool parse_probability(const std::string& text, double& out) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size() || value < 0.0 || value > 1.0) return false;
    out = value;
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

common::Expected<FaultSpec> parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string item =
        text.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? text.size() + 1 : comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return spec_error("item '" + item + "' has no '='");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      try {
        std::size_t used = 0;
        spec.seed = std::stoull(value, &used);
        if (used != value.size()) return spec_error("seed '" + value + "' is not an integer");
      } catch (...) {
        return spec_error("seed '" + value + "' is not an integer");
      }
    } else if (key == "short-read" || key == "short-write" || key == "read-stall" ||
               key == "reset" || key == "accept-reset") {
      double p = 0.0;
      if (!parse_probability(value, p)) {
        return spec_error(key + " '" + value + "' is not a probability in [0, 1]");
      }
      if (key == "short-read") spec.short_read = p;
      if (key == "short-write") spec.short_write = p;
      if (key == "read-stall") spec.read_stall = p;
      if (key == "reset") spec.reset = p;
      if (key == "accept-reset") spec.accept_reset = p;
    } else if (key == "stall-ms") {
      try {
        std::size_t used = 0;
        const long ms = std::stol(value, &used);
        // Stalls must stay well under the 5 s socket poll timeouts or every
        // faulted read turns into a spurious timeout instead of a stall.
        if (used != value.size() || ms < 1 || ms > 2000) {
          return spec_error("stall-ms '" + value + "' is not in [1, 2000]");
        }
        spec.stall_ms = static_cast<int>(ms);
      } catch (...) {
        return spec_error("stall-ms '" + value + "' is not an integer");
      }
    } else {
      return spec_error("unknown key '" + key + "'");
    }
  }
  return spec;
}

std::string to_string(const FaultSpec& spec) {
  std::ostringstream out;
  out << "seed=" << spec.seed << ",short-read=" << spec.short_read
      << ",short-write=" << spec.short_write << ",read-stall=" << spec.read_stall
      << ",reset=" << spec.reset << ",accept-reset=" << spec.accept_reset
      << ",stall-ms=" << spec.stall_ms;
  return out.str();
}

void install_net_faults(const FaultSpec& spec) {
  ShimState& state = shim();
  std::lock_guard lock(state.mu);
  state.spec = spec;
  state.ops = 0;
  g_active.store(spec.any(), std::memory_order_release);
}

void clear_net_faults() {
  ShimState& state = shim();
  std::lock_guard lock(state.mu);
  state.spec = FaultSpec{};
  state.ops = 0;
  g_active.store(false, std::memory_order_release);
}

bool net_faults_active() { return g_active.load(std::memory_order_acquire); }

FaultDecision next_net_fault(FaultPoint point) {
  FaultDecision decision;
  if (!net_faults_active()) return decision;
  ShimState& state = shim();
  std::lock_guard lock(state.mu);
  if (!state.spec.any()) return decision;
  const std::uint64_t op = state.ops++;
  const FaultSpec& spec = state.spec;
  switch (point) {
    case FaultPoint::kAccept:
      decision.reset = uniform01(spec.seed, op, 0) < spec.accept_reset;
      return decision;
    case FaultPoint::kRead:
      decision.reset = uniform01(spec.seed, op, 0) < spec.reset;
      if (decision.reset) return decision;
      decision.short_op = uniform01(spec.seed, op, 1) < spec.short_read;
      if (uniform01(spec.seed, op, 2) < spec.read_stall) decision.stall_ms = spec.stall_ms;
      return decision;
    case FaultPoint::kWrite:
      decision.reset = uniform01(spec.seed, op, 0) < spec.reset;
      if (decision.reset) return decision;
      decision.short_op = uniform01(spec.seed, op, 1) < spec.short_write;
      return decision;
  }
  return decision;
}

std::uint64_t net_fault_ops() {
  ShimState& state = shim();
  std::lock_guard lock(state.mu);
  return state.ops;
}

}  // namespace aimes::net
