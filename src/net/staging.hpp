// File staging service.
//
// Sits between the middleware (which thinks in named files attached to
// tasks) and the TransferManager (which thinks in flows). Adds the fixed
// per-file overhead of a real staging tool (session setup, metadata, local
// filesystem ops) so that staging many tiny files is not free — the reason
// the paper's Ts grows with the number of tasks even at 2 KB outputs.
#pragma once

#include <functional>
#include <string>

#include "net/transfer.hpp"
#include "sim/faults.hpp"

namespace aimes::net {

/// Per-file staging overhead applied on top of the wire transfer.
struct StagingPolicy {
  SimDuration per_file_overhead = SimDuration::millis(500);
};

/// Completion notice for one staged file. `ok == false` means the transfer
/// failed partway (injected fault); `finished_at` is then the failure time.
struct StagingDone {
  std::string file;
  SiteId site;
  Direction direction = Direction::kIn;
  DataSize size;
  common::SimTime started_at;
  common::SimTime finished_at;
  bool ok = true;
  [[nodiscard]] SimDuration duration() const { return finished_at - started_at; }
};

/// Stages named files to and from sites.
class StagingService {
 public:
  using Callback = std::function<void(const StagingDone&)>;

  /// `faults` (optional, non-owning) makes individual staged files fail:
  /// the callback then fires with `ok == false` after a partial transfer.
  StagingService(sim::Engine& engine, TransferManager& transfers, StagingPolicy policy = {},
                 sim::FaultInjector* faults = nullptr);

  StagingService(const StagingService&) = delete;
  StagingService& operator=(const StagingService&) = delete;

  /// Stages `file` of `size` bytes from the origin to `site` (kIn) or back
  /// (kOut); `done` fires exactly once.
  common::Status stage(const std::string& file, SiteId site, Direction dir, DataSize size,
                       Callback done);

  /// Estimate including per-file overhead and current contention.
  [[nodiscard]] Expected<SimDuration> estimate(SiteId site, Direction dir, DataSize size) const;

  [[nodiscard]] std::uint64_t staged_count() const { return staged_; }
  [[nodiscard]] DataSize staged_bytes() const { return staged_bytes_; }

 private:
  sim::Engine& engine_;
  TransferManager& transfers_;
  StagingPolicy policy_;
  sim::FaultInjector* faults_ = nullptr;
  std::uint64_t staged_ = 0;
  DataSize staged_bytes_;
};

}  // namespace aimes::net
