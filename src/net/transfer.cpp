#include "net/transfer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aimes::net {

namespace {
// Flows with less than this many bytes left are considered drained; the
// fluid model cannot split a byte meaningfully.
constexpr double kDrainEpsilonBytes = 1.0;
}  // namespace

TransferManager::TransferManager(sim::Engine& engine, const Topology& topology)
    : engine_(engine), topology_(topology) {}

void TransferManager::set_recorder(obs::Recorder* recorder) {
  recorder_ = recorder;
  if (recorder_ == nullptr) return;
  recorder_->metrics().gauge_callback("aimes_net_bytes_in_flight", {},
                                      [this] { return bytes_in_flight_; });
  const char* dirs[2] = {"in", "out"};
  for (int d = 0; d < 2; ++d) {
    auto& metrics = recorder_->metrics();
    obs_started_[d] = &metrics.counter("aimes_net_transfers_started_total", {{"dir", dirs[d]}});
    obs_completed_[d] =
        &metrics.counter("aimes_net_transfers_completed_total", {{"dir", dirs[d]}});
    obs_bytes_[d] = &metrics.counter("aimes_net_bytes_staged_total", {{"dir", dirs[d]}});
  }
}

double TransferManager::share_bps(const ChannelKey& key, std::size_t nflows) const {
  auto link = topology_.link(key.site, key.dir);
  assert(link.ok());
  return link->capacity.bytes_per_sec() / static_cast<double>(std::max<std::size_t>(1, nflows));
}

Expected<TransferId> TransferManager::start(SiteId site, Direction dir, DataSize size,
                                            Callback done) {
  auto link = topology_.link(site, dir);
  if (!link) return Expected<TransferId>::error(link.error());
  assert(done);

  const TransferId id = ids_.next();
  Flow flow;
  flow.id = id;
  flow.channel = ChannelKey{site, dir};
  flow.remaining_bytes = static_cast<double>(size.count_bytes());
  flow.total = size;
  flow.started_at = engine_.now();
  flow.done = std::move(done);
  flows_.emplace(id, std::move(flow));
  bytes_in_flight_ += static_cast<double>(size.count_bytes());
  if (recorder_ != nullptr) {
    obs_started_[dir == Direction::kIn ? 0 : 1]->add();
    recorder_->note_activity();
  }

  // Latency elapses before the flow occupies the channel; bytes then drain
  // at the fair-share rate.
  engine_.schedule(link->latency, [this, id] {
    auto it = flows_.find(id);
    if (it == flows_.end()) return;
    const ChannelKey key = it->second.channel;
    update_channel(key);
    Channel& ch = channels_[key];
    if (ch.flows.empty()) ch.last_update = engine_.now();
    ch.flows.push_back(id);
    reschedule_channel(key);
  });
  return id;
}

std::size_t TransferManager::active_flows(SiteId site, Direction dir) const {
  auto it = channels_.find(ChannelKey{site, dir});
  return it == channels_.end() ? 0 : it->second.flows.size();
}

Expected<SimDuration> TransferManager::estimate(SiteId site, Direction dir,
                                                DataSize size) const {
  auto link = topology_.link(site, dir);
  if (!link) return Expected<SimDuration>::error(link.error());
  const std::size_t n = active_flows(site, dir) + 1;
  const double bps = link->capacity.bytes_per_sec() / static_cast<double>(n);
  return link->latency + SimDuration::seconds(static_cast<double>(size.count_bytes()) / bps);
}

void TransferManager::update_channel(const ChannelKey& key) {
  auto cit = channels_.find(key);
  if (cit == channels_.end()) return;
  Channel& ch = cit->second;
  if (ch.flows.empty()) {
    ch.last_update = engine_.now();
    return;
  }
  const double elapsed_s = (engine_.now() - ch.last_update).to_seconds();
  if (elapsed_s > 0) {
    const double rate = share_bps(key, ch.flows.size());
    for (TransferId fid : ch.flows) {
      flows_.at(fid).remaining_bytes -= rate * elapsed_s;
    }
  }
  ch.last_update = engine_.now();
}

void TransferManager::reschedule_channel(const ChannelKey& key) {
  auto cit = channels_.find(key);
  if (cit == channels_.end()) return;
  Channel& ch = cit->second;
  if (ch.next_completion.valid()) {
    engine_.cancel(ch.next_completion);
    ch.next_completion = common::EventId::invalid();
  }

  // Complete every drained flow right away (preserving start order for
  // deterministic callback sequencing).
  std::vector<TransferId> done;
  for (TransferId fid : ch.flows) {
    if (flows_.at(fid).remaining_bytes <= kDrainEpsilonBytes) done.push_back(fid);
  }
  for (TransferId fid : done) {
    ch.flows.erase(std::remove(ch.flows.begin(), ch.flows.end(), fid), ch.flows.end());
    Flow flow = std::move(flows_.at(fid));
    flows_.erase(fid);
    ++completed_;
    bytes_in_flight_ -= static_cast<double>(flow.total.count_bytes());
    if (bytes_in_flight_ < 0) bytes_in_flight_ = 0;
    if (recorder_ != nullptr) {
      const int d = key.dir == Direction::kIn ? 0 : 1;
      obs_completed_[d]->add();
      obs_bytes_[d]->add(static_cast<double>(flow.total.count_bytes()));
    }
    TransferDone notice{flow.id,        key.site,        key.dir,
                        flow.total,     flow.started_at, engine_.now()};
    flow.done(notice);
  }
  if (ch.flows.empty()) return;

  // Next completion: the flow with the least remaining bytes at the current
  // fair share.
  const double rate = share_bps(key, ch.flows.size());
  double min_remaining = flows_.at(ch.flows.front()).remaining_bytes;
  for (TransferId fid : ch.flows) {
    min_remaining = std::min(min_remaining, flows_.at(fid).remaining_bytes);
  }
  const double secs = std::max(0.0, min_remaining / rate);
  const auto delay = SimDuration::millis(
      static_cast<std::int64_t>(std::ceil(secs * 1000.0)) + 1);
  ch.next_completion = engine_.schedule(delay, [this, key] {
    channels_[key].next_completion = common::EventId::invalid();
    update_channel(key);
    reschedule_channel(key);
  });
}

}  // namespace aimes::net
