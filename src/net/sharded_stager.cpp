#include "net/sharded_stager.hpp"

#include <cassert>
#include <utility>

namespace aimes::net {

ShardedStager::ShardedStager(sim::ShardedEngine& engines, TransferManager& transfers,
                             const Topology& topology)
    : engines_(engines), transfers_(transfers), topology_(topology) {}

void ShardedStager::assign(SiteId site, std::size_t shard) {
  assert(shard < engines_.shards());
  shard_of_[site] = shard;
}

std::size_t ShardedStager::shard_of(SiteId site) const {
  auto it = shard_of_.find(site);
  return it == shard_of_.end() ? 0 : it->second;
}

Expected<common::TransferId> ShardedStager::stage_in(
    SiteId site, DataSize size, std::function<void(common::SimTime)> deliver) {
  const auto link = topology_.link(site, Direction::kIn);
  if (!link) return Expected<common::TransferId>::error(link.error());
  const common::SimDuration latency = link->latency;
  const std::size_t dst = shard_of(site);
  return transfers_.start(
      site, Direction::kIn, size,
      [this, site, dst, latency, deliver = std::move(deliver)](const TransferDone& done) {
        // The flow finished on shard 0; the site's group learns of it one
        // in-link latency later. latency >= topology.min_latency() ==
        // lookahead, so the conservative post contract holds for every site.
        const common::SimTime arrival = done.finished_at + latency;
        engines_.post(0, dst, site.value() * 2, arrival,
                      [deliver, arrival] { deliver(arrival); });
      });
}

void ShardedStager::notify_origin(SiteId site, std::function<void()> fn) {
  const auto link = topology_.link(site, Direction::kOut);
  assert(link.ok() && "notify_origin: site has no registered out-link");
  const std::size_t src = shard_of(site);
  const common::SimTime when = engines_.shard(src).now() + link->latency;
  engines_.post(src, 0, site.value() * 2 + 1, when, std::move(fn));
}

}  // namespace aimes::net
