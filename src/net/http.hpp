// Minimal local HTTP/1.1 transport for the control plane.
//
// `aimesd` speaks plain HTTP on a loopback TCP socket so any client — the
// bundled `aimesc`, curl in tools/verify.sh, a Prometheus scraper hitting
// /metrics — can talk to it without a bespoke wire protocol. The server is
// deliberately small: Content-Length framing only (no chunked encoding, no
// keep-alive — every response closes the connection), one poll()-driven
// accept loop feeding a handler callback, size caps instead of streaming.
// That is the whole feature set a single-host control plane needs, and every
// line of it is testable without sockets through parse/render below.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/expected.hpp"

namespace aimes::net {

struct HttpRequest {
  std::string method;  ///< GET, POST, DELETE, ... (uppercased by the parser)
  std::string target;  ///< raw request-target, e.g. "/api/v1/runs?user=ana"
  std::string path;    ///< target up to '?'
  std::string query;   ///< target past '?' (no '?'), may be empty
  /// Header names are lowercased by the parser; values are trimmed.
  std::map<std::string, std::string> headers;
  std::string body;

  /// Header value by lowercase name; empty string when absent.
  [[nodiscard]] std::string header(const std::string& name) const;
  /// Value of `key` in the query string ("a=1&b=2"); empty when absent.
  [[nodiscard]] std::string query_param(const std::string& key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Human phrase for the handful of status codes the control plane uses.
[[nodiscard]] std::string_view status_phrase(int status);

/// Parses one complete request (start-line + headers + Content-Length body).
/// Fails with a description when the framing is malformed or incomplete.
[[nodiscard]] common::Expected<HttpRequest> parse_http_request(const std::string& text);

/// Parses one complete response; used by the http_call client and the tests.
[[nodiscard]] common::Expected<HttpResponse> parse_http_response(const std::string& text);

/// Renders a response with Content-Length and Connection: close framing.
[[nodiscard]] std::string render_http_response(const HttpResponse& response);

/// Renders a request (Host/Content-Length/Connection: close added).
[[nodiscard]] std::string render_http_request(const HttpRequest& request,
                                              const std::string& host);

/// Loopback HTTP server: binds 127.0.0.1:`port` (0 = ephemeral), serves each
/// connection serially on one background jthread. The handler runs on that
/// thread; anything slow belongs behind a queue (ctl::Registry), not in the
/// handler. Malformed requests get a 400, oversized ones (1 MiB) a 413,
/// handler exceptions never happen (the codebase is exception-free).
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer() { stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds and starts serving. Returns the bound port (the ephemeral result
  /// when `port` was 0) or a description of the socket failure.
  [[nodiscard]] common::Expected<std::uint16_t> start(std::uint16_t port, Handler handler);

  /// Stops accepting, closes the listener, and joins the accept loop. Safe
  /// to call twice; the destructor calls it.
  void stop();

  [[nodiscard]] bool running() const { return listen_fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  void serve(const std::stop_token& stop_token);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  Handler handler_;
  std::jthread thread_;
};

/// One-shot client: connects to 127.0.0.1:`port`, sends `request`, reads to
/// EOF (the server closes), parses the response. Fails with a description on
/// connect/IO/parse errors.
[[nodiscard]] common::Expected<HttpResponse> http_call(std::uint16_t port,
                                                       const HttpRequest& request);

}  // namespace aimes::net
