// Minimal local HTTP/1.1 transport for the control plane.
//
// `aimesd` speaks plain HTTP on a loopback TCP socket — or a unix-domain
// socket (`--socket PATH`) — so any client — the bundled `aimesc`, curl in
// tools/verify.sh, a Prometheus scraper hitting /metrics — can talk to it
// without a bespoke wire protocol. The server is deliberately small:
// Content-Length framing for one-shot exchanges, chunked framing for the
// live-telemetry streams (log tail, SSE events), no keep-alive — every
// response closes the connection — and size caps everywhere. Each accepted
// connection gets its own thread (a follower tailing a one-hour run must not
// block the next `aimesc list`), reaped by the accept loop. Every framing
// path is testable without sockets through parse/render/ChunkDecoder below,
// and every socket path is testable *with* sockets under the seeded fault
// shim in net/fault.hpp (short reads/writes, stalls, resets).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/expected.hpp"

namespace aimes::net {

/// Where a control-plane peer lives: loopback TCP (port != 0 after bind) or
/// a unix-domain socket path. Exactly one of the two is set.
struct Endpoint {
  std::uint16_t port = 0;
  std::string socket_path;

  [[nodiscard]] bool is_unix() const { return !socket_path.empty(); }
  /// "127.0.0.1:8477" or "unix:/run/aimesd.sock" — for error messages.
  [[nodiscard]] std::string describe() const;

  static Endpoint tcp(std::uint16_t port) { return Endpoint{port, ""}; }
  static Endpoint unix_path(std::string path) { return Endpoint{0, std::move(path)}; }
};

struct HttpRequest {
  std::string method;  ///< GET, POST, DELETE, ... (uppercased by the parser)
  std::string target;  ///< raw request-target, e.g. "/api/v1/runs?user=ana"
  std::string path;    ///< target up to '?'
  std::string query;   ///< target past '?' (no '?'), may be empty
  /// Header names are lowercased by the parser; values are trimmed. On the
  /// client side, entries here are rendered onto the wire (Idempotency-Key,
  /// deadline hints); Host/Content-Length/Connection are always synthesized.
  std::map<std::string, std::string> headers;
  std::string body;

  /// Header value by lowercase name; empty string when absent.
  [[nodiscard]] std::string header(const std::string& name) const;
  /// Value of `key` in the query string ("a=1&b=2"); empty when absent.
  [[nodiscard]] std::string query_param(const std::string& key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra response headers (Retry-After, Idempotency-Key echo). Names are
  /// rendered as given and lowercased by the client-side parser;
  /// Content-Type/Content-Length/Connection/Transfer-Encoding are always
  /// synthesized by the renderers and must not appear here.
  std::map<std::string, std::string> headers;
  /// Streaming body pull: append the next piece to `out`, return true while
  /// more may come (an empty append is a legal "nothing yet" tick), false
  /// once the stream is finished. When set, the server sends the headers
  /// with chunked framing, `body` as the first chunk, then drains the pull
  /// until it returns false (or the client disconnects / the server stops).
  using Pull = std::function<bool(std::string&)>;
  Pull stream;

  /// Header value by lowercase name; empty string when absent.
  [[nodiscard]] std::string header(const std::string& name) const;
};

/// Human phrase for the handful of status codes the control plane uses.
[[nodiscard]] std::string_view status_phrase(int status);

/// Parses one complete request (start-line + headers + Content-Length body).
/// Fails with a description when the framing is malformed or incomplete.
[[nodiscard]] common::Expected<HttpRequest> parse_http_request(const std::string& text);

/// Parses one complete response; used by the http_call client and the tests.
[[nodiscard]] common::Expected<HttpResponse> parse_http_response(const std::string& text);

/// Renders a response with Content-Length and Connection: close framing.
/// (Ignores `stream`; the server uses the chunked renderers below for that.)
[[nodiscard]] std::string render_http_response(const HttpResponse& response);

/// Renders the header block of a chunked (streaming) response — status line,
/// Content-Type, Transfer-Encoding: chunked, Connection: close — no body.
[[nodiscard]] std::string render_stream_header(const HttpResponse& response);

/// Renders one chunk ("<hex-size>\r\n<data>\r\n"); empty data renders the
/// zero-length terminator chunk "0\r\n\r\n" that ends the stream.
[[nodiscard]] std::string render_chunk(std::string_view data);

/// Incremental HTTP/1.1 chunked-transfer decoder. Feed raw bytes as they
/// arrive off the socket — in any split, down to one byte at a time — and
/// decoded payload is appended to `out`. Strict CRLF framing; a chunk larger
/// than the 1 MiB message cap (or an over-long size line) is rejected with a
/// typed error rather than buffered. done() turns true once the zero-length
/// terminator chunk and its trailer section have been consumed; feeding
/// bytes after that is an error (the control plane closes after one stream).
class ChunkDecoder {
 public:
  [[nodiscard]] common::Status feed(std::string_view data, std::string& out);
  [[nodiscard]] bool done() const { return state_ == State::kDone; }

 private:
  enum class State { kSize, kData, kDataEnd, kTrailer, kDone };
  State state_ = State::kSize;
  std::string line_;           ///< partial size/CRLF/trailer line
  std::size_t remaining_ = 0;  ///< payload bytes left in the current chunk
};

/// Renders a request (Host/Content-Length/Connection: close added, plus any
/// request.headers entries not in that synthesized set).
[[nodiscard]] std::string render_http_request(const HttpRequest& request,
                                              const std::string& host);

/// One server-sent event as the daemon's /events stream frames them:
///   id: 7\nevent: progress\ndata: {...}\n\n
struct SseEvent {
  bool has_id = false;
  std::uint64_t id = 0;
  std::string kind;  ///< the "event:" field; empty for keepalive comments
  std::string data;  ///< "data:" lines joined with '\n'
};

/// Parses one complete ("\n\n"-terminated body, terminator excluded) SSE
/// frame. Comment lines (":") and unknown fields are skipped per the spec.
[[nodiscard]] SseEvent parse_sse_event(const std::string& block);

/// Extracts every complete frame from `carry` (in arrival order), leaving
/// any truncated tail — e.g. a frame cut mid-`id:` line by a dropped
/// connection — in place for the next feed. Comment-only frames (keepalives)
/// are dropped. This is how `aimesc watch` resumes from the last *complete*
/// seq after a torn stream.
[[nodiscard]] std::vector<SseEvent> drain_sse_frames(std::string& carry);

/// Capped exponential backoff with deterministic seeded jitter: attempt n
/// sleeps base·2^n plus up to 50% jitter, capped. Reset() after a success so
/// steady-state retries stay cheap. Deterministic per (seed, attempt), so
/// chaos tests replay the exact same retry cadence.
class Backoff {
 public:
  Backoff(int base_ms, int cap_ms, std::uint64_t seed)
      : base_ms_(base_ms), cap_ms_(cap_ms), seed_(seed) {}

  /// Delay for the next attempt, advancing the attempt counter.
  [[nodiscard]] int next_ms();
  void reset() { attempt_ = 0; }
  [[nodiscard]] int attempts() const { return attempt_; }

 private:
  int base_ms_;
  int cap_ms_;
  std::uint64_t seed_;
  int attempt_ = 0;
};

/// Loopback HTTP server: binds 127.0.0.1:`port` (0 = ephemeral) or a unix
/// socket path and runs one accept loop on a background jthread; each
/// accepted connection is handled on its own jthread (reaped by the accept
/// loop), so a long-lived telemetry stream never blocks the next request.
/// The handler runs on the connection thread; anything slow belongs behind a
/// queue (ctl::Registry) or a response `stream` pull, not in the handler
/// body. Malformed requests get a 400, oversized ones (1 MiB) a 413, handler
/// exceptions never happen (the codebase is exception-free). stop()
/// interrupts in-flight streams: the pull loop re-checks a stopping flag
/// between pulls, so handlers must keep each pull bounded (the registry
/// waits in sub-second slices).
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer() { stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds and starts serving. Returns the bound port (the ephemeral result
  /// when `port` was 0) or a description of the socket failure.
  [[nodiscard]] common::Expected<std::uint16_t> start(std::uint16_t port, Handler handler);

  /// Binds and starts serving on a unix-domain socket. A stale socket file
  /// from a crashed daemon is unlinked first; the file is unlinked again on
  /// stop(). Fails when the path exceeds sockaddr_un limits (~107 bytes).
  [[nodiscard]] common::Status start_unix(const std::string& path, Handler handler);

  /// Stops accepting, interrupts streaming responses, closes the listener,
  /// and joins every thread. Safe to call twice; the destructor calls it.
  void stop();

  [[nodiscard]] bool running() const { return listen_fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const { return endpoint_.port; }
  [[nodiscard]] const Endpoint& endpoint() const { return endpoint_; }

 private:
  struct Connection {
    std::atomic<bool> done{false};
    std::jthread thread;
  };

  void serve(const std::stop_token& stop_token);
  void handle_connection(int conn);

  int listen_fd_ = -1;
  Endpoint endpoint_;
  Handler handler_;
  std::atomic<bool> stopping_{false};
  std::list<Connection> connections_;  ///< touched only by the accept loop
  std::jthread thread_;
};

/// One-shot client: connects to `endpoint`, sends `request`, reads to EOF
/// (the server closes), parses the response. The connect is non-blocking
/// with a poll-based deadline — a black-holed address fails typed after
/// `connect_timeout_ms` instead of hanging in ::connect(). Fails with a
/// description on connect/IO/parse errors.
[[nodiscard]] common::Expected<HttpResponse> http_call(const Endpoint& endpoint,
                                                       const HttpRequest& request,
                                                       int connect_timeout_ms = 5000);
[[nodiscard]] common::Expected<HttpResponse> http_call(std::uint16_t port,
                                                       const HttpRequest& request);

/// Incremental-delivery sink for http_stream: receives each decoded piece as
/// it arrives; return false to stop reading early (client-side cancel).
using StreamSink = std::function<bool(std::string_view)>;

/// Streaming client: like http_call, but delivers a chunked response body
/// incrementally through `on_data` as pieces arrive instead of buffering to
/// EOF. A non-chunked response (the daemon's 4xx errors) is read whole into
/// the returned HttpResponse without touching `on_data`; for a chunked one
/// the returned body is empty and `on_data` saw everything. Fails when no
/// bytes arrive for `idle_timeout_ms` (streams keepalive well under that) —
/// callers tailing a run reconnect from their last offset.
[[nodiscard]] common::Expected<HttpResponse> http_stream(const Endpoint& endpoint,
                                                         const HttpRequest& request,
                                                         const StreamSink& on_data,
                                                         int idle_timeout_ms = 30000,
                                                         int connect_timeout_ms = 5000);
[[nodiscard]] common::Expected<HttpResponse> http_stream(std::uint16_t port,
                                                         const HttpRequest& request,
                                                         const StreamSink& on_data,
                                                         int idle_timeout_ms = 30000);

}  // namespace aimes::net
