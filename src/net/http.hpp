// Minimal local HTTP/1.1 transport for the control plane.
//
// `aimesd` speaks plain HTTP on a loopback TCP socket so any client — the
// bundled `aimesc`, curl in tools/verify.sh, a Prometheus scraper hitting
// /metrics — can talk to it without a bespoke wire protocol. The server is
// deliberately small: Content-Length framing for one-shot exchanges, chunked
// framing for the live-telemetry streams (log tail, SSE events), no
// keep-alive — every response closes the connection — and size caps
// everywhere. Each accepted connection gets its own thread (a follower
// tailing a one-hour run must not block the next `aimesc list`), reaped by
// the accept loop. Every framing path is testable without sockets through
// parse/render/ChunkDecoder below.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <string>
#include <string_view>
#include <thread>

#include "common/expected.hpp"

namespace aimes::net {

struct HttpRequest {
  std::string method;  ///< GET, POST, DELETE, ... (uppercased by the parser)
  std::string target;  ///< raw request-target, e.g. "/api/v1/runs?user=ana"
  std::string path;    ///< target up to '?'
  std::string query;   ///< target past '?' (no '?'), may be empty
  /// Header names are lowercased by the parser; values are trimmed.
  std::map<std::string, std::string> headers;
  std::string body;

  /// Header value by lowercase name; empty string when absent.
  [[nodiscard]] std::string header(const std::string& name) const;
  /// Value of `key` in the query string ("a=1&b=2"); empty when absent.
  [[nodiscard]] std::string query_param(const std::string& key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Streaming body pull: append the next piece to `out`, return true while
  /// more may come (an empty append is a legal "nothing yet" tick), false
  /// once the stream is finished. When set, the server sends the headers
  /// with chunked framing, `body` as the first chunk, then drains the pull
  /// until it returns false (or the client disconnects / the server stops).
  using Pull = std::function<bool(std::string&)>;
  Pull stream;
};

/// Human phrase for the handful of status codes the control plane uses.
[[nodiscard]] std::string_view status_phrase(int status);

/// Parses one complete request (start-line + headers + Content-Length body).
/// Fails with a description when the framing is malformed or incomplete.
[[nodiscard]] common::Expected<HttpRequest> parse_http_request(const std::string& text);

/// Parses one complete response; used by the http_call client and the tests.
[[nodiscard]] common::Expected<HttpResponse> parse_http_response(const std::string& text);

/// Renders a response with Content-Length and Connection: close framing.
/// (Ignores `stream`; the server uses the chunked renderers below for that.)
[[nodiscard]] std::string render_http_response(const HttpResponse& response);

/// Renders the header block of a chunked (streaming) response — status line,
/// Content-Type, Transfer-Encoding: chunked, Connection: close — no body.
[[nodiscard]] std::string render_stream_header(const HttpResponse& response);

/// Renders one chunk ("<hex-size>\r\n<data>\r\n"); empty data renders the
/// zero-length terminator chunk "0\r\n\r\n" that ends the stream.
[[nodiscard]] std::string render_chunk(std::string_view data);

/// Incremental HTTP/1.1 chunked-transfer decoder. Feed raw bytes as they
/// arrive off the socket — in any split, down to one byte at a time — and
/// decoded payload is appended to `out`. Strict CRLF framing; a chunk larger
/// than the 1 MiB message cap (or an over-long size line) is rejected with a
/// typed error rather than buffered. done() turns true once the zero-length
/// terminator chunk and its trailer section have been consumed; feeding
/// bytes after that is an error (the control plane closes after one stream).
class ChunkDecoder {
 public:
  [[nodiscard]] common::Status feed(std::string_view data, std::string& out);
  [[nodiscard]] bool done() const { return state_ == State::kDone; }

 private:
  enum class State { kSize, kData, kDataEnd, kTrailer, kDone };
  State state_ = State::kSize;
  std::string line_;           ///< partial size/CRLF/trailer line
  std::size_t remaining_ = 0;  ///< payload bytes left in the current chunk
};

/// Renders a request (Host/Content-Length/Connection: close added).
[[nodiscard]] std::string render_http_request(const HttpRequest& request,
                                              const std::string& host);

/// Loopback HTTP server: binds 127.0.0.1:`port` (0 = ephemeral) and runs one
/// accept loop on a background jthread; each accepted connection is handled
/// on its own jthread (reaped by the accept loop), so a long-lived telemetry
/// stream never blocks the next request. The handler runs on the connection
/// thread; anything slow belongs behind a queue (ctl::Registry) or a
/// response `stream` pull, not in the handler body. Malformed requests get a
/// 400, oversized ones (1 MiB) a 413, handler exceptions never happen (the
/// codebase is exception-free). stop() interrupts in-flight streams: the
/// pull loop re-checks a stopping flag between pulls, so handlers must keep
/// each pull bounded (the registry waits in sub-second slices).
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer() { stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds and starts serving. Returns the bound port (the ephemeral result
  /// when `port` was 0) or a description of the socket failure.
  [[nodiscard]] common::Expected<std::uint16_t> start(std::uint16_t port, Handler handler);

  /// Stops accepting, interrupts streaming responses, closes the listener,
  /// and joins every thread. Safe to call twice; the destructor calls it.
  void stop();

  [[nodiscard]] bool running() const { return listen_fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  struct Connection {
    std::atomic<bool> done{false};
    std::jthread thread;
  };

  void serve(const std::stop_token& stop_token);
  void handle_connection(int conn);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  Handler handler_;
  std::atomic<bool> stopping_{false};
  std::list<Connection> connections_;  ///< touched only by the accept loop
  std::jthread thread_;
};

/// One-shot client: connects to 127.0.0.1:`port`, sends `request`, reads to
/// EOF (the server closes), parses the response. Fails with a description on
/// connect/IO/parse errors.
[[nodiscard]] common::Expected<HttpResponse> http_call(std::uint16_t port,
                                                       const HttpRequest& request);

/// Incremental-delivery sink for http_stream: receives each decoded piece as
/// it arrives; return false to stop reading early (client-side cancel).
using StreamSink = std::function<bool(std::string_view)>;

/// Streaming client: like http_call, but delivers a chunked response body
/// incrementally through `on_data` as pieces arrive instead of buffering to
/// EOF. A non-chunked response (the daemon's 4xx errors) is read whole into
/// the returned HttpResponse without touching `on_data`; for a chunked one
/// the returned body is empty and `on_data` saw everything. Fails when no
/// bytes arrive for `idle_timeout_ms` (streams keepalive well under that) —
/// callers tailing a run reconnect from their last offset.
[[nodiscard]] common::Expected<HttpResponse> http_stream(std::uint16_t port,
                                                         const HttpRequest& request,
                                                         const StreamSink& on_data,
                                                         int idle_timeout_ms = 30000);

}  // namespace aimes::net
