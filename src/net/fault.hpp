// Deterministic fault injection for the control plane's wire.
//
// The simulation tiers have had a seeded adversary since PR 1 (sim::FaultPlan),
// but the daemon's sockets — the one layer with *real* I/O — did not. This
// shim sits between the HTTP layer and the socket calls in net/http.cpp and
// injects, with seeded per-operation decisions:
//
//   - short reads/writes  (a recv/send clamped to one byte: maximal framing
//                          tearing — every parser sees every possible split)
//   - stalled reads       (a bounded sleep before the recv, exercising the
//                          poll timeouts and the clients' reconnect paths)
//   - mid-stream resets   (the connection is torn down mid-operation; the
//                          fd is lingered at zero so the peer sees an abort,
//                          not a clean close)
//   - accept-time resets  (a just-accepted connection is reset before any
//                          byte is served)
//
// Decisions are a pure function of (seed, operation index), so a single-
// threaded test replays the exact same fault sequence every run; concurrent
// connections interleave operations nondeterministically but still draw from
// the same seeded stream, which keeps smoke runs reproducible in
// distribution. Install in-process for tests (install_net_faults) or via
// `aimesd --net-faults SPEC`; the shim is process-wide and off by default
// with one relaxed atomic load on the hot path.
#pragma once

#include <cstdint>
#include <string>

#include "common/expected.hpp"

namespace aimes::net {

/// One fault profile: per-operation probabilities plus the stall bound.
/// Spec string form (aimesd --net-faults): comma-separated key=value with
/// keys seed, short-read, short-write, read-stall, reset, accept-reset,
/// stall-ms — e.g. "seed=7,reset=0.1,short-read=0.25,short-write=0.25".
struct FaultSpec {
  std::uint64_t seed = 1;
  double short_read = 0.0;    ///< P(recv clamped to 1 byte)
  double short_write = 0.0;   ///< P(send clamped to 1 byte)
  double read_stall = 0.0;    ///< P(sleep stall_ms before the recv)
  double reset = 0.0;         ///< P(connection reset instead of the op)
  double accept_reset = 0.0;  ///< P(accepted connection reset immediately)
  int stall_ms = 50;          ///< stall duration (bounded well under IO timeouts)

  [[nodiscard]] bool any() const {
    return short_read > 0.0 || short_write > 0.0 || read_stall > 0.0 || reset > 0.0 ||
           accept_reset > 0.0;
  }
};

/// Parses the --net-faults spec string. Unknown keys and out-of-range values
/// are typed errors (a mistyped chaos knob must not silently run clean).
[[nodiscard]] common::Expected<FaultSpec> parse_fault_spec(const std::string& text);
[[nodiscard]] std::string to_string(const FaultSpec& spec);

/// Where the socket layer consults the shim.
enum class FaultPoint { kRead, kWrite, kAccept };

/// What the shim decided for one operation.
struct FaultDecision {
  bool reset = false;    ///< tear the connection down instead of the op
  bool short_op = false; ///< clamp the op to one byte
  int stall_ms = 0;      ///< sleep this long before the op
};

/// Installs `spec` process-wide (replacing any prior profile) and resets the
/// operation counter; a spec with no armed fault (any() == false) clears.
void install_net_faults(const FaultSpec& spec);
void clear_net_faults();
[[nodiscard]] bool net_faults_active();

/// Draws the next seeded decision for `point`. A no-op (all-false decision)
/// when no profile is installed.
[[nodiscard]] FaultDecision next_net_fault(FaultPoint point);

/// Operations consulted since install — tests pin determinism with it.
[[nodiscard]] std::uint64_t net_fault_ops();

}  // namespace aimes::net
