#include "sim/replica_pool.hpp"

namespace aimes::sim {

unsigned ReplicaPool::default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

ReplicaPool::ReplicaPool(unsigned jobs) {
  if (jobs == 0) jobs = default_jobs();
  if (jobs <= 1) return;  // serial mode: map() runs inline
  workers_.reserve(jobs);
  for (unsigned i = 0; i < jobs; ++i) {
    workers_.emplace_back([this](const std::stop_token& stop) { worker(stop); });
  }
}

ReplicaPool::~ReplicaPool() {
  for (auto& w : workers_) w.request_stop();
  work_cv_.notify_all();
  // jthread joins on destruction.
}

void ReplicaPool::run_batch(Batch& batch) {
  {
    const std::lock_guard lock(mu_);
    current_ = &batch;
    ++batch_seq_;
  }
  work_cv_.notify_all();
  // `batch` lives on this stack frame: wait until it is both unpublished
  // (last item done, so no worker can register anymore) and deregistered by
  // every worker that did (their final cursor probe is behind them).
  std::unique_lock lock(mu_);
  batch_done_cv_.wait(lock, [&] { return current_ == nullptr && batch.active == 0; });
  if (batch.error) std::rethrow_exception(batch.error);
}

void ReplicaPool::worker(const std::stop_token& stop) {
  std::uint64_t seen = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, stop,
                    [&] { return current_ != nullptr && batch_seq_ != seen; });
      if (stop.stop_requested()) return;
      batch = current_;
      seen = batch_seq_;
      ++batch->active;
    }
    for (;;) {
      const std::size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch->count) break;
      try {
        batch->run_item(i);
      } catch (...) {
        const std::lock_guard lock(mu_);
        if (!batch->error) batch->error = std::current_exception();
      }
      if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 == batch->count) {
        // Unpublish so no further worker registers; peers already inside the
        // claim loop drain via the cursor and deregister below.
        const std::lock_guard lock(mu_);
        current_ = nullptr;
      }
    }
    {
      const std::lock_guard lock(mu_);
      --batch->active;
    }
    batch_done_cv_.notify_all();
  }
}

}  // namespace aimes::sim
