#include "sim/engine.hpp"

namespace aimes::sim {

std::uint32_t Engine::prepare_event(SimTime when) {
  assert(when >= now_);
  const std::uint32_t slot = allocate_slot();
  seq_[slot] = next_seq_++;
  heap_push(HeapEntry{when.count_ms(), slot});
  return slot;
}

std::uint32_t Engine::slot_of(EventId id) const {
  const std::uint64_t v = id.value();
  const std::uint64_t index = (v & 0xffffffffull);
  if (index == 0 || index > slot_count_) return kNil;
  const auto slot = static_cast<std::uint32_t>(index - 1);
  // The generation bumps the moment a slot fires or is cancelled, so a
  // matching generation means the event is still pending.
  if (generation_[slot] != static_cast<std::uint32_t>(v >> 32)) return kNil;
  return slot;
}

void Engine::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNil) return;  // already fired, already cancelled, or never existed
  heap_remove(pos_[slot]);
  free_slot(slot);
}

std::uint32_t Engine::allocate_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t slot = free_head_;
    free_head_ = pos_[slot];
    return slot;
  }
  if (slot_count_ == pages_.size() * kPageSize) {
    pages_.push_back(std::make_unique<Callback[]>(kPageSize));
    generation_.resize(generation_.size() + kPageSize, 0);
    pos_.resize(pos_.size() + kPageSize, kNil);
    seq_.resize(seq_.size() + kPageSize, 0);
  }
  return slot_count_++;
}

void Engine::free_slot(std::uint32_t slot) {
  cb(slot).reset();
  ++generation_[slot];  // invalidate every outstanding id for this slot
  pos_[slot] = free_head_;
  free_head_ = slot;
}

void Engine::heap_push(HeapEntry entry) {
  heap_.push_back(entry);  // placeholder; sift_up writes the final position
  if (heap_.size() > peak_queued_) peak_queued_ = heap_.size();
  sift_up(static_cast<std::uint32_t>(heap_.size() - 1), entry);
}

void Engine::heap_remove(std::uint32_t pos) {
  assert(pos < heap_.size());
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail
  // `last` must re-settle from `pos`: it may need to move either direction.
  sift_up(pos, last);
  sift_down(pos_[last.slot], last);
}

void Engine::sift_up(std::uint32_t pos, HeapEntry entry) {
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 4;
    if (!before(entry, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos_[heap_[pos].slot] = pos;
    pos = parent;
  }
  heap_[pos] = entry;
  pos_[entry.slot] = pos;
}

void Engine::sift_down(std::uint32_t pos, HeapEntry entry) {
  const auto size = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    const std::uint32_t first_child = pos * 4 + 1;
    if (first_child >= size) break;
    std::uint32_t best = first_child;
    const std::uint32_t last_child = std::min(first_child + 3, size - 1);
    for (std::uint32_t c = first_child + 1; c <= last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], entry)) break;
    heap_[pos] = heap_[best];
    pos_[heap_[pos].slot] = pos;
    pos = best;
  }
  heap_[pos] = entry;
  pos_[entry.slot] = pos;
}

void Engine::pop_root() {
  // Bottom-up extraction: sink the root hole along minimum children all the
  // way to a leaf (no comparisons against the relocated entry), then bubble
  // the former tail up from there. The tail is near-maximal in a heap, so
  // the bubble-up almost always stops immediately — one comparison per
  // level saved versus a classic sift-down.
  const HeapEntry tail = heap_.back();
  heap_.pop_back();
  const auto size = static_cast<std::uint32_t>(heap_.size());
  if (size == 0) return;
  std::uint32_t pos = 0;
  for (;;) {
    const std::uint32_t first_child = pos * 4 + 1;
    if (first_child >= size) break;
    std::uint32_t best;
    if (first_child + 3 < size) {
      // Full child group: tournament min keeps the two half-comparisons
      // independent (shorter dependency chain than a linear scan).
      const std::uint32_t a =
          first_child + static_cast<std::uint32_t>(before(heap_[first_child + 1], heap_[first_child]));
      const std::uint32_t b =
          first_child + 2 +
          static_cast<std::uint32_t>(before(heap_[first_child + 3], heap_[first_child + 2]));
      best = before(heap_[b], heap_[a]) ? b : a;
    } else {
      best = first_child;
      for (std::uint32_t c = first_child + 1; c < size; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
    }
    heap_[pos] = heap_[best];
    pos_[heap_[pos].slot] = pos;
    pos = best;
  }
  sift_up(pos, tail);
}

bool Engine::fire_next() {
  if (heap_.empty()) return false;
  const std::uint32_t slot = heap_[0].slot;
  now_ = SimTime(heap_[0].when_ms);
  // Pull the callback record toward the core while the heap pop below does
  // its comparisons; the record was last touched at schedule time and is
  // usually out of L1 by now. (Pages never move, so the reference stays
  // valid across the pop.)
  Callback& callback = cb(slot);
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(&callback, 1, 3);
#endif
  // Retire the event *before* invoking: the callback may schedule or
  // cancel, and a stale id must already read as not-pending. The slot joins
  // the freelist only after the callback returns, so the closure runs in
  // place (pages never move) without being reusable mid-flight.
  pop_root();
  ++generation_[slot];
  ++executed_;
  callback.invoke_and_destroy();
  pos_[slot] = free_head_;
  free_head_ = slot;
  return true;
}

std::size_t Engine::run() {
  std::size_t n = 0;
  while (fire_next()) ++n;
  return n;
}

std::size_t Engine::run_until(SimTime until) {
  assert(until >= now_);
  std::size_t n = 0;
  while (!heap_.empty() && heap_[0].when_ms <= until.count_ms()) {
    fire_next();
    ++n;
  }
  now_ = until;
  return n;
}

}  // namespace aimes::sim
