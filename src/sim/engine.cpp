#include "sim/engine.hpp"

namespace aimes::sim {

EventId Engine::schedule(SimDuration delay, Callback fn) {
  assert(delay >= SimDuration::zero());
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Engine::schedule_at(SimTime when, Callback fn) {
  assert(when >= now_);
  assert(fn);
  const EventId id = ids_.next();
  queue_.push(Entry{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

void Engine::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return;  // already fired or never existed
  callbacks_.erase(it);
  cancelled_.insert(id);
}

bool Engine::pending(EventId id) const { return callbacks_.count(id) > 0; }

bool Engine::fire_next() {
  while (!queue_.empty()) {
    const Entry e = queue_.top();
    queue_.pop();
    auto cit = cancelled_.find(e.id);
    if (cit != cancelled_.end()) {
      cancelled_.erase(cit);
      continue;  // lazily dropped
    }
    auto it = callbacks_.find(e.id);
    assert(it != callbacks_.end());
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = e.when;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

std::size_t Engine::run() {
  std::size_t n = 0;
  while (fire_next()) ++n;
  return n;
}

std::size_t Engine::run_until(SimTime until) {
  assert(until >= now_);
  std::size_t n = 0;
  for (;;) {
    // Peek at the next live event.
    bool fired = false;
    while (!queue_.empty()) {
      const Entry& top = queue_.top();
      if (cancelled_.count(top.id)) {
        cancelled_.erase(top.id);
        queue_.pop();
        continue;
      }
      if (top.when > until) break;
      fire_next();
      fired = true;
      ++n;
      break;
    }
    if (!fired) break;
  }
  now_ = until;
  return n;
}

bool Engine::step() { return fire_next(); }

}  // namespace aimes::sim
