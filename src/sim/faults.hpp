// Whole-stack fault injection (the resource-dynamism side of §III.E).
//
// The paper motivates late binding with resource *dynamism* and claims that
// "tasks are automatically restarted in case of failure". The virtual
// laboratory therefore needs faults as first-class, reproducible events —
// not just per-unit compute failures, but the pilot- and infrastructure-
// level failures a production pilot system sees (RADICAL-Pilot's
// characterization treats pilot death and resubmission as ordinary
// lifecycle events):
//
//   * pilot launch failures  — the SAGA submit round-trip is rejected;
//   * pilot kills            — a pilot is terminated while ACTIVE
//                              (node crash, admin kill, allocation revoked);
//   * site outages           — a downtime window: running jobs are killed,
//                              the batch queue drains, submissions are
//                              rejected until the window ends;
//   * transfer failures      — an input/output staging operation fails.
//
// A FaultPlan is a pure value: an explicit list of fault events plus
// optional stochastic rates. A FaultInjector consumes a plan
// deterministically — explicit events match by occurrence index (the k-th
// pilot submission, the k-th activation, the k-th staged file), stochastic
// rates draw from a private RNG stream derived from the plan seed. The same
// (plan, seed) therefore yields the same faults, which is what makes chaos
// experiments comparable across strategies. An empty plan draws nothing and
// injects nothing: runs are bit-identical to a build without this module.
//
// Layering: this lives in sim/ (above common/, below everything else) so
// the cluster, net, saga and pilot layers can all consult one injector.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/expected.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace aimes::sim {

/// Classes of injectable faults.
enum class FaultKind {
  kPilotLaunchFailure,
  kPilotKill,
  kSiteOutage,
  kTransferFailure,
};

[[nodiscard]] constexpr std::string_view to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kPilotLaunchFailure: return "pilot-launch-failure";
    case FaultKind::kPilotKill: return "pilot-kill";
    case FaultKind::kSiteOutage: return "site-outage";
    case FaultKind::kTransferFailure: return "transfer-failure";
  }
  return "?";
}

/// One scheduled fault. Which fields are meaningful depends on `kind`:
///  * kPilotLaunchFailure — `index`: the k-th (0-based) middleware job
///    submission is rejected;
///  * kPilotKill — `index`: the k-th pilot activation; `after`: kill delay
///    measured from the moment the pilot became ACTIVE;
///  * kSiteOutage — `site` (site name), `start` (offset from world-ready,
///    i.e. after warmup), `duration` (downtime window length);
///  * kTransferFailure — `index`: the k-th staged file fails.
struct FaultSpec {
  FaultKind kind = FaultKind::kPilotKill;
  int index = -1;
  std::string site;
  common::SimDuration start = common::SimDuration::zero();
  common::SimDuration after = common::SimDuration::zero();
  common::SimDuration duration = common::SimDuration::zero();
};

/// Stochastic fault rates, applied on top of the explicit events. All
/// default to zero (disabled); sampling is deterministic per plan seed.
struct FaultRates {
  /// Probability that a middleware job submission is rejected.
  double pilot_launch_failure = 0.0;
  /// Probability that a pilot is killed after becoming ACTIVE.
  double pilot_kill = 0.0;
  /// Mean of the (exponential) delay between activation and injected kill.
  common::SimDuration pilot_kill_mean_delay = common::SimDuration::minutes(10);
  /// Probability that a staged file fails.
  double transfer_failure = 0.0;

  [[nodiscard]] bool any() const {
    return pilot_launch_failure > 0.0 || pilot_kill > 0.0 || transfer_failure > 0.0;
  }
};

/// A deterministic schedule of faults: explicit events plus optional rates.
class FaultPlan {
 public:
  /// Fluent builders for explicit events.
  FaultPlan& fail_pilot_launch(int submission_index);
  FaultPlan& kill_pilot(int activation_index, common::SimDuration after_active);
  FaultPlan& site_outage(std::string site, common::SimDuration start,
                         common::SimDuration duration);
  /// A flapping site: `count` outages of `duration` each, the k-th starting
  /// at `start + k * period` (period is start-to-start, so the site is up
  /// for `period - duration` between windows). Sugar over site_outage —
  /// the circuit-breaker chaos tests model a site that repeatedly dies and
  /// recovers. `period` must exceed `duration` and `count` be positive;
  /// degenerate arguments add nothing.
  FaultPlan& flap_site(std::string site, common::SimDuration start,
                       common::SimDuration duration, common::SimDuration period, int count);
  FaultPlan& fail_transfer(int transfer_index);
  FaultPlan& with_rates(FaultRates rates);

  [[nodiscard]] const std::vector<FaultSpec>& events() const { return events_; }
  [[nodiscard]] const FaultRates& rates() const { return rates_; }
  /// True when the plan injects nothing (no events, all rates zero).
  [[nodiscard]] bool empty() const { return events_.empty() && !rates_.any(); }

  /// Parses a plan from an INI config. Recognized sections (repeatable):
  ///
  ///   [fault.launch]   pilot = K
  ///   [fault.kill]     pilot = K        after_s = SECONDS
  ///   [fault.outage]   site = NAME      start_s = SECONDS   duration_s = SECONDS
  ///   [fault.flap]     site = NAME      start_s = SECONDS   duration_s = SECONDS
  ///                    period_s = SECONDS   count = N
  ///   [fault.transfer] index = K
  ///   [fault.rates]    pilot_launch_failure = P   pilot_kill = P
  ///                    pilot_kill_mean_delay_s = SECONDS    transfer_failure = P
  [[nodiscard]] static common::Expected<FaultPlan> parse(const common::Config& config);

 private:
  std::vector<FaultSpec> events_;
  FaultRates rates_;
};

/// Counts of faults actually injected (not merely planned).
struct FaultStats {
  std::size_t pilot_launch_failures = 0;
  std::size_t pilot_kills = 0;
  std::size_t site_outages = 0;
  std::size_t transfer_failures = 0;

  [[nodiscard]] std::size_t total() const {
    return pilot_launch_failures + pilot_kills + site_outages + transfer_failures;
  }
  /// Per-field difference (for per-run deltas on a shared injector).
  [[nodiscard]] FaultStats since(const FaultStats& baseline) const;
};

/// Consumes a FaultPlan at the stack's decision points. Each query advances
/// the corresponding occurrence counter, so call sites must query exactly
/// once per occurrence. With an empty plan every query is a cheap constant
/// and the private RNG is never drawn from.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, std::uint64_t seed = 0);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Consulted by the SAGA layer for each middleware job submission.
  [[nodiscard]] bool pilot_launch_should_fail();

  /// Consulted by the pilot layer at each pilot activation; a value means
  /// "kill this pilot that long after it became ACTIVE".
  [[nodiscard]] std::optional<common::SimDuration> pilot_kill_delay();

  /// Consulted by the staging layer for each staged file.
  [[nodiscard]] bool transfer_should_fail();

  /// The plan's outage windows (the world owner schedules them).
  [[nodiscard]] std::vector<FaultSpec> outages() const;
  /// Accounting hook: an outage window just began.
  void count_outage() { ++stats_.site_outages; }

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  common::Rng rng_;
  int submissions_seen_ = 0;
  int activations_seen_ = 0;
  int transfers_seen_ = 0;
  FaultStats stats_;
};

}  // namespace aimes::sim
