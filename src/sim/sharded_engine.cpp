#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <cassert>
#include <tuple>

namespace aimes::sim {

namespace {
std::size_t resolve_workers(std::size_t requested, std::size_t shards) {
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    requested = hw == 0 ? 1 : hw;
  }
  return std::max<std::size_t>(1, std::min(requested, shards));
}
}  // namespace

ShardedEngine::ShardedEngine(Options options)
    : lookahead_(options.lookahead),
      workers_(resolve_workers(options.workers, std::max<std::size_t>(1, options.shards))),
      barrier_(resolve_workers(options.workers, std::max<std::size_t>(1, options.shards))) {
  assert(options.lookahead > common::SimDuration::zero());
  const std::size_t n = std::max<std::size_t>(1, options.shards);
  engines_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) engines_.push_back(std::make_unique<Engine>());
  outboxes_.resize(n);
  stream_seq_.resize(n);
  // Workers 1..W-1 are spawned up front and park on the cv between run_*
  // batches; the caller's thread is worker 0.
  for (std::size_t w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ShardedEngine::~ShardedEngine() {
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
  }
  // jthread destructors join.
}

void ShardedEngine::post(std::size_t src, std::size_t dst, std::uint64_t stream,
                         common::SimTime when, std::function<void()> fn) {
  assert(src < engines_.size() && dst < engines_.size());
  // The conservative contract: a message never needs to be delivered inside
  // the window it was posted from. Violating this would make results depend
  // on shard packing (the message would be drained one barrier late).
  assert(when >= engines_[src]->now() + lookahead_);
  const std::uint64_t seq = stream_seq_[src][stream]++;
  outboxes_[src].push_back(Mail{when.count_ms(), stream, seq, dst, std::move(fn)});
}

common::SimTime ShardedEngine::global_next() const {
  common::SimTime next = common::SimTime::max();
  for (const auto& engine : engines_) next = std::min(next, engine->next_when());
  return next;
}

void ShardedEngine::drain_mailboxes() {
  drain_scratch_.clear();
  for (auto& box : outboxes_) {
    for (auto& mail : box) drain_scratch_.push_back(std::move(mail));
    box.clear();
  }
  if (drain_scratch_.empty()) return;
  posted_ += drain_scratch_.size();
  // (when, stream, seq) is a total order independent of which shard a group
  // landed on: stream ids are globally unique entity ids and seq counts that
  // entity's own posts. Source-shard index deliberately does not appear.
  std::sort(drain_scratch_.begin(), drain_scratch_.end(), [](const Mail& a, const Mail& b) {
    return std::tie(a.when_ms, a.stream, a.seq) < std::tie(b.when_ms, b.stream, b.seq);
  });
  for (auto& mail : drain_scratch_) {
    const common::SimTime when(mail.when_ms);
    assert(when >= engines_[mail.dst]->now());
    engines_[mail.dst]->schedule_at(when, [fn = std::move(mail.fn)] { fn(); });
  }
  drain_scratch_.clear();
}

void ShardedEngine::run_my_engines(std::size_t worker, std::int64_t until_ms) {
  const common::SimTime until(until_ms);
  for (std::size_t i = worker; i < engines_.size(); i += workers_) {
    engines_[i]->run_until(until);
  }
}

void ShardedEngine::run_window(common::SimTime window_end) {
  if (workers_ <= 1) {
    run_my_engines(0, window_end.count_ms());
  } else {
    window_end_ms_ = window_end.count_ms();
    barrier_.arrive_and_wait();  // start: publishes window_end_ms_ to workers
    run_my_engines(0, window_end_ms_);
    barrier_.arrive_and_wait();  // end: hands engines back to the coordinator
  }
  now_ = window_end;
  ++windows_;
}

void ShardedEngine::start_batch() {
  if (workers_ <= 1) return;
  assert(!batch_active_ && "run_* calls do not nest");
  batch_active_ = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++batch_seq_;
  }
  cv_.notify_all();
}

void ShardedEngine::end_batch() {
  if (workers_ <= 1) return;
  window_end_ms_ = kParkBatch;
  barrier_.arrive_and_wait();  // workers observe the sentinel and park
  // Wait until every worker has *actually* parked. Without this handshake a
  // worker still inside the park barrier's spin could have its sentinel read
  // overwritten by the next batch's first window horizon — it would then
  // skip parking and the barrier protocol would desynchronize by one
  // arrival (observed as a shutdown deadlock). The coordinator may not
  // reuse window_end_ms_ until all reads of the sentinel have happened.
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return parked_ == workers_ - 1; });
  parked_ = 0;
  batch_active_ = false;
}

std::uint64_t ShardedEngine::run_until(common::SimTime until) {
  assert(until >= now_);
  const std::uint64_t before = executed();
  start_batch();
  for (;;) {
    drain_mailboxes();
    const common::SimTime next = global_next();
    if (next > until) break;
    // Overflow-safe min(until, next + lookahead): windows stretch across
    // idle stretches because the bound hangs off the *next* event.
    const common::SimTime window_end =
        (until - next > lookahead_) ? next + lookahead_ : until;
    run_window(window_end);
  }
  if (until > now_) run_window(until);  // advance clocks even when idle
  end_batch();
  return executed() - before;
}

std::uint64_t ShardedEngine::run() {
  const std::uint64_t before = executed();
  start_batch();
  for (;;) {
    drain_mailboxes();
    const common::SimTime next = global_next();
    if (next == common::SimTime::max()) break;  // outboxes drained above
    run_window(next + lookahead_);
  }
  end_batch();
  return executed() - before;
}

bool ShardedEngine::run_while(const std::function<bool()>& keep_going) {
  start_batch();
  bool have_events = true;
  while (keep_going()) {
    drain_mailboxes();
    const common::SimTime next = global_next();
    if (next == common::SimTime::max()) {
      have_events = false;
      break;
    }
    run_window(next + lookahead_);
  }
  end_batch();
  return have_events;
}

std::uint64_t ShardedEngine::executed() const {
  std::uint64_t total = 0;
  for (const auto& engine : engines_) total += engine->executed();
  return total;
}

std::size_t ShardedEngine::peak_queued() const {
  std::size_t total = 0;
  for (const auto& engine : engines_) total += engine->peak_queued();
  return total;
}

void ShardedEngine::worker_main(std::size_t worker) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return stopping_ || batch_seq_ != seen; });
    if (stopping_) return;
    seen = batch_seq_;
    lock.unlock();
    for (;;) {
      barrier_.arrive_and_wait();  // window start (or park signal)
      // Plain read is safe: the coordinator wrote it before arriving, the
      // barrier's atomics order that write before this read, and end_batch's
      // parked_ handshake keeps the slot stable until this read happened.
      const std::int64_t until_ms = window_end_ms_;
      if (until_ms == kParkBatch) break;
      run_my_engines(worker, until_ms);
      barrier_.arrive_and_wait();  // window end
    }
    lock.lock();
    ++parked_;
    cv_.notify_all();  // wakes the coordinator's end_batch handshake
  }
}

void ShardedEngine::Barrier::arrive_and_wait() {
  const std::uint64_t phase = phase_.load(std::memory_order_relaxed);
  if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    count_.store(0, std::memory_order_relaxed);
    phase_.store(phase + 1, std::memory_order_release);
  } else {
    // Spin briefly (windows are microseconds apart when the world is busy),
    // then yield so oversubscribed boxes — more workers than cores — still
    // make progress instead of burning the quantum.
    int spins = 0;
    while (phase_.load(std::memory_order_acquire) == phase) {
      if (++spins > 128) std::this_thread::yield();
    }
  }
}

}  // namespace aimes::sim
