#include "sim/faults.hpp"

#include <algorithm>
#include <utility>

namespace aimes::sim {

FaultPlan& FaultPlan::fail_pilot_launch(int submission_index) {
  FaultSpec spec;
  spec.kind = FaultKind::kPilotLaunchFailure;
  spec.index = submission_index;
  events_.push_back(std::move(spec));
  return *this;
}

FaultPlan& FaultPlan::kill_pilot(int activation_index, common::SimDuration after_active) {
  FaultSpec spec;
  spec.kind = FaultKind::kPilotKill;
  spec.index = activation_index;
  spec.after = after_active;
  events_.push_back(std::move(spec));
  return *this;
}

FaultPlan& FaultPlan::site_outage(std::string site, common::SimDuration start,
                                  common::SimDuration duration) {
  FaultSpec spec;
  spec.kind = FaultKind::kSiteOutage;
  spec.site = std::move(site);
  spec.start = start;
  spec.duration = duration;
  events_.push_back(std::move(spec));
  return *this;
}

FaultPlan& FaultPlan::flap_site(std::string site, common::SimDuration start,
                                common::SimDuration duration, common::SimDuration period,
                                int count) {
  if (count <= 0 || duration <= common::SimDuration::zero() || period <= duration) {
    return *this;
  }
  for (int k = 0; k < count; ++k) {
    site_outage(site, start + period * static_cast<double>(k), duration);
  }
  return *this;
}

FaultPlan& FaultPlan::fail_transfer(int transfer_index) {
  FaultSpec spec;
  spec.kind = FaultKind::kTransferFailure;
  spec.index = transfer_index;
  events_.push_back(std::move(spec));
  return *this;
}

FaultPlan& FaultPlan::with_rates(FaultRates rates) {
  rates_ = rates;
  return *this;
}

namespace {

// Section names may carry a disambiguating suffix ("fault.kill.2") since INI
// sections with identical names would otherwise collide in hand-written files.
[[nodiscard]] bool section_is(const std::string& name, std::string_view base) {
  if (name == base) return true;
  return name.size() > base.size() && name.compare(0, base.size(), base) == 0 &&
         name[base.size()] == '.';
}

}  // namespace

common::Expected<FaultPlan> FaultPlan::parse(const common::Config& config) {
  FaultPlan plan;
  for (const auto* section : config.sections_with_prefix("fault.")) {
    const std::string& name = section->name();
    if (section_is(name, "fault.launch")) {
      auto pilot = section->get_int("pilot");
      if (!pilot.ok()) return common::Expected<FaultPlan>::error("[" + name + "]: " + pilot.error());
      plan.fail_pilot_launch(static_cast<int>(*pilot));
    } else if (section_is(name, "fault.kill")) {
      auto pilot = section->get_int("pilot");
      if (!pilot.ok()) return common::Expected<FaultPlan>::error("[" + name + "]: " + pilot.error());
      plan.kill_pilot(static_cast<int>(*pilot),
                      common::SimDuration::seconds(section->get_double_or("after_s", 0.0)));
    } else if (section_is(name, "fault.outage")) {
      auto site = section->get("site");
      if (!site.ok()) return common::Expected<FaultPlan>::error("[" + name + "]: " + site.error());
      auto duration = section->get_double("duration_s");
      if (!duration.ok()) {
        return common::Expected<FaultPlan>::error("[" + name + "]: " + duration.error());
      }
      plan.site_outage(*site, common::SimDuration::seconds(section->get_double_or("start_s", 0.0)),
                       common::SimDuration::seconds(*duration));
    } else if (section_is(name, "fault.flap")) {
      auto site = section->get("site");
      if (!site.ok()) return common::Expected<FaultPlan>::error("[" + name + "]: " + site.error());
      auto duration = section->get_double("duration_s");
      if (!duration.ok()) {
        return common::Expected<FaultPlan>::error("[" + name + "]: " + duration.error());
      }
      auto period = section->get_double("period_s");
      if (!period.ok()) {
        return common::Expected<FaultPlan>::error("[" + name + "]: " + period.error());
      }
      auto count = section->get_int("count");
      if (!count.ok()) return common::Expected<FaultPlan>::error("[" + name + "]: " + count.error());
      if (*period <= *duration || *count <= 0) {
        return common::Expected<FaultPlan>::error(
            "[" + name + "]: need period_s > duration_s and count > 0");
      }
      plan.flap_site(*site, common::SimDuration::seconds(section->get_double_or("start_s", 0.0)),
                     common::SimDuration::seconds(*duration),
                     common::SimDuration::seconds(*period), static_cast<int>(*count));
    } else if (section_is(name, "fault.transfer")) {
      auto index = section->get_int("index");
      if (!index.ok()) return common::Expected<FaultPlan>::error("[" + name + "]: " + index.error());
      plan.fail_transfer(static_cast<int>(*index));
    } else if (section_is(name, "fault.rates")) {
      FaultRates rates = plan.rates_;
      rates.pilot_launch_failure =
          section->get_double_or("pilot_launch_failure", rates.pilot_launch_failure);
      rates.pilot_kill = section->get_double_or("pilot_kill", rates.pilot_kill);
      rates.pilot_kill_mean_delay = common::SimDuration::seconds(section->get_double_or(
          "pilot_kill_mean_delay_s", rates.pilot_kill_mean_delay.to_seconds()));
      rates.transfer_failure = section->get_double_or("transfer_failure", rates.transfer_failure);
      for (double p : {rates.pilot_launch_failure, rates.pilot_kill, rates.transfer_failure}) {
        if (p < 0.0 || p > 1.0) {
          return common::Expected<FaultPlan>::error("[" + name +
                                                    "]: probabilities must be in [0, 1]");
        }
      }
      plan.with_rates(rates);
    } else {
      return common::Expected<FaultPlan>::error("unknown fault section [" + name + "]");
    }
  }
  return plan;
}

FaultStats FaultStats::since(const FaultStats& baseline) const {
  FaultStats delta;
  delta.pilot_launch_failures = pilot_launch_failures - baseline.pilot_launch_failures;
  delta.pilot_kills = pilot_kills - baseline.pilot_kills;
  delta.site_outages = site_outages - baseline.site_outages;
  delta.transfer_failures = transfer_failures - baseline.transfer_failures;
  return delta;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), rng_(common::Rng::stream(seed, "faults")) {}

bool FaultInjector::pilot_launch_should_fail() {
  const int index = submissions_seen_++;
  bool fail = std::any_of(plan_.events().begin(), plan_.events().end(), [&](const FaultSpec& e) {
    return e.kind == FaultKind::kPilotLaunchFailure && e.index == index;
  });
  if (!fail && plan_.rates().pilot_launch_failure > 0.0) {
    fail = rng_.bernoulli(plan_.rates().pilot_launch_failure);
  }
  if (fail) ++stats_.pilot_launch_failures;
  return fail;
}

std::optional<common::SimDuration> FaultInjector::pilot_kill_delay() {
  const int index = activations_seen_++;
  const auto& events = plan_.events();
  auto it = std::find_if(events.begin(), events.end(), [&](const FaultSpec& e) {
    return e.kind == FaultKind::kPilotKill && e.index == index;
  });
  if (it != events.end()) {
    ++stats_.pilot_kills;
    return it->after;
  }
  if (plan_.rates().pilot_kill > 0.0 && rng_.bernoulli(plan_.rates().pilot_kill)) {
    ++stats_.pilot_kills;
    return common::SimDuration::seconds(
        rng_.exponential(plan_.rates().pilot_kill_mean_delay.to_seconds()));
  }
  return std::nullopt;
}

bool FaultInjector::transfer_should_fail() {
  const int index = transfers_seen_++;
  bool fail = std::any_of(plan_.events().begin(), plan_.events().end(), [&](const FaultSpec& e) {
    return e.kind == FaultKind::kTransferFailure && e.index == index;
  });
  if (!fail && plan_.rates().transfer_failure > 0.0) {
    fail = rng_.bernoulli(plan_.rates().transfer_failure);
  }
  if (fail) ++stats_.transfer_failures;
  return fail;
}

std::vector<FaultSpec> FaultInjector::outages() const {
  std::vector<FaultSpec> result;
  for (const FaultSpec& e : plan_.events()) {
    if (e.kind == FaultKind::kSiteOutage) result.push_back(e);
  }
  return result;
}

}  // namespace aimes::sim
