// Parallel runner for independent simulation replicas.
//
// The engine's determinism contract makes every replica a pure function of
// (configuration, seed): no replica reads another's state, wall clock, or
// shared RNG. That purity is what the experiment harnesses exploit here —
// trials fan out across a pool of worker threads, each running its own
// Engine-backed world, and the results come back *in submission order*
// regardless of completion order. Aggregating those results serially is
// therefore bit-identical to the legacy one-trial-at-a-time loop, which the
// determinism tests assert across worker counts.
//
// One engine is never shared between threads; parallelism lives strictly
// above the per-replica simulation ("single-threaded per replica").
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace aimes::sim {

/// A fixed pool of worker threads that maps an index range through a
/// replica-producing function, returning results in index order.
class ReplicaPool {
 public:
  /// `jobs` = number of worker threads; 0 picks the hardware concurrency.
  /// With `jobs <= 1` no threads are spawned and `map()` runs inline on the
  /// caller's thread — the legacy serial path, byte-for-byte.
  explicit ReplicaPool(unsigned jobs = 0);
  ~ReplicaPool();

  ReplicaPool(const ReplicaPool&) = delete;
  ReplicaPool& operator=(const ReplicaPool&) = delete;

  /// Worker threads actually running (0 = serial mode).
  [[nodiscard]] unsigned jobs() const {
    return workers_.empty() ? 1u : static_cast<unsigned>(workers_.size());
  }

  /// `max(1, hardware_concurrency)` — the `--jobs` default.
  [[nodiscard]] static unsigned default_jobs();

  /// Runs `fn(0) ... fn(count-1)` across the pool and returns the results
  /// ordered by index. `fn` must be safe to call concurrently from several
  /// threads with distinct indices (true for anything that builds its own
  /// world per call). Exceptions from `fn` are rethrown here, first one
  /// wins. Blocks until the whole batch is done; one batch runs at a time.
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> map(std::size_t count, Fn fn) {
    std::vector<T> out;
    out.reserve(count);
    if (workers_.empty() || count <= 1) {
      for (std::size_t i = 0; i < count; ++i) out.push_back(fn(i));
      return out;
    }
    std::vector<std::optional<T>> slots(count);
    Batch batch;
    batch.count = count;
    batch.run_item = [&](std::size_t i) { slots[i].emplace(fn(i)); };
    run_batch(batch);
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

 private:
  // One map() call in flight: workers claim indices with an atomic cursor.
  // Lifetime: a Batch lives on the submitter's stack, so run_batch() may only
  // return once no worker can touch it again — workers register under the
  // pool mutex (`active`), the one finishing the last item unpublishes
  // `current_` (no new registrations), and each registered worker deregisters
  // after its final cursor probe. The submitter waits for active == 0.
  struct Batch {
    std::function<void(std::size_t)> run_item;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    unsigned active = 0;       // workers inside the claim loop; guarded by mu_
    std::exception_ptr error;  // first failure; guarded by the pool mutex
  };

  void run_batch(Batch& batch);
  void worker(const std::stop_token& stop);

  std::mutex mu_;
  std::condition_variable_any work_cv_;   // workers: a new batch is up
  std::condition_variable batch_done_cv_;  // submitter: batch finished
  Batch* current_ = nullptr;   // guarded by mu_
  std::uint64_t batch_seq_ = 0;  // guarded by mu_; lets workers skip stale batches
  std::vector<std::jthread> workers_;
};

}  // namespace aimes::sim
