// Discrete-event simulation engine.
//
// Everything dynamic in this reproduction — batch queues, background
// workload, file transfers, pilot agents, the AIMES middleware itself — runs
// as events on this engine's virtual clock. The paper gathered data "over a
// year" on production machines; virtual time compresses that to seconds while
// keeping run-to-run variability under seed control.
//
// Determinism contract:
//  * single-threaded execution *per engine* (one engine = one replica; a
//    sim::ReplicaPool may run many engines on parallel threads, but no two
//    threads ever touch the same engine);
//  * events at equal timestamps fire in scheduling order (a monotonic
//    sequence number breaks ties);
//  * no wall-clock or address-dependent ordering anywhere.
// Under this contract a simulation is a pure function of (configuration,
// seed), which the reproducibility tests assert.
//
// Storage: events live in a generation-tagged slab (free slots recycled via
// a freelist), with the callback held inline in the record through
// InlineCallback — no per-event heap allocation for ordinary captures, no
// hash-table lookups on the hot path. Ordering is a 4-ary min-heap of slot
// indices keyed by (when, seq); each slot knows its heap position, so
// cancel() removes in O(log n) with no tombstones and queued() is exact.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/id.hpp"
#include "common/time.hpp"
#include "sim/inline_callback.hpp"

namespace aimes::sim {

using common::EventId;
using common::SimDuration;
using common::SimTime;

/// The event queue and virtual clock.
class Engine {
 public:
  using Callback = InlineCallback;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run after `delay` (>= 0). Returns an id usable with
  /// `cancel()`. The closure is constructed directly into its slab slot —
  /// no intermediate std::function, no per-event heap allocation for
  /// captures up to InlineCallback::kInlineSize bytes.
  template <typename F>
  EventId schedule(SimDuration delay, F&& fn) {
    assert(delay >= SimDuration::zero());
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules `fn` at absolute time `when` (>= now()).
  template <typename F>
  EventId schedule_at(SimTime when, F&& fn) {
    const std::uint32_t slot = prepare_event(when);
    cb(slot).emplace(std::forward<F>(fn));
    return encode(slot, generation_[slot]);
  }

  /// Cancels a pending event in O(log n). Cancelling an already-fired,
  /// already-cancelled or unknown id is a harmless no-op (the slot's
  /// generation tag rejects stale ids, even after the slot is reused).
  void cancel(EventId id);

  /// True if an event with this id is still pending.
  [[nodiscard]] bool pending(EventId id) const { return slot_of(id) != kNil; }

  /// Runs events until the queue is empty. Returns the number of events run.
  std::size_t run();

  /// Runs events with timestamp <= `until`, then advances the clock to
  /// `until` (even if idle). Returns the number of events run.
  std::size_t run_until(SimTime until);

  /// Runs at most one event; returns false if the queue was empty.
  bool step() { return fire_next(); }

  /// Number of events waiting. Exact: cancelled events leave the heap
  /// immediately, so there is no tombstone slack to misreport.
  [[nodiscard]] std::size_t queued() const { return heap_.size(); }

  /// Timestamp of the earliest pending event, or SimTime::max() when idle.
  /// The ShardedEngine coordinator reads this between windows to derive the
  /// next conservative synchronization horizon.
  [[nodiscard]] SimTime next_when() const {
    return heap_.empty() ? SimTime::max() : SimTime(heap_.front().when_ms);
  }

  /// Total events executed since construction (for the substrate benches).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// High-water mark of queued() over the engine's lifetime — the heap's
  /// peak footprint, surfaced in the observability engine stats.
  [[nodiscard]] std::size_t peak_queued() const { return peak_queued_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  // Heap entries are 16 bytes so a full 4-child group spans a single cache
  // line. The timestamp (the primary key) is carried inline; the tie-break
  // sequence number lives in a dense side array consulted only when two
  // timestamps collide.
  struct HeapEntry {
    std::int64_t when_ms;
    std::uint32_t slot;
  };

  // An EventId packs (generation << 32) | (slot index + 1); the +1 keeps the
  // reserved invalid id 0 unreachable.
  static EventId encode(std::uint32_t slot, std::uint32_t generation) {
    return EventId((static_cast<std::uint64_t>(generation) << 32) |
                   (static_cast<std::uint64_t>(slot) + 1));
  }

  /// Slot index of a live event id, or kNil if stale/unknown.
  [[nodiscard]] std::uint32_t slot_of(EventId id) const;

  [[nodiscard]] bool before(const HeapEntry& a, const HeapEntry& b) const {
    if (a.when_ms != b.when_ms) return a.when_ms < b.when_ms;
    return seq_[a.slot] < seq_[b.slot];
  }

  /// Allocates a slot and queues it at `when`; the caller fills the callback.
  std::uint32_t prepare_event(SimTime when);

  std::uint32_t allocate_slot();
  void free_slot(std::uint32_t slot);
  void heap_push(HeapEntry entry);
  void heap_remove(std::uint32_t pos);
  void pop_root();
  void sift_up(std::uint32_t pos, HeapEntry entry);
  void sift_down(std::uint32_t pos, HeapEntry entry);
  bool fire_next();

  // Callback records live in fixed-size pages with stable addresses, so
  // growing the slab never relocates a callback (relocation would cost an
  // indirect call per stored closure on every doubling).
  static constexpr std::uint32_t kPageBits = 8;
  static constexpr std::uint32_t kPageSize = 1u << kPageBits;
  static constexpr std::uint32_t kPageMask = kPageSize - 1;

  [[nodiscard]] Callback& cb(std::uint32_t slot) {
    return pages_[slot >> kPageBits][slot & kPageMask];
  }

  SimTime now_ = SimTime::epoch();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t peak_queued_ = 0;
  // The slab, as parallel arrays: the sift loops only touch pos_ (dense
  // 4-byte entries, cache-resident even for huge queues), never the fat
  // callback records.
  std::vector<std::unique_ptr<Callback[]>> pages_;
  std::uint32_t slot_count_ = 0;
  std::vector<std::uint32_t> generation_;  // bumped on free; stale ids never match
  std::vector<std::uint32_t> pos_;  // live slot: heap position; free slot: next free
  std::vector<std::uint64_t> seq_;  // scheduling order, the (when, seq) tie-break
  std::vector<HeapEntry> heap_;     // 4-ary min-heap by (when, seq)
  std::uint32_t free_head_ = kNil;
};

}  // namespace aimes::sim
