// Discrete-event simulation engine.
//
// Everything dynamic in this reproduction — batch queues, background
// workload, file transfers, pilot agents, the AIMES middleware itself — runs
// as events on this engine's virtual clock. The paper gathered data "over a
// year" on production machines; virtual time compresses that to seconds while
// keeping run-to-run variability under seed control.
//
// Determinism contract:
//  * single-threaded execution;
//  * events at equal timestamps fire in scheduling order (a monotonic
//    sequence number breaks ties);
//  * no wall-clock or address-dependent ordering anywhere.
// Under this contract a simulation is a pure function of (configuration,
// seed), which the reproducibility tests assert.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/id.hpp"
#include "common/time.hpp"

namespace aimes::sim {

using common::EventId;
using common::SimDuration;
using common::SimTime;

/// The event queue and virtual clock.
class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run after `delay` (>= 0). Returns an id usable with
  /// `cancel()`.
  EventId schedule(SimDuration delay, Callback fn);

  /// Schedules `fn` at absolute time `when` (>= now()).
  EventId schedule_at(SimTime when, Callback fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op (lazy deletion).
  void cancel(EventId id);

  /// True if an event with this id is still pending.
  [[nodiscard]] bool pending(EventId id) const;

  /// Runs events until the queue is empty. Returns the number of events run.
  std::size_t run();

  /// Runs events with timestamp <= `until`, then advances the clock to
  /// `until` (even if idle). Returns the number of events run.
  std::size_t run_until(SimTime until);

  /// Runs at most one event; returns false if the queue was empty.
  bool step();

  /// Number of events waiting (including lazily-cancelled ones).
  [[nodiscard]] std::size_t queued() const { return queue_.size() - cancelled_.size(); }

  /// Total events executed since construction (for the substrate benches).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    EventId id;
    // Ordered as a max-heap by std::priority_queue, so "greater" = later.
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  bool fire_next();

  SimTime now_ = SimTime::epoch();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  common::IdGen<common::EventTag> ids_;
  std::priority_queue<Entry> queue_;
  // Callbacks keyed by event id; erased on fire/cancel.
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace aimes::sim
