// Small-buffer callable wrapper for the event slab.
//
// The engine's hot loop schedules and fires millions of closures; storing
// them as std::function costs a heap allocation per event for any capture
// larger than the (tiny, implementation-defined) SSO buffer. InlineCallback
// embeds captures of up to kInlineSize bytes directly in the event record —
// which covers every closure the middleware schedules today — and falls
// back to the heap only for larger or throwing-move captures.
//
// Move-only by design: an event callback has exactly one owner (its slab
// slot) until it fires, at which point it is moved out and invoked once.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace aimes::sim {

class InlineCallback {
 public:
  /// Captures up to this size (and max_align_t alignment) stay inline.
  /// 40 keeps sizeof(InlineCallback) at 48 — below a cache line, so the
  /// event slab's per-record traffic stays small — while still covering
  /// every closure the middleware schedules on its hot paths today
  /// (`[this]`, `[this, id]`, `[this, next]`-style captures).
  static constexpr std::size_t kInlineSize = 40;

  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor): callable adaptor
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &heap_ops<Fn>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// True if the stored callable lives in the inline buffer (no heap).
  [[nodiscard]] bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

  void operator()() { ops_->invoke(buf_); }

  /// Constructs a callable directly in this wrapper's storage, destroying any
  /// previous occupant. Cheaper than assignment on the engine's hot path: the
  /// closure is built in place instead of built, moved and destroyed.
  template <typename F>
  void emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    reset();
    if constexpr (std::is_same_v<Fn, InlineCallback>) {
      *this = std::forward<F>(fn);
    } else if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &heap_ops<Fn>;
    }
  }

  /// Invokes the callable and destroys it, in one indirect call. The storage
  /// must stay valid (and unreused) until this returns; the callable may
  /// freely emplace into *other* wrappers while running.
  void invoke_and_destroy() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke_destroy(buf_);
  }

  void reset() {
    if (ops_) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    // Move-constructs *src into dst storage and destroys *src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self);
    void (*invoke_destroy)(void* self);
    bool inline_storage;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    // Relocation must be noexcept so the slab's vector can grow by moving.
    return sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* self) { (*std::launder(reinterpret_cast<Fn*>(self)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* self) { std::launder(reinterpret_cast<Fn*>(self))->~Fn(); },
      [](void* self) {
        Fn* fn = std::launder(reinterpret_cast<Fn*>(self));
        (*fn)();
        fn->~Fn();
      },
      true,
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* self) { (**std::launder(reinterpret_cast<Fn**>(self)))(); },
      [](void* dst, void* src) noexcept {
        // Pointers are trivially destructible; just copy the owner over.
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* self) { delete *std::launder(reinterpret_cast<Fn**>(self)); },
      [](void* self) {
        Fn* fn = *std::launder(reinterpret_cast<Fn**>(self));
        (*fn)();
        delete fn;
      },
      false,
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace aimes::sim
