// Conservative parallel DES: N sim::Engine shards in lock-step windows.
//
// ReplicaPool parallelizes *across* trials; this coordinator parallelizes
// *inside* one trial. The world is partitioned into shard-affine groups
// (a site plus its background workload, the middleware-and-origin group,
// ...), each living on its own sim::Engine. Groups on different shards never
// touch each other's state directly — every cross-group interaction is a
// *message*: `post(src, dst, stream, when, fn)` appends to the source
// shard's outbox, and the coordinator drains all outboxes into the
// destination engines only at window barriers.
//
// The conservative window comes from the paper's own structure: sites
// interact only through WAN transfers whose modeled latency is at least
// `lookahead` (derived from net::Topology::min_latency()). A message posted
// while executing a window therefore never has to be delivered inside that
// window, so each shard can run a whole window without observing the others:
//
//   window_end = min(until, min over shards of next_when()) + lookahead
//
// Windows stretch while the world is idle (the bound is relative to the
// *next* event, not to the previous barrier), so barrier count scales with
// event density, not with horizon / lookahead.
//
// Determinism contract (the partitioned version of Engine's):
//  * Mailboxes are drained in (when, stream, stream_seq) order — `stream`
//    is the posting entity's stable id and `stream_seq` a per-(shard,stream)
//    counter — which is a total order independent of how groups are packed
//    onto shards. The barrier schedule itself depends only on the union of
//    pending event times, which is also packing-independent. Hence
//    aggregates, trace checksums, and obs spans are bit-identical across
//    shard counts, including shards == 1 (asserted by the differential
//    tests and the sharded substrate bench).
//  * One engine is only ever touched by one thread at a time: workers own
//    engines inside a window (static round-robin assignment), the
//    coordinator alone touches them between barriers. Handoffs synchronize
//    through the barrier's atomics (TSan-clean under `ctest -L sanitize`).
//  * Logical shards are decoupled from OS threads: `--shards 8` on a
//    single-core box still simulates 8 shards (same digests), just on
//    fewer workers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "sim/engine.hpp"

namespace aimes::sim {

class ShardedEngine {
 public:
  struct Options {
    /// Number of logical shards (>= 1). Determinism is per shard count;
    /// 1 shard is the windowed single-engine baseline.
    std::size_t shards = 1;
    /// Conservative lookahead: every cross-shard post must be delivered at
    /// least this far after the poster's clock. Derive from
    /// net::Topology::min_latency() for transfer-coupled worlds.
    common::SimDuration lookahead = common::SimDuration::millis(25);
    /// Worker threads driving the shards (0 = min(shards, hardware)).
    /// Purely a throughput knob: it never affects simulation results.
    std::size_t workers = 0;
  };

  explicit ShardedEngine(Options options);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;
  ~ShardedEngine();

  [[nodiscard]] std::size_t shards() const { return engines_.size(); }
  [[nodiscard]] Engine& shard(std::size_t i) { return *engines_[i]; }
  [[nodiscard]] const Engine& shard(std::size_t i) const { return *engines_[i]; }
  [[nodiscard]] common::SimDuration lookahead() const { return lookahead_; }
  /// Actual worker-thread count (1 = everything runs inline on the caller).
  [[nodiscard]] std::size_t workers() const { return workers_; }

  /// Barrier-synchronized virtual time: every shard's clock agrees with this
  /// between run_* calls (clocks are advanced in lock-step windows).
  [[nodiscard]] common::SimTime now() const { return now_; }

  /// Queues a cross-shard message. Callable from world setup (before any
  /// run_* call) or from an event executing on shard `src`; never from an
  /// event on a different shard. `stream` must be a stable id of the posting
  /// entity (site id value, 0 for the origin/control group): together with
  /// the per-(src, stream) sequence number it fixes the delivery order of
  /// same-timestamp messages regardless of shard packing. `when` must be at
  /// least lookahead past the source shard's clock — model the WAN latency
  /// of the interaction into it.
  void post(std::size_t src, std::size_t dst, std::uint64_t stream, common::SimTime when,
            std::function<void()> fn);

  /// Runs all shards to `until` in conservative windows (clocks advance to
  /// `until` even when idle, like Engine::run_until). Returns events run.
  std::uint64_t run_until(common::SimTime until);

  /// Runs until every shard's queue and every mailbox is empty. Returns the
  /// number of events run.
  std::uint64_t run();

  /// Runs windows while `keep_going()` returns true (checked between
  /// windows, on the caller's thread, with all shards quiescent). Stops
  /// early when the world runs out of events; returns false in that case.
  bool run_while(const std::function<bool()>& keep_going);

  /// Total events executed across all shards.
  [[nodiscard]] std::uint64_t executed() const;
  /// Peak queued() summed over shards (an upper bound of the true global
  /// peak; per-shard peaks need not be simultaneous).
  [[nodiscard]] std::size_t peak_queued() const;
  /// Windows run so far (two barriers each when threaded).
  [[nodiscard]] std::uint64_t windows() const { return windows_; }
  /// Cross-shard messages posted so far.
  [[nodiscard]] std::uint64_t posted() const { return posted_; }

 private:
  struct Mail {
    std::int64_t when_ms;
    std::uint64_t stream;
    std::uint64_t seq;
    std::size_t dst;
    std::function<void()> fn;
  };

  /// Sense-reversing spin/yield barrier for the window rendezvous. The
  /// coordinator and every worker arrive twice per window (start, end);
  /// arrival publishes with release and departure observes with acquire, so
  /// engine ownership hands off cleanly between the serial and parallel
  /// phases.
  class Barrier {
   public:
    explicit Barrier(std::size_t parties) : parties_(parties) {}
    void arrive_and_wait();

   private:
    std::size_t parties_;
    std::atomic<std::size_t> count_{0};
    std::atomic<std::uint64_t> phase_{0};
  };

  [[nodiscard]] common::SimTime global_next() const;
  [[nodiscard]] bool mail_pending() const;
  /// Moves every outbox message into its destination engine, in global
  /// (when, stream, seq) order. Serial phase only.
  void drain_mailboxes();
  /// Runs every engine to `window_end` (parallel when workers > 1).
  void run_window(common::SimTime window_end);
  void run_my_engines(std::size_t worker, std::int64_t until_ms);
  void worker_main(std::size_t worker);
  void start_batch();
  void end_batch();

  common::SimDuration lookahead_;
  std::vector<std::unique_ptr<Engine>> engines_;
  /// Outboxes indexed by source shard: only the thread currently running
  /// that shard appends, only the coordinator (between barriers) drains.
  std::vector<std::vector<Mail>> outboxes_;
  /// Per-source-shard, per-stream post counters. The counter value depends
  /// only on the posting entity's own behavior, never on shard packing —
  /// that is what makes (when, stream, seq) a packing-independent total
  /// order.
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> stream_seq_;
  std::vector<Mail> drain_scratch_;

  common::SimTime now_ = common::SimTime::epoch();
  std::uint64_t windows_ = 0;
  std::uint64_t posted_ = 0;

  // --- Worker pool (only materialized when workers_ > 1) ---
  std::size_t workers_ = 1;
  std::vector<std::jthread> threads_;
  Barrier barrier_;
  /// Window horizon published by the coordinator before the start barrier;
  /// kParkBatch tells workers to leave the window loop and park on the cv.
  static constexpr std::int64_t kParkBatch = std::numeric_limits<std::int64_t>::min();
  std::int64_t window_end_ms_ = kParkBatch;
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t batch_seq_ = 0;
  /// Workers that have re-parked since the last batch ended; end_batch waits
  /// for all of them before the next batch may reuse window_end_ms_.
  std::size_t parked_ = 0;
  bool stopping_ = false;
  bool batch_active_ = false;
};

}  // namespace aimes::sim
