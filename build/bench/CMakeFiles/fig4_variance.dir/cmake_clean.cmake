file(REMOVE_RECURSE
  "CMakeFiles/fig4_variance.dir/fig4_variance.cpp.o"
  "CMakeFiles/fig4_variance.dir/fig4_variance.cpp.o.d"
  "fig4_variance"
  "fig4_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
