# Empty dependencies file for ablation_npilots.
# This may be replaced when dependencies are built.
