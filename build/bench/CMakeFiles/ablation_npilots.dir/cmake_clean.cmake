file(REMOVE_RECURSE
  "CMakeFiles/ablation_npilots.dir/ablation_npilots.cpp.o"
  "CMakeFiles/ablation_npilots.dir/ablation_npilots.cpp.o.d"
  "ablation_npilots"
  "ablation_npilots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_npilots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
