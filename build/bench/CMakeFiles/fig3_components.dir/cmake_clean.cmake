file(REMOVE_RECURSE
  "CMakeFiles/fig3_components.dir/fig3_components.cpp.o"
  "CMakeFiles/fig3_components.dir/fig3_components.cpp.o.d"
  "fig3_components"
  "fig3_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
