# Empty dependencies file for fig3_components.
# This may be replaced when dependencies are built.
