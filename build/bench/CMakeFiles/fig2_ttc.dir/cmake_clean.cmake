file(REMOVE_RECURSE
  "CMakeFiles/fig2_ttc.dir/fig2_ttc.cpp.o"
  "CMakeFiles/fig2_ttc.dir/fig2_ttc.cpp.o.d"
  "fig2_ttc"
  "fig2_ttc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ttc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
