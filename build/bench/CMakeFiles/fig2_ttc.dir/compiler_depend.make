# Empty compiler generated dependencies file for fig2_ttc.
# This may be replaced when dependencies are built.
