file(REMOVE_RECURSE
  "CMakeFiles/ablation_osg.dir/ablation_osg.cpp.o"
  "CMakeFiles/ablation_osg.dir/ablation_osg.cpp.o.d"
  "ablation_osg"
  "ablation_osg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_osg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
