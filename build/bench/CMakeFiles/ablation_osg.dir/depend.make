# Empty dependencies file for ablation_osg.
# This may be replaced when dependencies are built.
