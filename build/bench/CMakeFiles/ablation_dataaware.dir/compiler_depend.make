# Empty compiler generated dependencies file for ablation_dataaware.
# This may be replaced when dependencies are built.
