file(REMOVE_RECURSE
  "CMakeFiles/ablation_dataaware.dir/ablation_dataaware.cpp.o"
  "CMakeFiles/ablation_dataaware.dir/ablation_dataaware.cpp.o.d"
  "ablation_dataaware"
  "ablation_dataaware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dataaware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
