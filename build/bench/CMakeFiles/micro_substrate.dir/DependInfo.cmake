
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_substrate.cpp" "bench/CMakeFiles/micro_substrate.dir/micro_substrate.cpp.o" "gcc" "bench/CMakeFiles/micro_substrate.dir/micro_substrate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/aimes_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aimes_core.dir/DependInfo.cmake"
  "/root/repo/build/src/skeleton/CMakeFiles/aimes_skeleton.dir/DependInfo.cmake"
  "/root/repo/build/src/bundle/CMakeFiles/aimes_bundle.dir/DependInfo.cmake"
  "/root/repo/build/src/pilot/CMakeFiles/aimes_pilot.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aimes_net.dir/DependInfo.cmake"
  "/root/repo/build/src/saga/CMakeFiles/aimes_saga.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/aimes_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aimes_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aimes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
