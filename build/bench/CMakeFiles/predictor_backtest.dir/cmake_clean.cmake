file(REMOVE_RECURSE
  "CMakeFiles/predictor_backtest.dir/predictor_backtest.cpp.o"
  "CMakeFiles/predictor_backtest.dir/predictor_backtest.cpp.o.d"
  "predictor_backtest"
  "predictor_backtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_backtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
