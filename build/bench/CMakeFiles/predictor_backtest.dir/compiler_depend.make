# Empty compiler generated dependencies file for predictor_backtest.
# This may be replaced when dependencies are built.
