# Empty dependencies file for aimes-run.
# This may be replaced when dependencies are built.
