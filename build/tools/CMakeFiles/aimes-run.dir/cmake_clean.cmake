file(REMOVE_RECURSE
  "CMakeFiles/aimes-run.dir/aimes_run.cpp.o"
  "CMakeFiles/aimes-run.dir/aimes_run.cpp.o.d"
  "aimes-run"
  "aimes-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aimes-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
