# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_profile_run "/root/repo/build/tools/aimes-run" "--profile" "bag-uniform" "--tasks" "16" "--pilots" "2" "--seed" "3" "--warmup" "1")
set_tests_properties(cli_profile_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_config_run "/root/repo/build/tools/aimes-run" "--skeleton" "/root/repo/examples/configs/skeleton_mapreduce.cfg" "--testbed" "/root/repo/examples/configs/pool_hybrid.cfg" "--pilots" "2" "--seed" "3" "--warmup" "1" "--timeline")
set_tests_properties(cli_config_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_emit_dax "/root/repo/build/tools/aimes-run" "--profile" "montage" "--tasks" "8" "--emit" "dax")
set_tests_properties(cli_emit_dax PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_adaptive_run "/root/repo/build/tools/aimes-run" "--profile" "bag-gaussian" "--tasks" "16" "--pilots" "2" "--seed" "3" "--warmup" "1" "--adaptive" "--report" "/tmp/aimes_cli_report.json")
set_tests_properties(cli_adaptive_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_args "/root/repo/build/tools/aimes-run" "--bogus")
set_tests_properties(cli_rejects_unknown_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
