# Empty compiler generated dependencies file for resource_weather.
# This may be replaced when dependencies are built.
