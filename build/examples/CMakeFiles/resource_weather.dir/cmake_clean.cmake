file(REMOVE_RECURSE
  "CMakeFiles/resource_weather.dir/resource_weather.cpp.o"
  "CMakeFiles/resource_weather.dir/resource_weather.cpp.o.d"
  "resource_weather"
  "resource_weather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
