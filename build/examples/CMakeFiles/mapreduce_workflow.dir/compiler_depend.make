# Empty compiler generated dependencies file for mapreduce_workflow.
# This may be replaced when dependencies are built.
