file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_workflow.dir/mapreduce_workflow.cpp.o"
  "CMakeFiles/mapreduce_workflow.dir/mapreduce_workflow.cpp.o.d"
  "mapreduce_workflow"
  "mapreduce_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
