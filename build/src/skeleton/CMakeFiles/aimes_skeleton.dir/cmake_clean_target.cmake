file(REMOVE_RECURSE
  "libaimes_skeleton.a"
)
