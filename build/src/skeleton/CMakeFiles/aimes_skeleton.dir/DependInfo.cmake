
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/skeleton/application.cpp" "src/skeleton/CMakeFiles/aimes_skeleton.dir/application.cpp.o" "gcc" "src/skeleton/CMakeFiles/aimes_skeleton.dir/application.cpp.o.d"
  "/root/repo/src/skeleton/emitters.cpp" "src/skeleton/CMakeFiles/aimes_skeleton.dir/emitters.cpp.o" "gcc" "src/skeleton/CMakeFiles/aimes_skeleton.dir/emitters.cpp.o.d"
  "/root/repo/src/skeleton/profiles.cpp" "src/skeleton/CMakeFiles/aimes_skeleton.dir/profiles.cpp.o" "gcc" "src/skeleton/CMakeFiles/aimes_skeleton.dir/profiles.cpp.o.d"
  "/root/repo/src/skeleton/spec.cpp" "src/skeleton/CMakeFiles/aimes_skeleton.dir/spec.cpp.o" "gcc" "src/skeleton/CMakeFiles/aimes_skeleton.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aimes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
