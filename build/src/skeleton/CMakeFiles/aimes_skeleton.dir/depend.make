# Empty dependencies file for aimes_skeleton.
# This may be replaced when dependencies are built.
