file(REMOVE_RECURSE
  "CMakeFiles/aimes_skeleton.dir/application.cpp.o"
  "CMakeFiles/aimes_skeleton.dir/application.cpp.o.d"
  "CMakeFiles/aimes_skeleton.dir/emitters.cpp.o"
  "CMakeFiles/aimes_skeleton.dir/emitters.cpp.o.d"
  "CMakeFiles/aimes_skeleton.dir/profiles.cpp.o"
  "CMakeFiles/aimes_skeleton.dir/profiles.cpp.o.d"
  "CMakeFiles/aimes_skeleton.dir/spec.cpp.o"
  "CMakeFiles/aimes_skeleton.dir/spec.cpp.o.d"
  "libaimes_skeleton.a"
  "libaimes_skeleton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aimes_skeleton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
