file(REMOVE_RECURSE
  "CMakeFiles/aimes_bundle.dir/agent.cpp.o"
  "CMakeFiles/aimes_bundle.dir/agent.cpp.o.d"
  "CMakeFiles/aimes_bundle.dir/manager.cpp.o"
  "CMakeFiles/aimes_bundle.dir/manager.cpp.o.d"
  "CMakeFiles/aimes_bundle.dir/predictor.cpp.o"
  "CMakeFiles/aimes_bundle.dir/predictor.cpp.o.d"
  "libaimes_bundle.a"
  "libaimes_bundle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aimes_bundle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
