# Empty dependencies file for aimes_bundle.
# This may be replaced when dependencies are built.
