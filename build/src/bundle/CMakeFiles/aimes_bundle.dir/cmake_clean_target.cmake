file(REMOVE_RECURSE
  "libaimes_bundle.a"
)
