file(REMOVE_RECURSE
  "libaimes_pilot.a"
)
