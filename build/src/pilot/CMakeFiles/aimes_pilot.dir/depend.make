# Empty dependencies file for aimes_pilot.
# This may be replaced when dependencies are built.
