file(REMOVE_RECURSE
  "CMakeFiles/aimes_pilot.dir/agent.cpp.o"
  "CMakeFiles/aimes_pilot.dir/agent.cpp.o.d"
  "CMakeFiles/aimes_pilot.dir/pilot_manager.cpp.o"
  "CMakeFiles/aimes_pilot.dir/pilot_manager.cpp.o.d"
  "CMakeFiles/aimes_pilot.dir/profiler.cpp.o"
  "CMakeFiles/aimes_pilot.dir/profiler.cpp.o.d"
  "CMakeFiles/aimes_pilot.dir/unit_manager.cpp.o"
  "CMakeFiles/aimes_pilot.dir/unit_manager.cpp.o.d"
  "libaimes_pilot.a"
  "libaimes_pilot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aimes_pilot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
