
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pilot/agent.cpp" "src/pilot/CMakeFiles/aimes_pilot.dir/agent.cpp.o" "gcc" "src/pilot/CMakeFiles/aimes_pilot.dir/agent.cpp.o.d"
  "/root/repo/src/pilot/pilot_manager.cpp" "src/pilot/CMakeFiles/aimes_pilot.dir/pilot_manager.cpp.o" "gcc" "src/pilot/CMakeFiles/aimes_pilot.dir/pilot_manager.cpp.o.d"
  "/root/repo/src/pilot/profiler.cpp" "src/pilot/CMakeFiles/aimes_pilot.dir/profiler.cpp.o" "gcc" "src/pilot/CMakeFiles/aimes_pilot.dir/profiler.cpp.o.d"
  "/root/repo/src/pilot/unit_manager.cpp" "src/pilot/CMakeFiles/aimes_pilot.dir/unit_manager.cpp.o" "gcc" "src/pilot/CMakeFiles/aimes_pilot.dir/unit_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aimes_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aimes_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/saga/CMakeFiles/aimes_saga.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aimes_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/aimes_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
