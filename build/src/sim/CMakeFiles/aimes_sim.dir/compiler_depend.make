# Empty compiler generated dependencies file for aimes_sim.
# This may be replaced when dependencies are built.
