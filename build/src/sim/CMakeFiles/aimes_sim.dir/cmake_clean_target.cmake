file(REMOVE_RECURSE
  "libaimes_sim.a"
)
