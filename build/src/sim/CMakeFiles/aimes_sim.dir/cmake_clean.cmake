file(REMOVE_RECURSE
  "CMakeFiles/aimes_sim.dir/engine.cpp.o"
  "CMakeFiles/aimes_sim.dir/engine.cpp.o.d"
  "libaimes_sim.a"
  "libaimes_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aimes_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
