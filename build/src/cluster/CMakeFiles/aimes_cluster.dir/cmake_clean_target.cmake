file(REMOVE_RECURSE
  "libaimes_cluster.a"
)
