file(REMOVE_RECURSE
  "CMakeFiles/aimes_cluster.dir/batch_scheduler.cpp.o"
  "CMakeFiles/aimes_cluster.dir/batch_scheduler.cpp.o.d"
  "CMakeFiles/aimes_cluster.dir/site.cpp.o"
  "CMakeFiles/aimes_cluster.dir/site.cpp.o.d"
  "CMakeFiles/aimes_cluster.dir/testbed.cpp.o"
  "CMakeFiles/aimes_cluster.dir/testbed.cpp.o.d"
  "CMakeFiles/aimes_cluster.dir/testbed_config.cpp.o"
  "CMakeFiles/aimes_cluster.dir/testbed_config.cpp.o.d"
  "CMakeFiles/aimes_cluster.dir/workload.cpp.o"
  "CMakeFiles/aimes_cluster.dir/workload.cpp.o.d"
  "libaimes_cluster.a"
  "libaimes_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aimes_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
