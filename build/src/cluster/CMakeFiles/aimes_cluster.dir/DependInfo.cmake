
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/batch_scheduler.cpp" "src/cluster/CMakeFiles/aimes_cluster.dir/batch_scheduler.cpp.o" "gcc" "src/cluster/CMakeFiles/aimes_cluster.dir/batch_scheduler.cpp.o.d"
  "/root/repo/src/cluster/site.cpp" "src/cluster/CMakeFiles/aimes_cluster.dir/site.cpp.o" "gcc" "src/cluster/CMakeFiles/aimes_cluster.dir/site.cpp.o.d"
  "/root/repo/src/cluster/testbed.cpp" "src/cluster/CMakeFiles/aimes_cluster.dir/testbed.cpp.o" "gcc" "src/cluster/CMakeFiles/aimes_cluster.dir/testbed.cpp.o.d"
  "/root/repo/src/cluster/testbed_config.cpp" "src/cluster/CMakeFiles/aimes_cluster.dir/testbed_config.cpp.o" "gcc" "src/cluster/CMakeFiles/aimes_cluster.dir/testbed_config.cpp.o.d"
  "/root/repo/src/cluster/workload.cpp" "src/cluster/CMakeFiles/aimes_cluster.dir/workload.cpp.o" "gcc" "src/cluster/CMakeFiles/aimes_cluster.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aimes_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aimes_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
