# Empty dependencies file for aimes_cluster.
# This may be replaced when dependencies are built.
