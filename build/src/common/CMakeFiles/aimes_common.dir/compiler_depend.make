# Empty compiler generated dependencies file for aimes_common.
# This may be replaced when dependencies are built.
