file(REMOVE_RECURSE
  "CMakeFiles/aimes_common.dir/config.cpp.o"
  "CMakeFiles/aimes_common.dir/config.cpp.o.d"
  "CMakeFiles/aimes_common.dir/data_size.cpp.o"
  "CMakeFiles/aimes_common.dir/data_size.cpp.o.d"
  "CMakeFiles/aimes_common.dir/distribution.cpp.o"
  "CMakeFiles/aimes_common.dir/distribution.cpp.o.d"
  "CMakeFiles/aimes_common.dir/histogram.cpp.o"
  "CMakeFiles/aimes_common.dir/histogram.cpp.o.d"
  "CMakeFiles/aimes_common.dir/log.cpp.o"
  "CMakeFiles/aimes_common.dir/log.cpp.o.d"
  "CMakeFiles/aimes_common.dir/rng.cpp.o"
  "CMakeFiles/aimes_common.dir/rng.cpp.o.d"
  "CMakeFiles/aimes_common.dir/stats.cpp.o"
  "CMakeFiles/aimes_common.dir/stats.cpp.o.d"
  "CMakeFiles/aimes_common.dir/string_util.cpp.o"
  "CMakeFiles/aimes_common.dir/string_util.cpp.o.d"
  "CMakeFiles/aimes_common.dir/table.cpp.o"
  "CMakeFiles/aimes_common.dir/table.cpp.o.d"
  "CMakeFiles/aimes_common.dir/time.cpp.o"
  "CMakeFiles/aimes_common.dir/time.cpp.o.d"
  "libaimes_common.a"
  "libaimes_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aimes_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
