file(REMOVE_RECURSE
  "libaimes_common.a"
)
