file(REMOVE_RECURSE
  "libaimes_exp.a"
)
