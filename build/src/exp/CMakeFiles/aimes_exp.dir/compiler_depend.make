# Empty compiler generated dependencies file for aimes_exp.
# This may be replaced when dependencies are built.
