file(REMOVE_RECURSE
  "CMakeFiles/aimes_exp.dir/matrix.cpp.o"
  "CMakeFiles/aimes_exp.dir/matrix.cpp.o.d"
  "CMakeFiles/aimes_exp.dir/runner.cpp.o"
  "CMakeFiles/aimes_exp.dir/runner.cpp.o.d"
  "libaimes_exp.a"
  "libaimes_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aimes_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
