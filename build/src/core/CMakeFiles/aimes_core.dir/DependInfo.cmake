
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/aimes_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/aimes_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/aimes.cpp" "src/core/CMakeFiles/aimes_core.dir/aimes.cpp.o" "gcc" "src/core/CMakeFiles/aimes_core.dir/aimes.cpp.o.d"
  "/root/repo/src/core/execution_manager.cpp" "src/core/CMakeFiles/aimes_core.dir/execution_manager.cpp.o" "gcc" "src/core/CMakeFiles/aimes_core.dir/execution_manager.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/aimes_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/aimes_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/aimes_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/aimes_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/report_io.cpp" "src/core/CMakeFiles/aimes_core.dir/report_io.cpp.o" "gcc" "src/core/CMakeFiles/aimes_core.dir/report_io.cpp.o.d"
  "/root/repo/src/core/strategy.cpp" "src/core/CMakeFiles/aimes_core.dir/strategy.cpp.o" "gcc" "src/core/CMakeFiles/aimes_core.dir/strategy.cpp.o.d"
  "/root/repo/src/core/timeline.cpp" "src/core/CMakeFiles/aimes_core.dir/timeline.cpp.o" "gcc" "src/core/CMakeFiles/aimes_core.dir/timeline.cpp.o.d"
  "/root/repo/src/core/ttc.cpp" "src/core/CMakeFiles/aimes_core.dir/ttc.cpp.o" "gcc" "src/core/CMakeFiles/aimes_core.dir/ttc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aimes_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aimes_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/aimes_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aimes_net.dir/DependInfo.cmake"
  "/root/repo/build/src/saga/CMakeFiles/aimes_saga.dir/DependInfo.cmake"
  "/root/repo/build/src/skeleton/CMakeFiles/aimes_skeleton.dir/DependInfo.cmake"
  "/root/repo/build/src/bundle/CMakeFiles/aimes_bundle.dir/DependInfo.cmake"
  "/root/repo/build/src/pilot/CMakeFiles/aimes_pilot.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
