file(REMOVE_RECURSE
  "libaimes_core.a"
)
