file(REMOVE_RECURSE
  "CMakeFiles/aimes_core.dir/adaptive.cpp.o"
  "CMakeFiles/aimes_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/aimes_core.dir/aimes.cpp.o"
  "CMakeFiles/aimes_core.dir/aimes.cpp.o.d"
  "CMakeFiles/aimes_core.dir/execution_manager.cpp.o"
  "CMakeFiles/aimes_core.dir/execution_manager.cpp.o.d"
  "CMakeFiles/aimes_core.dir/metrics.cpp.o"
  "CMakeFiles/aimes_core.dir/metrics.cpp.o.d"
  "CMakeFiles/aimes_core.dir/planner.cpp.o"
  "CMakeFiles/aimes_core.dir/planner.cpp.o.d"
  "CMakeFiles/aimes_core.dir/report_io.cpp.o"
  "CMakeFiles/aimes_core.dir/report_io.cpp.o.d"
  "CMakeFiles/aimes_core.dir/strategy.cpp.o"
  "CMakeFiles/aimes_core.dir/strategy.cpp.o.d"
  "CMakeFiles/aimes_core.dir/timeline.cpp.o"
  "CMakeFiles/aimes_core.dir/timeline.cpp.o.d"
  "CMakeFiles/aimes_core.dir/ttc.cpp.o"
  "CMakeFiles/aimes_core.dir/ttc.cpp.o.d"
  "libaimes_core.a"
  "libaimes_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aimes_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
