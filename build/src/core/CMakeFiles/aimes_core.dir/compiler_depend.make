# Empty compiler generated dependencies file for aimes_core.
# This may be replaced when dependencies are built.
