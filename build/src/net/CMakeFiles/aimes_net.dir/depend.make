# Empty dependencies file for aimes_net.
# This may be replaced when dependencies are built.
