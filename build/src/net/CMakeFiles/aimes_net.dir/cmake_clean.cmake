file(REMOVE_RECURSE
  "CMakeFiles/aimes_net.dir/staging.cpp.o"
  "CMakeFiles/aimes_net.dir/staging.cpp.o.d"
  "CMakeFiles/aimes_net.dir/topology.cpp.o"
  "CMakeFiles/aimes_net.dir/topology.cpp.o.d"
  "CMakeFiles/aimes_net.dir/transfer.cpp.o"
  "CMakeFiles/aimes_net.dir/transfer.cpp.o.d"
  "libaimes_net.a"
  "libaimes_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aimes_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
