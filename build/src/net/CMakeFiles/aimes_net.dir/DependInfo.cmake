
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/staging.cpp" "src/net/CMakeFiles/aimes_net.dir/staging.cpp.o" "gcc" "src/net/CMakeFiles/aimes_net.dir/staging.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/aimes_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/aimes_net.dir/topology.cpp.o.d"
  "/root/repo/src/net/transfer.cpp" "src/net/CMakeFiles/aimes_net.dir/transfer.cpp.o" "gcc" "src/net/CMakeFiles/aimes_net.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aimes_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aimes_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
