file(REMOVE_RECURSE
  "libaimes_net.a"
)
