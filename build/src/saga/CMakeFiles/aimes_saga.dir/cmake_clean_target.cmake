file(REMOVE_RECURSE
  "libaimes_saga.a"
)
