file(REMOVE_RECURSE
  "CMakeFiles/aimes_saga.dir/job_service.cpp.o"
  "CMakeFiles/aimes_saga.dir/job_service.cpp.o.d"
  "libaimes_saga.a"
  "libaimes_saga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aimes_saga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
