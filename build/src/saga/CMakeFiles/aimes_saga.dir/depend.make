# Empty dependencies file for aimes_saga.
# This may be replaced when dependencies are built.
