
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bundle/test_bundle.cpp" "tests/CMakeFiles/aimes_tests.dir/bundle/test_bundle.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/bundle/test_bundle.cpp.o.d"
  "/root/repo/tests/cluster/test_batch_scheduler.cpp" "tests/CMakeFiles/aimes_tests.dir/cluster/test_batch_scheduler.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/cluster/test_batch_scheduler.cpp.o.d"
  "/root/repo/tests/cluster/test_preemption.cpp" "tests/CMakeFiles/aimes_tests.dir/cluster/test_preemption.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/cluster/test_preemption.cpp.o.d"
  "/root/repo/tests/cluster/test_site.cpp" "tests/CMakeFiles/aimes_tests.dir/cluster/test_site.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/cluster/test_site.cpp.o.d"
  "/root/repo/tests/cluster/test_site_invariants.cpp" "tests/CMakeFiles/aimes_tests.dir/cluster/test_site_invariants.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/cluster/test_site_invariants.cpp.o.d"
  "/root/repo/tests/cluster/test_testbed_config.cpp" "tests/CMakeFiles/aimes_tests.dir/cluster/test_testbed_config.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/cluster/test_testbed_config.cpp.o.d"
  "/root/repo/tests/cluster/test_workload.cpp" "tests/CMakeFiles/aimes_tests.dir/cluster/test_workload.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/cluster/test_workload.cpp.o.d"
  "/root/repo/tests/common/test_config.cpp" "tests/CMakeFiles/aimes_tests.dir/common/test_config.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/common/test_config.cpp.o.d"
  "/root/repo/tests/common/test_distribution.cpp" "tests/CMakeFiles/aimes_tests.dir/common/test_distribution.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/common/test_distribution.cpp.o.d"
  "/root/repo/tests/common/test_histogram.cpp" "tests/CMakeFiles/aimes_tests.dir/common/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/common/test_histogram.cpp.o.d"
  "/root/repo/tests/common/test_misc.cpp" "tests/CMakeFiles/aimes_tests.dir/common/test_misc.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/common/test_misc.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/aimes_tests.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/CMakeFiles/aimes_tests.dir/common/test_stats.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/common/test_stats.cpp.o.d"
  "/root/repo/tests/common/test_time.cpp" "tests/CMakeFiles/aimes_tests.dir/common/test_time.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/common/test_time.cpp.o.d"
  "/root/repo/tests/core/test_abort.cpp" "tests/CMakeFiles/aimes_tests.dir/core/test_abort.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/core/test_abort.cpp.o.d"
  "/root/repo/tests/core/test_adaptive.cpp" "tests/CMakeFiles/aimes_tests.dir/core/test_adaptive.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/core/test_adaptive.cpp.o.d"
  "/root/repo/tests/core/test_execution_manager.cpp" "tests/CMakeFiles/aimes_tests.dir/core/test_execution_manager.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/core/test_execution_manager.cpp.o.d"
  "/root/repo/tests/core/test_metrics.cpp" "tests/CMakeFiles/aimes_tests.dir/core/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/core/test_metrics.cpp.o.d"
  "/root/repo/tests/core/test_planner.cpp" "tests/CMakeFiles/aimes_tests.dir/core/test_planner.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/core/test_planner.cpp.o.d"
  "/root/repo/tests/core/test_report_io.cpp" "tests/CMakeFiles/aimes_tests.dir/core/test_report_io.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/core/test_report_io.cpp.o.d"
  "/root/repo/tests/core/test_staged.cpp" "tests/CMakeFiles/aimes_tests.dir/core/test_staged.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/core/test_staged.cpp.o.d"
  "/root/repo/tests/core/test_strategy.cpp" "tests/CMakeFiles/aimes_tests.dir/core/test_strategy.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/core/test_strategy.cpp.o.d"
  "/root/repo/tests/core/test_timeline.cpp" "tests/CMakeFiles/aimes_tests.dir/core/test_timeline.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/core/test_timeline.cpp.o.d"
  "/root/repo/tests/core/test_ttc.cpp" "tests/CMakeFiles/aimes_tests.dir/core/test_ttc.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/core/test_ttc.cpp.o.d"
  "/root/repo/tests/exp/test_matrix.cpp" "tests/CMakeFiles/aimes_tests.dir/exp/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/exp/test_matrix.cpp.o.d"
  "/root/repo/tests/integration/test_determinism.cpp" "tests/CMakeFiles/aimes_tests.dir/integration/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/integration/test_determinism.cpp.o.d"
  "/root/repo/tests/integration/test_edge_cases.cpp" "tests/CMakeFiles/aimes_tests.dir/integration/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/integration/test_edge_cases.cpp.o.d"
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/aimes_tests.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/integration/test_end_to_end.cpp.o.d"
  "/root/repo/tests/integration/test_profile_sweep.cpp" "tests/CMakeFiles/aimes_tests.dir/integration/test_profile_sweep.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/integration/test_profile_sweep.cpp.o.d"
  "/root/repo/tests/integration/test_properties.cpp" "tests/CMakeFiles/aimes_tests.dir/integration/test_properties.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/integration/test_properties.cpp.o.d"
  "/root/repo/tests/net/test_net.cpp" "tests/CMakeFiles/aimes_tests.dir/net/test_net.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/net/test_net.cpp.o.d"
  "/root/repo/tests/pilot/test_agent.cpp" "tests/CMakeFiles/aimes_tests.dir/pilot/test_agent.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/pilot/test_agent.cpp.o.d"
  "/root/repo/tests/pilot/test_pilot_manager.cpp" "tests/CMakeFiles/aimes_tests.dir/pilot/test_pilot_manager.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/pilot/test_pilot_manager.cpp.o.d"
  "/root/repo/tests/pilot/test_profiler.cpp" "tests/CMakeFiles/aimes_tests.dir/pilot/test_profiler.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/pilot/test_profiler.cpp.o.d"
  "/root/repo/tests/pilot/test_scheduler_sweep.cpp" "tests/CMakeFiles/aimes_tests.dir/pilot/test_scheduler_sweep.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/pilot/test_scheduler_sweep.cpp.o.d"
  "/root/repo/tests/pilot/test_unit_manager.cpp" "tests/CMakeFiles/aimes_tests.dir/pilot/test_unit_manager.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/pilot/test_unit_manager.cpp.o.d"
  "/root/repo/tests/saga/test_job_service.cpp" "tests/CMakeFiles/aimes_tests.dir/saga/test_job_service.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/saga/test_job_service.cpp.o.d"
  "/root/repo/tests/sim/test_engine.cpp" "tests/CMakeFiles/aimes_tests.dir/sim/test_engine.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/sim/test_engine.cpp.o.d"
  "/root/repo/tests/skeleton/test_emitters.cpp" "tests/CMakeFiles/aimes_tests.dir/skeleton/test_emitters.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/skeleton/test_emitters.cpp.o.d"
  "/root/repo/tests/skeleton/test_skeleton.cpp" "tests/CMakeFiles/aimes_tests.dir/skeleton/test_skeleton.cpp.o" "gcc" "tests/CMakeFiles/aimes_tests.dir/skeleton/test_skeleton.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/aimes_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aimes_core.dir/DependInfo.cmake"
  "/root/repo/build/src/skeleton/CMakeFiles/aimes_skeleton.dir/DependInfo.cmake"
  "/root/repo/build/src/bundle/CMakeFiles/aimes_bundle.dir/DependInfo.cmake"
  "/root/repo/build/src/pilot/CMakeFiles/aimes_pilot.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aimes_net.dir/DependInfo.cmake"
  "/root/repo/build/src/saga/CMakeFiles/aimes_saga.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/aimes_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aimes_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aimes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
