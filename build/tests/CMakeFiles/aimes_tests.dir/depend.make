# Empty dependencies file for aimes_tests.
# This may be replaced when dependencies are built.
