// Bundle example: querying, predicting and monitoring resource "weather".
//
// Exercises the paper's resource abstraction (§III.B) end to end:
//  * on-demand queries (compute/network/storage snapshots);
//  * predictive queries (queue-wait forecasts from observed history, with
//    both predictor families side by side);
//  * the monitoring interface (threshold subscriptions firing as the
//    simulated machines' load evolves);
//  * discovery (constraint-filtered, ranked site selection).
//
//   ./examples/resource_weather [hours] [seed]

#include <cstdio>
#include <cstdlib>

#include "bundle/manager.hpp"
#include "core/aimes.hpp"

int main(int argc, char** argv) {
  using namespace aimes;

  const double hours = argc > 1 ? std::atof(argv[1]) : 12.0;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 99;

  core::AimesConfig config;
  config.seed = seed;
  config.warmup = common::SimDuration::hours(2);
  core::Aimes aimes(config);
  aimes.start();

  // Subscribe to congestion events on every site before letting time run.
  int notifications = 0;
  for (auto* agent : aimes.bundles().agents()) {
    agent->subscribe(bundle::Metric::kQueuedNodes, bundle::Comparison::kAbove, 512.0,
                     common::SimDuration::minutes(5), [&](const bundle::Notification& n) {
                       ++notifications;
                       std::printf("  [monitor] %s %s crossed %0.f (value %.0f)\n",
                                   n.when.str().c_str(), to_string(n.metric).data(), 512.0,
                                   n.value);
                     });
  }

  std::printf("watching the pool for %.1f virtual hours...\n", hours);
  aimes.engine().run_until(aimes.engine().now() + common::SimDuration::hours(hours));
  std::printf("  %d congestion notifications fired\n\n", notifications);

  // On-demand + predictive snapshot of every resource.
  std::printf("%-16s %6s %6s %9s %14s %14s\n", "resource", "util%", "queue", "bw(MiB/s)",
              "wait(quantile)", "wait(util)");
  for (auto* agent : aimes.bundles().agents()) {
    const auto rep = agent->query();
    const auto q_wait = agent->predict_wait(64);
    agent->set_predictor(std::make_unique<bundle::UtilizationPredictor>());
    const auto u_wait = agent->predict_wait(64);
    agent->set_predictor(std::make_unique<bundle::QuantilePredictor>());
    std::printf("%-16s %6.1f %6zu %9.0f %14s %14s\n", rep.name.c_str(),
                100.0 * rep.compute.utilization, rep.compute.queue_length,
                rep.network.bandwidth_in.bytes_per_sec() / (1024.0 * 1024.0),
                q_wait.str().c_str(), u_wait.str().c_str());
  }

  // Transfer estimate through the query interface ("how long would it take
  // to transfer a file from one location to a resource").
  std::printf("\nstaging a 256 MiB dataset would take approximately:\n");
  for (auto* agent : aimes.bundles().agents()) {
    const auto est = agent->estimate_transfer(net::Direction::kIn, common::DataSize::mib(256));
    if (est.ok()) {
      std::printf("  %-16s %s\n", agent->site_name().c_str(), est->str().c_str());
    }
  }

  // Discovery: "give me resources that can hold a 512-core pilot, best
  // predicted wait first, weighing bandwidth for a data-heavy run".
  bundle::Requirements req;
  req.min_total_cores = 512;
  req.weight_bandwidth = 0.5;
  const auto candidates = aimes.bundles().discover(req);
  std::printf("\ndiscovery for a 512-core, data-heavy pilot (best first):\n");
  for (const auto& c : candidates) {
    std::printf("  %-16s score %.2f, predicted wait %s\n", c.name.c_str(), c.score,
                c.predicted_wait.str().c_str());
  }
  return candidates.empty() ? 1 : 0;
}
