// Execution-strategy explorer: walk the decision space for one application.
//
// "An Execution Strategy can be thought of as a tree, where each decision is
// a vertex and each edge is a dependence relation among decisions" (§III.D).
// This example enumerates a slice of that tree for a fixed application —
// binding x #pilots x site-selection policy — executes each realization in
// its own fresh world (same seed: same machine-room weather), and reports
// the measured TTC decomposition side by side. It is the paper's methodology
// in miniature: make the decisions explicit, then measure them.
//
//   ./examples/strategy_explorer [tasks] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "common/string_util.hpp"
#include "core/aimes.hpp"
#include "skeleton/profiles.hpp"

namespace {

struct Choice {
  aimes::core::Binding binding;
  int n_pilots;
  aimes::core::SiteSelection selection;
  const char* label;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace aimes;

  const int tasks = argc > 1 ? std::atoi(argv[1]) : 256;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 31;

  const Choice choices[] = {
      {core::Binding::kEarly, 1, core::SiteSelection::kRandom, "early  1 pilot  random"},
      {core::Binding::kEarly, 1, core::SiteSelection::kPredictedWait,
       "early  1 pilot  predicted"},
      {core::Binding::kLate, 2, core::SiteSelection::kRandom, "late   2 pilots random"},
      {core::Binding::kLate, 3, core::SiteSelection::kRandom, "late   3 pilots random"},
      {core::Binding::kLate, 3, core::SiteSelection::kPredictedWait,
       "late   3 pilots predicted"},
      {core::Binding::kLate, 4, core::SiteSelection::kPredictedWait,
       "late   4 pilots predicted"},
  };

  common::TableWriter table(common::format(
      "strategy exploration — %d single-core tasks, one seed (%llu) per world", tasks,
      static_cast<unsigned long long>(seed)));
  table.header({"strategy", "TTC", "Tw", "Tx", "Ts", "pilots active"});

  for (const Choice& choice : choices) {
    // A fresh world per strategy, same seed: every strategy faces the same
    // background-load realization, so differences are the strategy's doing.
    core::AimesConfig config;
    config.seed = seed;
    core::Aimes aimes(config);
    aimes.start();

    const auto app = skeleton::materialize(skeleton::profiles::bag_gaussian(tasks), seed);
    core::PlannerConfig planner;
    planner.binding = choice.binding;
    planner.n_pilots = choice.n_pilots;
    planner.selection = choice.selection;
    auto result = aimes.run(app, planner);
    if (!result) {
      std::fprintf(stderr, "%s: %s\n", choice.label, result.error().c_str());
      continue;
    }
    const auto& r = result->report;
    table.row({choice.label, r.ttc.ttc.str(), r.ttc.tw.str(), r.ttc.tx.str(), r.ttc.ts.str(),
               std::to_string(r.ttc.pilot_waits.size()) + "/" +
                   std::to_string(choice.n_pilots)});
    std::printf("evaluated: %s\n", choice.label);
  }

  std::printf("\n");
  table.render(std::cout);
  std::printf("\nreading guide: Tw is the price of queue wait (dominant, volatile for a\n"
              "single pilot); Tx rises as pilots shrink; the paper's sweet spot is late\n"
              "binding across >= 3 resources.\n");
  return 0;
}
