// Adaptive execution example: strategies that change during execution.
//
// The paper's outlook (§V): "we will also study dynamic execution where
// application strategies change during execution to maintain the coupling
// between dynamic workloads and dynamic resources." This example engineers
// exactly the situation that needs it — the planner's chosen resource turns
// out to be hopelessly congested — and contrasts a static enactment with an
// adaptive one that reinforces the fleet from a fresh bundle query. The
// run's ASCII timeline makes the adaptation visible.
//
//   ./examples/adaptive_execution [tasks] [seed]

#include <cstdio>
#include <cstdlib>

#include "core/adaptive.hpp"
#include "core/aimes.hpp"
#include "core/timeline.hpp"
#include "skeleton/profiles.hpp"

namespace {

using namespace aimes;

/// A pool with one pathologically congested machine and two healthy ones.
std::vector<cluster::TestbedSiteSpec> contrived_pool() {
  auto pool = cluster::standard_testbed(common::SimDuration::hours(48));
  pool.resize(3);
  // Overload the first machine far beyond saturation and give it a strict
  // FCFS policy: with a 20-30 machine-hour backlog ahead, anything queued
  // there effectively never starts.
  pool[0].site.scheduler = "fcfs";
  pool[0].load.target_utilization = 2.5;
  pool[0].load.backlog_machine_hours_lo = 20.0;
  pool[0].load.backlog_machine_hours_hi = 30.0;
  return pool;
}

core::ExecutionStrategy strategy_on_worst(core::Aimes& aimes, int tasks) {
  core::ExecutionStrategy s;
  s.binding = core::Binding::kLate;
  s.unit_scheduler = pilot::UnitSchedulerKind::kBackfill;
  s.n_pilots = 1;
  s.pilot_cores = tasks;
  s.pilot_walltime = common::SimDuration::hours(6);
  s.sites = {aimes.testbed().sites()[0]->id()};  // the congested machine
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const int tasks = argc > 1 ? std::atoi(argv[1]) : 64;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;

  const auto app = skeleton::materialize(skeleton::profiles::bag_gaussian(tasks), seed);
  std::printf("application: %zu tasks; the strategy deliberately targets a machine whose\n"
              "queue is hopeless — watch the adaptive manager escape it.\n\n",
              app.task_count());

  // --- Static enactment: stuck with the original decision. ---
  {
    core::AimesConfig config;
    config.seed = seed;
    config.testbed = contrived_pool();
    core::Aimes aimes(config);
    aimes.start();
    const auto deadline = aimes.engine().now() + common::SimDuration::hours(8);
    pilot::Profiler trace;
    core::ExecutionManager manager(aimes.engine(), trace, aimes.services(), aimes.staging(),
                                   config.execution, common::Rng(seed));
    bool done = false;
    auto status = manager.enact(app, strategy_on_worst(aimes, tasks),
                                [&](const core::ExecutionReport&) { done = true; });
    if (!status.ok()) {
      std::fprintf(stderr, "enact failed: %s\n", status.error().c_str());
      return 1;
    }
    aimes.engine().run_until(deadline);
    std::printf("static enactment after 8 simulated hours: %s\n",
                done ? "completed" : "STILL WAITING (pilot never activated)");
    if (!done) manager.abort("example deadline");
    aimes.engine().run_until(deadline + common::SimDuration::minutes(5));
  }

  // --- Adaptive enactment: same doomed strategy, plus the watchdog. ---
  {
    core::AimesConfig config;
    config.seed = seed;
    config.testbed = contrived_pool();
    core::Aimes aimes(config);
    aimes.start();
    pilot::Profiler trace;
    core::AdaptivePolicy policy;
    policy.activation_deadline = common::SimDuration::minutes(20);
    policy.check_interval = common::SimDuration::minutes(5);
    core::AdaptiveExecutionManager manager(aimes.engine(), trace, aimes.services(),
                                           aimes.staging(), aimes.bundles(),
                                           config.execution, policy, common::Rng(seed));
    bool done = false;
    auto status = manager.enact(app, strategy_on_worst(aimes, tasks),
                                [&](const core::ExecutionReport&) { done = true; });
    if (!status.ok()) {
      std::fprintf(stderr, "enact failed: %s\n", status.error().c_str());
      return 1;
    }
    aimes.engine().run_until(aimes.engine().now() + common::SimDuration::hours(8));

    std::printf("adaptive enactment: %s\n", done ? "completed" : "incomplete");
    for (const auto& a : manager.adaptations()) {
      std::printf("  %s %s pilot on %s\n", a.when.str().c_str(),
                  a.kind == core::Adaptation::Kind::kReinforcement ? "reinforcement"
                                                                   : "replacement",
                  a.site.str().c_str());
    }
    const auto& r = manager.report();
    std::printf("  TTC %s | Tw %s | Tx %s | Ts %s | %zu done\n\n",
                r.ttc.ttc.str().c_str(), r.ttc.tw.str().c_str(), r.ttc.tx.str().c_str(),
                r.ttc.ts.str().c_str(), r.units_done);
    std::printf("timeline of the adaptive run:\n%s",
                core::render_timeline(trace).c_str());
    return done && r.success ? 0 : 1;
  }
}
