// Quickstart: the smallest end-to-end AIMES run.
//
// Builds the paper-shaped five-site simulated testbed, describes a
// bag-of-tasks skeleton application, derives an execution strategy (late
// binding, backfill scheduling, 3 pilots — the paper's best performer), and
// executes it, printing the strategy's decision tree and the TTC
// decomposition from the run's trace.
//
//   ./examples/quickstart [n_tasks] [seed]

#include <cstdio>
#include <cstdlib>

#include "core/aimes.hpp"
#include "skeleton/profiles.hpp"

int main(int argc, char** argv) {
  using namespace aimes;

  const int n_tasks = argc > 1 ? std::atoi(argv[1]) : 128;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  // 1. Assemble the world: five heterogeneous simulated HPC sites under
  //    synthetic background load, warmed to steady state.
  core::AimesConfig config;
  config.seed = seed;
  core::Aimes aimes(config);
  aimes.start();

  // 2. Describe the application through the skeleton API: a bag of
  //    single-core tasks, truncated-Gaussian durations, 1 MiB in / 2 KiB out
  //    per task (the paper's workload).
  const auto spec = skeleton::profiles::bag_gaussian(n_tasks);
  const auto app = skeleton::materialize(spec, seed);
  std::printf("application: %s — %zu tasks, %zu files, total compute %s\n",
              app.name().c_str(), app.task_count(), app.files().size(),
              app.total_compute().str().c_str());

  // 3. Inspect the resources through the bundle API.
  std::printf("\nresource pool (bundle snapshots):\n");
  for (const auto& rep : aimes.bundles().query_all()) {
    std::printf("  %-16s %5d nodes x%-3d cores  util %4.1f%%  queue %3zu jobs  "
                "predicted 1-node wait %s\n",
                rep.name.c_str(), rep.compute.total_nodes, rep.compute.cores_per_node,
                100.0 * rep.compute.utilization, rep.compute.queue_length,
                rep.setup_time_estimate.str().c_str());
  }

  // 4. Derive the strategy (Execution Manager steps 1-4).
  core::PlannerConfig planner;
  planner.binding = core::Binding::kLate;
  planner.n_pilots = 3;
  auto strategy = aimes.plan(app, planner);
  if (!strategy) {
    std::fprintf(stderr, "planning failed: %s\n", strategy.error().c_str());
    return 1;
  }
  std::printf("\n%s", strategy->describe().c_str());

  // 5. Enact it (steps 4-6) and read the instrumented outcome.
  const auto result = aimes.execute(app, *strategy);
  const auto& r = result.report;
  std::printf("\nrun %s: %zu done, %zu failed\n", r.success ? "succeeded" : "INCOMPLETE",
              r.units_done, r.units_failed);
  std::printf("  TTC = %s\n", r.ttc.ttc.str().c_str());
  std::printf("   Tw = %s (first pilot active; queue wait dominates TTC in the paper)\n",
              r.ttc.tw.str().c_str());
  std::printf("   Tx = %s (union of task execution)\n", r.ttc.tx.str().c_str());
  std::printf("   Ts = %s (union of file staging)\n", r.ttc.ts.str().c_str());
  std::printf("  pilot queue waits:");
  for (const auto& w : r.ttc.pilot_waits) std::printf(" %s", w.str().c_str());
  std::printf("\n  trace records: %zu (full state-transition history)\n",
              result.trace.size());
  return r.success ? 0 : 1;
}
