// Multi-stage workflow example: an iterative map-reduce skeleton.
//
// The paper generalizes bag-of-task, (iterative) map-reduce and multistage
// workflows into one skeleton form (§III.A). This example builds a two-stage
// map-reduce from a *config file* (the skeleton tool's native input),
// materializes it, and executes it with late binding over two pilots,
// showing how inter-task data dependencies gate execution and how outputs
// are staged back to the origin between stages.
//
//   ./examples/mapreduce_workflow [maps] [reduces] [seed]

#include <cstdio>
#include <cstdlib>

#include "common/string_util.hpp"
#include "core/aimes.hpp"
#include "skeleton/application.hpp"

namespace {

std::string make_config(int maps, int reduces) {
  return aimes::common::format(R"(
# An iterative map-reduce skeleton, in the tool's config format.
[application]
name = wordfreq
iterations = 1

[stage.map]
tasks = %d
duration = truncated_normal 300 90 30 900
input_mapping = external
inputs_per_task = 1
input_size = constant 4194304        ; 4 MiB shard per mapper
outputs_per_task = 1
output_size = constant 1048576       ; 1 MiB of partials

[stage.reduce]
tasks = %d
duration = truncated_normal 120 30 15 300
input_mapping = round_robin          ; partials dealt across reducers
outputs_per_task = 1
output_size = constant 262144
)",
                               maps, reduces);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aimes;

  const int maps = argc > 1 ? std::atoi(argv[1]) : 32;
  const int reduces = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  // Parse the skeleton from its config-file form.
  auto spec = skeleton::parse_spec_text(make_config(maps, reduces));
  if (!spec) {
    std::fprintf(stderr, "skeleton config rejected: %s\n", spec.error().c_str());
    return 1;
  }
  const auto app = skeleton::materialize(*spec, seed);
  std::printf("workflow '%s': %zu stages, %zu tasks, %zu files\n", app.name().c_str(),
              app.stages().size(), app.task_count(), app.files().size());
  for (const auto& stage : app.stages()) {
    std::printf("  stage %-8s %4zu tasks\n", stage.name.c_str(), stage.task_count);
  }
  std::printf("  inter-task data: %s\n", app.has_inter_task_data() ? "yes" : "no");

  // Assemble a warm world and run with late binding over two pilots.
  core::AimesConfig config;
  config.seed = seed;
  core::Aimes aimes(config);
  aimes.start();

  core::PlannerConfig planner;
  planner.binding = core::Binding::kLate;
  planner.n_pilots = 2;
  auto result = aimes.run(app, planner);
  if (!result) {
    std::fprintf(stderr, "run failed: %s\n", result.error().c_str());
    return 1;
  }
  const auto& r = result->report;
  std::printf("\n%s", r.strategy.describe().c_str());
  std::printf("\nrun %s: %zu/%zu tasks done\n", r.success ? "succeeded" : "INCOMPLETE",
              r.units_done, app.task_count());
  std::printf("  TTC=%s Tw=%s Tx=%s Ts=%s\n", r.ttc.ttc.str().c_str(), r.ttc.tw.str().c_str(),
              r.ttc.tx.str().c_str(), r.ttc.ts.str().c_str());

  // Show the dependency gating in the trace: the first reducer cannot start
  // executing before the last mapper output it needs is DONE.
  const auto first_reduce_exec = result->trace.first(
      pilot::Entity::kUnit, static_cast<std::uint64_t>(maps) + 1, "EXECUTING");
  std::printf("  first reducer entered EXECUTING at %s (gated by mapper outputs)\n",
              first_reduce_exec.str().c_str());
  return r.success ? 0 : 1;
}
