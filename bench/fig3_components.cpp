// Reproduces Figure 3 (a)-(d): "TTC and its time constituents presented for
// each experiment in Table I as a function of the distributed application
// size. Tw = pilot setup and queuing time; Tx = execution time; Ts =
// input/output files staging time. During execution Tw, Tx, and Ts overlap
// so TTC < Tw + Tx + Ts."
//
// One panel per experiment: rows are application sizes, columns the mean
// TTC and its three components. Expected shapes (paper §IV.B):
//  * Ts small, growing with the number of tasks (1 MB in / 2 KB out each);
//  * Tx ~ task duration x generations; late binding larger than early;
//    gradient steepens above 256 tasks (middleware overhead);
//  * Tw dominant, erratic for early binding (600-8600 s there), smooth and
//    smaller for late binding (99-2800 s there);
//  * TTC tracks Tw.

#include <fstream>
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace aimes;
  const auto args = bench::BenchArgs::parse(argc, argv, 12);

  const char* panel = "abcd";
  int panel_idx = 0;
  std::vector<common::TableWriter> tables;

  for (const auto& e : exp::table1_experiments()) {
    common::TableWriter table(std::string("Figure 3 (") + panel[panel_idx++] + ") — " +
                              e.label + ", mean seconds over " + std::to_string(args.trials) +
                              " trials");
    table.header({"#Tasks", "TTC", "Tw", "Tx", "Ts", "Tw/TTC"});
    for (int tasks : exp::table1_task_counts()) {
      const auto cell = bench::run_cell_request(bench::cell_request(
          args, e.id, tasks, static_cast<std::uint64_t>(e.id) * 100000));
      const double ttc = cell.ttc_s.mean();
      table.row({std::to_string(tasks), common::TableWriter::num(ttc, 0),
                 common::TableWriter::num(cell.tw_s.mean(), 0),
                 common::TableWriter::num(cell.tx_s.mean(), 0),
                 common::TableWriter::num(cell.ts_s.mean(), 0),
                 common::TableWriter::num(ttc > 0 ? cell.tw_s.mean() / ttc : 0, 2)});
      std::fprintf(stderr, "  fig3: exp %d, %d tasks done\n", e.id, tasks);
    }
    table.render(std::cout);
    std::cout << '\n';
    tables.push_back(std::move(table));
  }

  std::cout << "shape check (paper): Tw dominates TTC and mirrors its variation; Ts is a\n"
               "small, task-proportional slice; Tx(late, c/d) > Tx(early, a/b); components\n"
               "overlap so TTC < Tw + Tx + Ts.\n";
  if (!args.csv.empty()) {
    // One CSV holding all four panels back to back.
    std::ofstream f(args.csv);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", args.csv.c_str());
      return 1;
    }
    for (const auto& t : tables) t.render_csv(f);
  }
  return 0;
}
