// Reproduces Figure 4 (a)/(b): "TTC for early and late binding. Differences
// in the size of the relative errors in (a) and (b) are consistent with the
// variance of Tw observed in Figure 3."
//
// Panel (a): Experiment 1 (early binding, uniform, 1 pilot) — TTC mean with
// LARGE error bars: "the large error bars ... show the variability of Tw for
// the same job submitted multiple times to the same resource".
// Panel (b): Experiment 3 (late binding, uniform, 3 pilots) — "small error
// bars across all task sizes": submitting to three resources normalizes the
// notoriously unpredictable queue wait.
//
// We print mean, stddev, min and max TTC per size, plus the ratio of the two
// panels' relative errors as the headline shape check.

#include <fstream>
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace aimes;
  const auto args = bench::BenchArgs::parse(argc, argv, 16);

  struct Panel {
    char tag;
    int exp_id;
  };
  double mean_rel_err[2] = {0, 0};
  int cells = 0;

  std::vector<common::TableWriter> tables;
  for (const Panel panel : {Panel{'a', 1}, Panel{'b', 3}}) {
    const auto e = exp::table1_experiment(panel.exp_id);
    common::TableWriter table(std::string("Figure 4 (") + panel.tag + ") — TTC " + e.label +
                              ", " + std::to_string(args.trials) + " trials");
    table.header({"#Tasks", "mean", "stddev", "min", "max", "rel.err"});
    cells = 0;
    for (int tasks : exp::table1_task_counts()) {
      const auto cell = bench::run_cell_request(bench::cell_request(
          args, e.id, tasks, static_cast<std::uint64_t>(e.id) * 100000));
      const double rel = cell.ttc_s.mean() > 0 ? cell.ttc_s.stddev() / cell.ttc_s.mean() : 0;
      mean_rel_err[panel.tag - 'a'] += rel;
      ++cells;
      table.row({std::to_string(tasks), common::TableWriter::num(cell.ttc_s.mean(), 0),
                 common::TableWriter::num(cell.ttc_s.stddev(), 0),
                 common::TableWriter::num(cell.ttc_s.min(), 0),
                 common::TableWriter::num(cell.ttc_s.max(), 0),
                 common::TableWriter::num(rel, 2)});
      std::fprintf(stderr, "  fig4(%c): %d tasks done\n", panel.tag, tasks);
    }
    table.render(std::cout);
    std::cout << '\n';
    tables.push_back(std::move(table));
  }

  const double a = mean_rel_err[0] / cells;
  const double b = mean_rel_err[1] / cells;
  std::printf("mean relative error: (a) early/1-pilot = %.2f, (b) late/3-pilots = %.2f "
              "(ratio %.1fx)\n",
              a, b, b > 0 ? a / b : 0.0);
  std::printf("shape check (paper): (a) error bars are a large fraction of the mean, (b)\n"
              "error bars are small at every size — three resources normalize queue wait.\n");

  if (!args.csv.empty()) {
    std::ofstream f(args.csv);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", args.csv.c_str());
      return 1;
    }
    for (const auto& t : tables) t.render_csv(f);
  }
  return 0;
}
