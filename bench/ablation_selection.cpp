// Ablation: does bundle-informed resource selection beat random selection?
//
// The paper's premise (§III.B) is that uniform resource characterization
// "facilitates efficient resource selection by distributed applications."
// This harness compares three site-selection policies for the early-binding
// single-pilot strategy (where the choice of resource matters most):
//
//   random      — pick any feasible site (no bundle information);
//   predicted   — rank sites by the bundle's QuantilePredictor forecast;
//   utilization — rank by the UtilizationPredictor (the paper's preferred
//                 signal: utilization history instead of queue-time).
//
// Expected shape: both predictive modes cut mean TTC and its variance versus
// random selection; neither is perfect (queue-time prediction "is extremely
// hard to predict accurately"), so the tail never fully disappears.

#include <iostream>
#include <memory>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "core/aimes.hpp"
#include "exp/matrix.hpp"
#include "sim/replica_pool.hpp"
#include "skeleton/application.hpp"

int main(int argc, char** argv) {
  using namespace aimes;
  const auto args = bench::BenchArgs::parse(argc, argv, 16);
  const int tasks = 1024;

  common::TableWriter table("Ablation — site selection policy (early binding, 1 pilot, " +
                            std::to_string(tasks) + " tasks, " + std::to_string(args.trials) +
                            " trials)");
  table.header({"Selection", "TTC mean", "TTC stddev", "TTC max", "Tw mean"});

  const auto e = exp::table1_experiment(1);
  for (const std::string mode : {"random", "predicted", "utilization"}) {
    struct Trial {
      bool ok = false;
      double ttc = 0;
      double tw = 0;
    };
    sim::ReplicaPool pool(args.jobs < 0 ? 1u : static_cast<unsigned>(args.jobs));
    const auto results = pool.map<Trial>(
        static_cast<std::size_t>(args.trials), [&](std::size_t t) {
          const std::uint64_t seed = args.seed + static_cast<std::uint64_t>(t) + 1;
          core::AimesConfig config;
          config.seed = seed;
          core::Aimes aimes(config);
          aimes.start();
          if (mode == "utilization") {
            for (auto* agent : aimes.bundles().agents()) {
              agent->set_predictor(std::make_unique<bundle::UtilizationPredictor>());
            }
          }
          const auto app = skeleton::materialize(e.make_skeleton(tasks), seed);
          auto planner = e.make_planner_config();
          planner.selection = mode == "random" ? core::SiteSelection::kRandom
                                               : core::SiteSelection::kPredictedWait;
          auto run = aimes.run(app, planner);
          Trial trial;
          if (run.ok() && run->report.success) {
            trial.ok = true;
            trial.ttc = run->report.ttc.ttc.to_seconds();
            trial.tw = run->report.ttc.tw.to_seconds();
          }
          return trial;
        });
    common::Summary ttc;
    common::Summary tw;
    for (const auto& trial : results) {
      if (!trial.ok) continue;
      ttc.add(trial.ttc);
      tw.add(trial.tw);
    }
    table.row({mode, common::TableWriter::num(ttc.mean(), 0),
               common::TableWriter::num(ttc.stddev(), 0),
               common::TableWriter::num(ttc.max(), 0),
               common::TableWriter::num(tw.mean(), 0)});
    std::fprintf(stderr, "  selection: %s done\n", mode.c_str());
  }
  table.render(std::cout);
  std::cout << "\nshape check: predictive selection (either mode) should cut mean TTC and\n"
               "variance versus random — the value of the Bundle abstraction — without\n"
               "eliminating the tail (queue-time prediction stays hard).\n";
  if (!args.csv.empty() && !table.save_csv(args.csv)) return 1;
  return 0;
}
