// Campaign TTC: shared pilot pool vs private fleets vs sequential baseline.
//
// Runs the same 4-tenant mixed-size campaign (Poisson arrivals, one seeded
// arrival stream shared by all modes) under the three sharing regimes and
// compares aggregate makespan and per-tenant TTC. Expected shape: the
// shared pool beats the sequential baseline outright (tenants overlap) and
// edges the private-fleet mode on queue wait (reused pilots skip the batch
// queue); the bench exits non-zero if shared >= sequential, so CI notices
// if the pool ever stops paying for itself.
//
// The shared-mode cell is additionally re-run at --jobs 1/2/4/8 and the
// FNV-1a trial checksums compared: the campaign runner's determinism
// contract says every worker count produces bit-identical trials. --json
// records the whole comparison (BENCH_campaign.json is the PR's evidence).

#include <cinttypes>
#include <fstream>
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "exp/campaign.hpp"

namespace {

using namespace aimes;

std::string hex_checksum(std::uint64_t checksum) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, checksum);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args;
  args.trials = 12;
  std::string json_path;
  int tenants = 4;
  int base_tasks = 8;
  double arrival_rate = 4.0;
  common::cli::Parser cli(argc > 0 ? argv[0] : "campaign_ttc");
  args.declare(cli);
  cli.string_option("--json", json_path, "also record the comparison as JSON", "PATH");
  cli.int_option("--tenants", tenants, 2, 256, "tenants per campaign");
  cli.int_option("--base-tasks", base_tasks, 1, 100000, "smallest tenant's task count");
  cli.double_option("--rate", arrival_rate, 0.001, 1000000.0, "Poisson arrivals per hour");
  args.finish(cli, argc, argv);

  // The campaign request: uniform durations (the historical spec default),
  // sizes mixed by the runner's {1,2,4} cycle. Exactly what
  // `aimesc submit --campaign N --profile bag-uniform ...` carries.
  exp::RunRequest req;
  req.profile = "bag-uniform";
  req.tasks = base_tasks;
  req.trials = args.trials;
  req.jobs = args.jobs;
  req.seed = args.seed;
  req.strategy.pilots = 2;
  req.campaign.tenants = tenants;
  req.campaign.arrival.poisson_per_hour = arrival_rate;

  const exp::CampaignMode modes[] = {exp::CampaignMode::kSharedPool,
                                     exp::CampaignMode::kPrivatePilots,
                                     exp::CampaignMode::kSequential};
  std::vector<exp::CampaignCellResult> cells;
  for (const auto mode : modes) {
    auto cell_req = req;
    cell_req.campaign.mode = mode;
    cells.push_back(bench::run_campaign_request(cell_req));
    std::fprintf(stderr, "  campaign: %s done\n", std::string(to_string(mode)).c_str());
  }
  const exp::CampaignSpec& spec = cells.front().spec;

  common::TableWriter table("Campaign TTC — " + std::to_string(tenants) + " tenants, " +
                            std::to_string(args.trials) +
                            " trials (makespan/TTC mean seconds, stddev in parens)");
  table.header({"Mode", "Makespan", "Tenant TTC", "Failures", "Checksum"});
  for (const auto& cell : cells) {
    std::vector<std::string> row{std::string(to_string(cell.spec.mode))};
    row.push_back(common::TableWriter::num(cell.makespan_s.mean(), 0) + " (" +
                  common::TableWriter::num(cell.makespan_s.stddev(), 0) + ")");
    row.push_back(common::TableWriter::num(cell.tenant_ttc_s.mean(), 0) + " (" +
                  common::TableWriter::num(cell.tenant_ttc_s.stddev(), 0) + ")");
    row.push_back(std::to_string(cell.failures));
    row.push_back(hex_checksum(cell.checksum));
    table.row(std::move(row));
  }
  table.render(std::cout);

  // Determinism witness: the shared-mode cell, re-run at fixed worker
  // counts, must reproduce the serial checksum bit for bit.
  const int sweep_jobs[] = {1, 2, 4, 8};
  std::vector<std::uint64_t> sweep_checksums;
  bool deterministic = true;
  for (const int jobs : sweep_jobs) {
    auto sweep_req = req;
    sweep_req.campaign.mode = exp::CampaignMode::kSharedPool;
    sweep_req.jobs = jobs;
    const auto cell = bench::run_campaign_request(sweep_req);
    sweep_checksums.push_back(cell.checksum);
    deterministic = deterministic && cell.checksum == sweep_checksums.front();
  }

  const double shared_s = cells[0].makespan_s.mean();
  const double sequential_s = cells[2].makespan_s.mean();
  const bool shared_wins = cells[0].failures == 0 && shared_s < sequential_s;
  const double speedup = shared_s > 0 ? sequential_s / shared_s : 0.0;
  std::cout << "\nshape check: shared beats sequential "
            << (shared_wins ? "OK" : "VIOLATED") << " (speedup "
            << common::TableWriter::num(speedup, 2) << "x); --jobs 1/2/4/8 checksums "
            << (deterministic ? "identical" : "DIVERGED") << "\n";

  if (!args.csv.empty() && !table.save_csv(args.csv)) {
    std::fprintf(stderr, "cannot write %s\n", args.csv.c_str());
    return 1;
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"bench\": \"campaign_ttc\",\n"
        << "  \"trials\": " << args.trials << ",\n"
        << "  \"seed\": " << args.seed << ",\n"
        << "  \"spec\": {\n"
        << "    \"n_tenants\": " << spec.n_tenants << ",\n"
        << "    \"base_tasks\": " << spec.base_tasks << ",\n"
        << "    \"n_pilots\": " << spec.n_pilots << ",\n"
        << "    \"poisson_per_hour\": " << arrival_rate << ",\n"
        << "    \"pool_idle_grace_s\": " << spec.pool_idle_grace.to_seconds() << ",\n"
        << "    \"walltime_headroom\": " << spec.walltime_headroom << "\n"
        << "  },\n"
        << "  \"modes\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto& cell = cells[i];
      out << "    {\"mode\": \"" << to_string(cell.spec.mode) << "\", "
          << "\"makespan_mean_s\": " << cell.makespan_s.mean() << ", "
          << "\"makespan_stddev_s\": " << cell.makespan_s.stddev() << ", "
          << "\"tenant_ttc_mean_s\": " << cell.tenant_ttc_s.mean() << ", "
          << "\"failures\": " << cell.failures << ", "
          << "\"checksum\": \"" << hex_checksum(cell.checksum) << "\"}"
          << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"jobs_sweep\": [\n";
    for (std::size_t i = 0; i < sweep_checksums.size(); ++i) {
      out << "    {\"jobs\": " << sweep_jobs[i] << ", \"checksum\": \""
          << hex_checksum(sweep_checksums[i]) << "\"}"
          << (i + 1 < sweep_checksums.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"deterministic_across_jobs\": " << (deterministic ? "true" : "false") << ",\n"
        << "  \"shared_vs_sequential_speedup\": " << speedup << ",\n"
        << "  \"shared_beats_sequential\": " << (shared_wins ? "true" : "false") << "\n"
        << "}\n";
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return shared_wins && deterministic ? 0 : 1;
}
