// Micro-benchmarks of the middleware overhead (Trp).
//
// The paper attributes the steeper Tx gradient above 256 tasks to "the
// overheads introduced by the AIMES middleware". These google-benchmark
// cases measure the two mechanisms our model charges for that overhead —
// serialized agent launches and unit-manager dispatch — plus the wall-clock
// cost of the simulator machinery that hosts them, so regressions in either
// the model or the implementation show up here.

#include <benchmark/benchmark.h>

#include "pilot/agent.hpp"
#include "pilot/profiler.hpp"
#include "sim/engine.hpp"

namespace {

using namespace aimes;

/// Virtual Trp of launching N units through one agent (model metric): total
/// virtual time from first enqueue to last completion minus the pure
/// compute time. Reported as the "trp_virtual_s" counter.
void BM_AgentLaunchSerialization(benchmark::State& state) {
  const int n_units = static_cast<int>(state.range(0));
  double trp_s = 0.0;
  for (auto _ : state) {
    sim::Engine engine;
    int done = 0;
    pilot::Agent agent(
        engine, common::PilotId(1), n_units, pilot::AgentOptions{},
        [&](common::UnitId) { ++done; }, nullptr);
    const auto duration = common::SimDuration::minutes(15);
    for (int i = 0; i < n_units; ++i) {
      agent.enqueue(common::UnitId(static_cast<std::uint64_t>(i) + 1), 1, duration);
    }
    engine.run();
    benchmark::DoNotOptimize(done);
    trp_s = (engine.now() - common::SimTime::epoch()).to_seconds() - duration.to_seconds();
  }
  state.counters["trp_virtual_s"] = trp_s;
  state.SetItemsProcessed(state.iterations() * n_units);
}
BENCHMARK(BM_AgentLaunchSerialization)->Arg(8)->Arg(64)->Arg(256)->Arg(1024)->Arg(2048);

/// Wall-clock throughput of the profiler (every state transition goes
/// through it; it must stay cheap).
void BM_ProfilerRecord(benchmark::State& state) {
  pilot::Profiler profiler;
  std::uint64_t uid = 0;
  for (auto _ : state) {
    profiler.record(common::SimTime(static_cast<std::int64_t>(uid)), pilot::Entity::kUnit,
                    ++uid, "EXECUTING", "bench");
    if (profiler.size() > 1u << 20) profiler.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerRecord);

/// Trace analysis cost over a large synthetic trace.
void BM_TraceIntervalQuery(benchmark::State& state) {
  pilot::Profiler profiler;
  const std::uint64_t n = 4096;
  for (std::uint64_t i = 0; i < n; ++i) {
    profiler.record(common::SimTime(static_cast<std::int64_t>(i * 10)), pilot::Entity::kUnit,
                    i, "EXECUTING", "");
    profiler.record(common::SimTime(static_cast<std::int64_t>(i * 10 + 900)),
                    pilot::Entity::kUnit, i, "PENDING_OUTPUT_STAGING", "");
  }
  for (auto _ : state) {
    auto set = profiler.intervals(pilot::Entity::kUnit, "EXECUTING", "PENDING_OUTPUT_STAGING");
    benchmark::DoNotOptimize(set.union_length());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TraceIntervalQuery);

}  // namespace

BENCHMARK_MAIN();
