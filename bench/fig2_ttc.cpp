// Reproduces Figure 2: "Comparison of TTC for experiments 1-4 shows large
// variations of the TTC in experiment 1 and 2 and smooth progression of TTC
// in experiment 3 and 4."
//
// Prints mean TTC per (experiment, #tasks) cell over repeated seeded trials
// — the four series of the paper's figure — plus the per-cell standard
// deviation so the "large variation vs smooth progression" contrast is
// visible in the numbers themselves. Expected shape: the late-binding
// experiments (3, 4) sit below and vary less than the early-binding ones
// (1, 2) at every size.

#include <iostream>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace aimes;
  const auto args = bench::BenchArgs::parse(argc, argv, 12);

  const auto experiments = exp::table1_experiments();
  const auto sizes = exp::table1_task_counts();

  common::TableWriter table("Figure 2 — TTC comparison, mean seconds over " +
                            std::to_string(args.trials) + " trials (stddev in parens)");
  std::vector<std::string> header{"#Tasks"};
  for (const auto& e : experiments) header.push_back("Exp " + std::to_string(e.id));
  table.header(header);

  for (int tasks : sizes) {
    std::vector<std::string> row{std::to_string(tasks)};
    for (const auto& e : experiments) {
      const auto cell = bench::run_cell_request(bench::cell_request(
          args, e.id, tasks, static_cast<std::uint64_t>(e.id) * 100000));
      row.push_back(common::TableWriter::num(cell.ttc_s.mean(), 0) + " (" +
                    common::TableWriter::num(cell.ttc_s.stddev(), 0) + ")");
      if (cell.failures > 0) row.back() += " [" + std::to_string(cell.failures) + " fail]";
    }
    table.row(std::move(row));
    std::fprintf(stderr, "  fig2: %d tasks done\n", tasks);
  }
  table.render(std::cout);

  std::cout << "\nshape check (paper): Exp 3/4 below Exp 1/2 at every size; Exp 1/2 stddev\n"
               "comparable to their mean (erratic), Exp 3/4 stddev a small fraction of it.\n";
  if (!args.csv.empty() && !table.save_csv(args.csv)) {
    std::fprintf(stderr, "cannot write %s\n", args.csv.c_str());
    return 1;
  }
  return 0;
}
