// Micro-benchmarks of the simulation substrate.
//
// The virtual laboratory's value depends on running "a year of machine-room
// dynamics" in seconds; these cases keep the discrete-event engine, the
// batch schedulers and the transfer manager honest about their wall-clock
// costs.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "cluster/batch_scheduler.hpp"
#include "cluster/site.hpp"
#include "cluster/testbed.hpp"
#include "cluster/workload.hpp"
#include "bench/bench_util.hpp"
#include "net/staging.hpp"
#include "sim/engine.hpp"
#include "sim/sharded_engine.hpp"

namespace {

using namespace aimes;

/// Raw event throughput of the engine.
void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t fired = 0;
    for (int i = 0; i < 10000; ++i) {
      engine.schedule(common::SimDuration::millis(i), [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EngineEventThroughput);

/// Cancellation-heavy pattern: schedule two events, cancel one, fire one —
/// the timeout-guard idiom the middleware uses everywhere (every transfer,
/// job and pilot arms a timeout it almost always cancels). The slab engine
/// removes in place in O(log n); the tombstone design this replaced paid a
/// hash-map erase per cancel and dragged dead entries through the heap.
void BM_EngineCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t fired = 0;
    // Keep a rolling window of pending timeouts, cancelling the oldest as
    // each new pair arrives, so the heap constantly churns mid-structure.
    std::vector<common::EventId> guards;
    guards.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      guards.push_back(engine.schedule(common::SimDuration::seconds(60 + i),
                                       [&fired] { fired += 100; }));
      engine.schedule(common::SimDuration::millis(i), [&fired] { ++fired; });
      if (i >= 64) {
        engine.cancel(guards[static_cast<std::size_t>(i - 64)]);
        guards[static_cast<std::size_t>(i - 64)] = common::EventId(0);
      }
    }
    for (const auto id : guards) engine.cancel(id);
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  // 10k fires + 10k cancels per iteration.
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_EngineCancelHeavy);

/// Same-timestamp burst: thousands of events land on one tick, as happens
/// when a pilot activates and releases a whole bag of compute units at once.
/// Exercises the (when, seq) tie-break path, where ordering falls entirely
/// to the side-array sequence numbers.
void BM_EngineSameTimestampBurst(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t fired = 0;
    for (int burst = 0; burst < 10; ++burst) {
      const auto at = common::SimDuration::seconds(burst + 1);
      for (int i = 0; i < 1000; ++i) {
        engine.schedule(at, [&fired] { ++fired; });
      }
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EngineSameTimestampBurst);

/// One EASY-backfill pass over a queue of the given depth.
void BM_EasyBackfillPass(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  cluster::EasyBackfillScheduler scheduler;
  cluster::SchedulerView view;
  view.now = common::SimTime(1000);
  view.total_nodes = 1024;
  view.free_nodes = 16;
  for (int i = 0; i < depth; ++i) {
    view.pending.push_back({common::JobId(static_cast<std::uint64_t>(i) + 1), (i % 5 == 0) ? 256 : 2,
                            common::SimDuration::hours(2), common::SimTime(0)});
  }
  for (int i = 0; i < 64; ++i) {
    view.running.push_back({common::JobId(10000 + static_cast<std::uint64_t>(i)), 16,
                            common::SimTime(1000) + common::SimDuration::minutes(i)});
  }
  for (auto _ : state) {
    auto picks = scheduler.select(view);
    benchmark::DoNotOptimize(picks);
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_EasyBackfillPass)->Arg(32)->Arg(256)->Arg(1024);

/// A full simulated day of one busy site (workload + batch queue).
void BM_SiteDayUnderLoad(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    cluster::SiteConfig cfg;
    cfg.name = "bench-site";
    cfg.nodes = 512;
    cfg.cores_per_node = 16;
    cluster::ClusterSite site(engine, common::SiteId(1), cfg);
    cluster::WorkloadConfig load;
    load.horizon = common::SimDuration::hours(24);
    cluster::WorkloadGenerator generator(engine, site, load, common::Rng(99));
    generator.prime();
    generator.start();
    engine.run_until(common::SimTime::epoch() + common::SimDuration::hours(24));
    benchmark::DoNotOptimize(site.wait_history().size());
  }
}
BENCHMARK(BM_SiteDayUnderLoad);

/// 512 concurrent 1 MiB staging flows through one fair-shared channel.
void BM_ConcurrentStaging(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    net::Topology topology;
    topology.add_site(common::SiteId(1), net::LinkSpec{});
    net::TransferManager transfers(engine, topology);
    net::StagingService staging(engine, transfers);
    int done = 0;
    for (int i = 0; i < 512; ++i) {
      auto status = staging.stage("f" + std::to_string(i), common::SiteId(1),
                                  net::Direction::kIn, common::DataSize::mib(1),
                                  [&done](const net::StagingDone&) { ++done; });
      benchmark::DoNotOptimize(status);
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_ConcurrentStaging);

/// Coordination overhead of the sharded substrate: the same 10k-event burden
/// as BM_EngineEventThroughput, spread round-robin across N shard engines and
/// driven through the conservative window loop with one worker, so the delta
/// against the single-engine case is pure windowing/barrier cost (no actual
/// parallelism pollutes the per-event number).
void BM_ShardedEngineEventThroughput(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::ShardedEngine::Options options;
    options.shards = shards;
    options.workers = 1;
    options.lookahead = common::SimDuration::millis(25);
    sim::ShardedEngine world(options);
    std::uint64_t fired = 0;
    for (int i = 0; i < 10000; ++i) {
      world.shard(static_cast<std::size_t>(i) % shards)
          .schedule(common::SimDuration::millis(i % 500), [&fired] { ++fired; });
    }
    world.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_ShardedEngineEventThroughput)->Arg(1)->Arg(4)->Arg(8);

}  // namespace

// Custom main (instead of BENCHMARK_MAIN): stamps the *aimes* build flavor
// into the JSON context — the system benchmark library's own
// `library_build_type` says nothing about our flags — and refuses to record
// a --benchmark_out file from a debug build (BENCH_substrate.json is perf
// evidence; see bench_util.hpp).
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) {
      aimes::bench::require_release_artifacts("micro_substrate");
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("aimes_build_type", aimes::bench::kBuildType);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
