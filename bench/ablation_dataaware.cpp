// Ablation: data-aware resource selection for data-intensive applications.
//
// The paper defers data-heavy strategies to future work but names the
// decisions they will need: "compute/data affinity, amount of network
// bandwidth available between the origin of the data and the target
// resource(s)" (§IV.B). Our testbed's sites differ 5x in WAN bandwidth
// (80-400 MiB/s); this harness runs a data-heavy bag (64 MiB per task) with
// the planner's bandwidth weighting off (the paper's wait-only ranking) and
// on, and compares TTC and its staging component.
//
// Expected shape: with weighting on, the planner steers pilots to fat-pipe
// sites; Ts (and at this data volume, TTC) drops, at the cost of sometimes
// accepting a slightly worse queue.

#include <iostream>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "core/aimes.hpp"
#include "sim/replica_pool.hpp"
#include "skeleton/profiles.hpp"

int main(int argc, char** argv) {
  using namespace aimes;
  const auto args = bench::BenchArgs::parse(argc, argv, 12);
  const int tasks = 256;
  const double mib_per_task = 256.0;

  common::TableWriter table("Ablation — data-aware selection (" + std::to_string(tasks) +
                            " tasks x 256 MiB input, " + std::to_string(args.trials) +
                            " trials)");
  table.header({"Selection ranking", "TTC mean", "Ts mean", "Tw mean", "failures"});

  for (const double weight : {0.0, 2.0}) {
    struct Trial {
      bool ok = false;
      double ttc = 0;
      double ts = 0;
      double tw = 0;
    };
    sim::ReplicaPool pool(args.jobs < 0 ? 1u : static_cast<unsigned>(args.jobs));
    const auto results = pool.map<Trial>(
        static_cast<std::size_t>(args.trials), [&](std::size_t t) {
          const std::uint64_t seed = args.seed + static_cast<std::uint64_t>(t) + 1;
          core::AimesConfig config;
          config.seed = seed;
          core::Aimes aimes(config);
          aimes.start();

          auto spec = skeleton::profiles::bag_of_tasks(
              tasks, common::DistributionSpec::truncated_normal(900, 300, 60, 1800));
          spec.stages[0].input_size =
              common::DistributionSpec::constant(mib_per_task * 1024 * 1024);
          const auto app = skeleton::materialize(spec, seed);

          core::PlannerConfig planner;
          planner.binding = core::Binding::kLate;
          planner.n_pilots = 2;
          planner.selection = core::SiteSelection::kPredictedWait;
          planner.bandwidth_weight = weight;
          auto result = aimes.run(app, planner);
          Trial trial;
          if (!result.ok() || !result->report.success) return trial;
          trial.ok = true;
          trial.ttc = result->report.ttc.ttc.to_seconds();
          trial.ts = result->report.ttc.ts.to_seconds();
          trial.tw = result->report.ttc.tw.to_seconds();
          return trial;
        });
    common::Summary ttc;
    common::Summary ts;
    common::Summary tw;
    int failures = 0;
    for (const auto& trial : results) {
      if (!trial.ok) {
        ++failures;
        continue;
      }
      ttc.add(trial.ttc);
      ts.add(trial.ts);
      tw.add(trial.tw);
    }
    table.row({weight == 0.0 ? "wait only (paper)" : "wait + bandwidth",
               common::TableWriter::num(ttc.mean(), 0), common::TableWriter::num(ts.mean(), 0),
               common::TableWriter::num(tw.mean(), 0), std::to_string(failures)});
    std::fprintf(stderr, "  weight %.1f done\n", weight);
  }
  table.render(std::cout);
  std::cout << "\nshape check: bandwidth weighting cuts the staging component Ts. Whether\n"
               "TTC follows depends on how much queue the fat-pipe sites carry — the\n"
               "compute/data-affinity TRADEOFF the paper defers to future work, measured.\n";
  if (!args.csv.empty() && !table.save_csv(args.csv)) return 1;
  return 0;
}
