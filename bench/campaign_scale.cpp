// Campaign scale: SLO-aware admission + site breakers vs the open-door
// baseline, under sustained faults and over-subscription.
//
// The campaign tier accepts unbounded tenant load; ISSUE 6's claim is that
// under over-subscription with a flapping site, the admission ladder
// (admit -> queue -> degrade -> shed) plus circuit breakers turns unbounded
// collapse into *policied* degradation: per-tenant admission wait stays
// under the declared bound, tenants are shed only with a typed reason, and
// campaign goodput (units completed *within their tenant's SLO deadline*
// per makespan hour — late work is badput, not goodput) beats the
// no-admission baseline by >= 1.3x in the over-subscribed faulted cell.
//
// Cells sweep tenants x arrival rate x fault plan on the two-site mini
// testbed (1024 cores); every cell runs twice — baseline (admission and
// breakers off, recovery armed because faults are) and policy (admission +
// breakers + recovery). The policy cell is re-run at --jobs 1/2/4/8 and the
// FNV-1a trial checksums compared (the determinism contract). A final
// microbench pushes 10k requests through a bare AdmissionController to
// witness that admission stays off the hot path (O(log n) queue ops).
//
// --json records everything (BENCH_campaign.json is the PR's evidence);
// exits non-zero when the goodput ratio, the wait bound, the typed-shed
// invariant, or the checksum sweep fails.
//
// Stays on the library API (not exp::RunRequest): it calibrates admission
// internals (capacity_factor, degrade_factor, shed_ceiling) and builds
// programmatic fault plans on the mini testbed — operator-invisible knobs
// the request schema deliberately does not expose.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "cluster/testbed.hpp"
#include "common/table.hpp"
#include "core/admission.hpp"
#include "exp/campaign.hpp"

namespace {

using namespace aimes;

std::string hex_checksum(std::uint64_t checksum) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, checksum);
  return buf;
}

struct CellConfig {
  int tenants = 0;
  double rate_per_hour = 0.0;
  bool faulted = false;
};

struct CellOutcome {
  CellConfig config;
  exp::CampaignCellResult baseline;
  exp::CampaignCellResult policy;
  double goodput_ratio = 0.0;
  double shed_rate = 0.0;
  bool wait_bounded = true;
};

core::AdmissionPolicy admission_policy() {
  core::AdmissionPolicy policy;
  policy.enabled = true;
  // The bench testbed keeps ~10% background utilization, so roughly 0.8 of
  // the raw 1024 cores are deliverable to pilots after scheduling slack; an
  // operator calibrates capacity_factor to deliverable capacity, not
  // nameplate cores. Committing the full 1024 would re-create the open
  // door's queueing collapse behind the controller's back.
  policy.capacity_factor = 0.8;
  policy.max_queue_wait = common::SimDuration::minutes(30);
  policy.degrade_factor = 0.5;
  policy.shed_ceiling = 1.3;
  return policy;
}

cluster::BreakerPolicy breaker_policy() {
  cluster::BreakerPolicy policy;
  policy.enabled = true;
  policy.min_events = 2;
  policy.trip_threshold = 0.4;
  policy.cooldown = common::SimDuration::minutes(20);
  return policy;
}

/// 10k arriving tenants against a bare controller: request, then release in
/// arrival order, timing the wall clock. The queue is an ordered map, so
/// this is the O(log n) evidence for the 10k-tenant tier.
double controller_10k_us_per_op(int n_tenants) {
  core::AdmissionPolicy policy = admission_policy();
  policy.capacity_factor = 0.1;  // force most arrivals through the queue
  core::AdmissionController controller(policy, 1024);
  const auto t0 = std::chrono::steady_clock::now();
  common::SimTime now;
  std::size_t ops = 0;
  for (int t = 1; t <= n_tenants; ++t) {
    core::AdmissionRequest req;
    req.tenant = t;
    req.priority = t % 3;
    req.slo = static_cast<core::SloClass>(t % 3);
    req.pilots = 2;
    req.cores_per_pilot = 8;
    req.units = 16;
    (void)controller.request(req, now);
    ++ops;
    now = now + common::SimDuration::seconds(1);
    if (t % 4 == 0) {
      ops += controller.release(t - 2, now).size() + 1;
      ops += controller.resolve_expired(now).size() + 1;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  return ops > 0 ? us / static_cast<double>(ops) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args;
  args.trials = 4;
  std::string json_path;
  int tenants = 1000;
  int base_tasks = 12;
  double rate = 200.0;
  common::cli::Parser cli(argc > 0 ? argv[0] : "campaign_scale");
  args.declare(cli);
  cli.string_option("--json", json_path, "also record the sweep as JSON", "PATH");
  cli.int_option("--tenants", tenants, 8, 100000, "tenants in the largest cell (1000)");
  cli.int_option("--base-tasks", base_tasks, 1, 100000, "smallest tenant's task count (12)");
  cli.double_option("--rate", rate, 0.001, 1e6, "Poisson arrivals per hour (200)");
  args.finish(cli, argc, argv);
  if (args.quick && !cli.seen("--tenants")) tenants = std::max(32, tenants / 8);

  // The sweep: a lightly loaded fault-free cell (admission should be a
  // no-op: nothing queued, nothing shed), a burst-overload faulted cell
  // (every tenant inside ~40 minutes), and the headline cell — >= 1k
  // tenants arriving at a sustained ~1.5x of deliverable capacity with the
  // flapping site.
  // The light cell must be *actually* light in steady state: commitment is
  // held from admit to tenant completion, so at residency ~1.5 h the cell's
  // rate must keep (rate x mean ask x residency) well under the capacity
  // share or the no-shed invariant below is measuring the wrong thing.
  const std::vector<CellConfig> configs = {
      {std::max(8, tenants / 8), rate / 32.0, false},
      {std::max(8, tenants / 4), rate * 2.0, true},
      {tenants, rate, true},
  };

  exp::WorldTweaks faulted_tweaks;
  faulted_tweaks.warmup = common::SimDuration::hours(2);
  // The two-site mini pool, but with the background load thinned to ~10%
  // utilization: the bench studies overload *from tenants* (and faults), so
  // site capacity must be mostly deliverable or every cell — light or not —
  // drowns in background queueing and the comparison measures the testbed,
  // not the controller.
  faulted_tweaks.testbed = cluster::mini_testbed(common::SimDuration::hours(72));
  for (auto& site : faulted_tweaks.testbed) {
    site.load.target_utilization = 0.10;
    site.load.burst_probability = 0.01;
  }
  // A site that dies for 20 of every 60 minutes, indefinitely on the cell's
  // time scale: the sustained-fault half of the scenario.
  faulted_tweaks.faults.plan.flap_site("beta-sim", common::SimDuration::minutes(30),
                                  common::SimDuration::minutes(20),
                                  common::SimDuration::minutes(60), 48);
  exp::WorldTweaks clean_tweaks = faulted_tweaks;
  clean_tweaks.faults = {};

  std::vector<CellOutcome> cells;
  for (const auto& config : configs) {
    exp::CampaignSpec spec;
    spec.n_tenants = config.tenants;
    spec.base_tasks = base_tasks;
    spec.n_pilots = 2;
    spec.arrival.poisson_per_hour = config.rate_per_hour;
    spec.recovery.enabled = config.faulted;  // faults make recovery part of the run
    // Both arms declare the same SLO mix — the baseline ignores it when
    // admitting, but its tenants still have deadlines their work must meet
    // to count as goodput.
    spec.admission.priorities = {0, 1, 2};
    spec.admission.slos = {core::SloClass::kInteractive, core::SloClass::kStandard,
                 core::SloClass::kBatch};
    const auto& tweaks = config.faulted ? faulted_tweaks : clean_tweaks;

    CellOutcome cell;
    cell.config = config;
    cell.baseline = exp::run_campaign_cell(spec, args.trials, args.seed, tweaks, args.jobs);

    spec.admission.policy = admission_policy();
    spec.admission.breaker = breaker_policy();
    cell.policy = exp::run_campaign_cell(spec, args.trials, args.seed, tweaks, args.jobs);

    // Floor the denominator at one unit per hour: a baseline that delivered
    // literally nothing on time would otherwise make the ratio degenerate
    // (0/0 or division by zero) instead of the huge number it deserves.
    const double base_goodput = std::max(1.0, cell.baseline.slo_goodput_uph.mean());
    cell.goodput_ratio = cell.policy.slo_goodput_uph.mean() / base_goodput;
    const std::size_t total =
        static_cast<std::size_t>(config.tenants) * static_cast<std::size_t>(args.trials);
    cell.shed_rate =
        total > 0 ? static_cast<double>(cell.policy.tenants_shed) / static_cast<double>(total)
                  : 0.0;
    cell.wait_bounded = cell.policy.admission_wait_s.empty() ||
                        cell.policy.admission_wait_s.max() <=
                            spec.admission.policy.max_queue_wait.to_seconds() + 1.0;
    cells.push_back(cell);
    std::fprintf(stderr, "  cell %d tenants @ %.0f/h%s done (goodput x%.2f, shed %.1f%%)\n",
                 config.tenants, config.rate_per_hour, config.faulted ? " +faults" : "",
                 cell.goodput_ratio, 100.0 * cell.shed_rate);
  }

  common::TableWriter table("Campaign scale — admission + breakers vs open door (" +
                            std::to_string(args.trials) + " trials/cell)");
  table.header({"Tenants", "Rate/h", "Faults", "Goodput x", "Shed %", "Wait p100 s",
                "SLO viol b/p", "Jain b/p", "Base fail", "Policy fail"});
  for (const auto& cell : cells) {
    table.row({std::to_string(cell.config.tenants),
               common::TableWriter::num(cell.config.rate_per_hour, 0),
               cell.config.faulted ? "flap" : "none",
               common::TableWriter::num(cell.goodput_ratio, 2),
               common::TableWriter::num(100.0 * cell.shed_rate, 1),
               common::TableWriter::num(
                   cell.policy.admission_wait_s.empty() ? 0.0
                                                        : cell.policy.admission_wait_s.max(),
                   0),
               std::to_string(cell.baseline.slo_violations) + "/" +
                   std::to_string(cell.policy.slo_violations),
               common::TableWriter::num(cell.baseline.fairness.mean(), 2) + "/" +
                   common::TableWriter::num(cell.policy.fairness.mean(), 2),
               std::to_string(cell.baseline.failures), std::to_string(cell.policy.failures)});
  }
  table.render(std::cout);

  // Determinism witness on the big faulted policy cell.
  const int sweep_jobs[] = {1, 2, 4, 8};
  std::vector<std::uint64_t> sweep_checksums;
  bool deterministic = true;
  {
    exp::CampaignSpec spec;
    spec.n_tenants = configs.back().tenants;
    spec.base_tasks = base_tasks;
    spec.n_pilots = 2;
    spec.arrival.poisson_per_hour = configs.back().rate_per_hour;
    spec.recovery.enabled = true;
    spec.admission.policy = admission_policy();
    spec.admission.breaker = breaker_policy();
    spec.admission.priorities = {0, 1, 2};
    spec.admission.slos = {core::SloClass::kInteractive, core::SloClass::kStandard,
                 core::SloClass::kBatch};
    for (const int jobs : sweep_jobs) {
      const auto cell = exp::run_campaign_cell(spec, args.trials, args.seed, faulted_tweaks, jobs);
      sweep_checksums.push_back(cell.checksum);
      deterministic = deterministic && cell.checksum == sweep_checksums.front();
    }
  }

  const double controller_us = controller_10k_us_per_op(10000);

  // Shape checks: the headline over-subscribed faulted cell must show the
  // >= 1.3x goodput claim; the lightly loaded cell must shed nobody (sheds
  // happen only where policy says overload); every cell's wait stays under
  // the declared bound; the checksum sweep must agree.
  const CellOutcome& headline = cells.back();
  const bool goodput_ok = headline.goodput_ratio >= 1.3;
  const bool no_idle_sheds = cells.front().shed_rate == 0.0;
  bool waits_ok = true;
  for (const auto& cell : cells) waits_ok = waits_ok && cell.wait_bounded;
  std::cout << "\nshape check: goodput x" << common::TableWriter::num(headline.goodput_ratio, 2)
            << " (need >= 1.3) " << (goodput_ok ? "OK" : "VIOLATED")
            << " | idle cell sheds none " << (no_idle_sheds ? "OK" : "VIOLATED")
            << " | waits bounded " << (waits_ok ? "OK" : "VIOLATED")
            << " | --jobs 1/2/4/8 checksums " << (deterministic ? "identical" : "DIVERGED")
            << "\ncontroller: 10k tenants through the bare ladder, "
            << common::TableWriter::num(controller_us, 3) << " us/op\n";

  if (!args.csv.empty() && !table.save_csv(args.csv)) {
    std::fprintf(stderr, "cannot write %s\n", args.csv.c_str());
    return 1;
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"bench\": \"campaign_scale\",\n"
        << "  \"trials\": " << args.trials << ",\n"
        << "  \"seed\": " << args.seed << ",\n"
        << "  \"base_tasks\": " << base_tasks << ",\n"
        << "  \"testbed_cores\": 1024,\n"
        << "  \"admission\": {\"capacity_factor\": " << admission_policy().capacity_factor
        << ", \"max_queue_wait_s\": " << admission_policy().max_queue_wait.to_seconds()
        << ", \"degrade_factor\": " << admission_policy().degrade_factor
        << ", \"shed_ceiling\": " << admission_policy().shed_ceiling << "},\n"
        << "  \"breaker\": {\"min_events\": " << breaker_policy().min_events
        << ", \"trip_threshold\": " << breaker_policy().trip_threshold
        << ", \"cooldown_s\": " << breaker_policy().cooldown.to_seconds() << "},\n"
        << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto& cell = cells[i];
      out << "    {\"tenants\": " << cell.config.tenants << ", \"rate_per_hour\": "
          << cell.config.rate_per_hour << ", \"faulted\": "
          << (cell.config.faulted ? "true" : "false") << ",\n"
          << "     \"baseline\": {\"goodput_uph_mean\": " << cell.baseline.goodput_uph.mean()
          << ", \"slo_goodput_uph_mean\": " << cell.baseline.slo_goodput_uph.mean()
          << ", \"slo_violations\": " << cell.baseline.slo_violations
          << ", \"fairness_mean\": " << cell.baseline.fairness.mean()
          << ", \"makespan_mean_s\": " << cell.baseline.makespan_s.mean()
          << ", \"failures\": " << cell.baseline.failures << ", \"checksum\": \""
          << hex_checksum(cell.baseline.checksum) << "\"},\n"
          << "     \"policy\": {\"goodput_uph_mean\": " << cell.policy.goodput_uph.mean()
          << ", \"slo_goodput_uph_mean\": " << cell.policy.slo_goodput_uph.mean()
          << ", \"slo_violations\": " << cell.policy.slo_violations
          << ", \"fairness_mean\": " << cell.policy.fairness.mean()
          << ", \"makespan_mean_s\": " << cell.policy.makespan_s.mean()
          << ", \"tenants_admitted\": " << cell.policy.tenants_admitted
          << ", \"tenants_shed\": " << cell.policy.tenants_shed
          << ", \"admission_wait_max_s\": "
          << (cell.policy.admission_wait_s.empty() ? 0.0 : cell.policy.admission_wait_s.max())
          << ", \"failures\": " << cell.policy.failures << ", \"checksum\": \""
          << hex_checksum(cell.policy.checksum) << "\"},\n"
          << "     \"goodput_ratio\": " << cell.goodput_ratio << ", \"shed_rate\": "
          << cell.shed_rate << ", \"wait_bounded\": "
          << (cell.wait_bounded ? "true" : "false") << "}"
          << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"jobs_sweep\": [\n";
    for (std::size_t i = 0; i < sweep_checksums.size(); ++i) {
      out << "    {\"jobs\": " << sweep_jobs[i] << ", \"checksum\": \""
          << hex_checksum(sweep_checksums[i]) << "\"}"
          << (i + 1 < sweep_checksums.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"deterministic_across_jobs\": " << (deterministic ? "true" : "false") << ",\n"
        << "  \"goodput_ratio\": " << headline.goodput_ratio << ",\n"
        << "  \"shed_rate\": " << headline.shed_rate << ",\n"
        << "  \"wait_bounded\": " << (waits_ok ? "true" : "false") << ",\n"
        << "  \"controller_10k_us_per_op\": " << controller_us << "\n"
        << "}\n";
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return goodput_ok && no_idle_sheds && waits_ok && deterministic ? 0 : 1;
}
