// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/cli.hpp"
#include "exp/request.hpp"

namespace aimes::bench {

/// Build flavor of the *aimes* translation units (the system benchmark
/// library reports its own `library_build_type`, which is not ours).
#ifdef NDEBUG
inline constexpr const char* kBuildType = "release";
#else
inline constexpr const char* kBuildType = "debug";
#endif

/// Checked-in BENCH_*.json files are perf evidence; numbers from a debug
/// build would quietly undercut every threshold they assert. Every harness
/// calls this before recording JSON and dies unless the binary was built
/// with NDEBUG (Release/RelWithDebInfo). AIMES_ALLOW_DEBUG_BENCH=1 is the
/// explicit escape hatch for local experiments that never get committed.
inline void require_release_artifacts(const char* bench) {
  if (kBuildType[0] == 'r') return;
  const char* allow = std::getenv("AIMES_ALLOW_DEBUG_BENCH");
  if (allow != nullptr && allow[0] == '1') {
    std::fprintf(stderr, "%s: WARNING: recording evidence from a DEBUG build\n", bench);
    return;
  }
  std::fprintf(stderr,
               "%s: refusing to record benchmark evidence from a debug build;\n"
               "reconfigure with -DCMAKE_BUILD_TYPE=Release (or set\n"
               "AIMES_ALLOW_DEBUG_BENCH=1 for a local, never-committed run)\n",
               bench);
  std::exit(3);
}

/// Command-line knobs common to every reproduction harness:
///   --trials N   trials per cell (default varies per bench; N >= 1)
///   --seed S     base seed (default 20160418, the paper's IPDPS date)
///   --jobs N     worker threads for trial replicas (default: hardware
///                concurrency; 1 = legacy serial loop). Output is
///                bit-identical for every value of N.
///   --csv PATH   also write the series as CSV
///   --quick      1/4 of the default trials (CI-friendly)
///
/// Parsing runs through common::cli, so malformed values (`--trials x`)
/// die loudly instead of silently running an empty bench.
struct BenchArgs {
  int trials;
  std::uint64_t seed = 20160418;
  int jobs = 0;  // 0 = hardware concurrency (sim::ReplicaPool resolves it)
  std::string csv;
  bool quick = false;

  /// Registers the common options on `cli`. Harnesses with extra flags add
  /// theirs to the same parser before calling finish().
  void declare(common::cli::Parser& cli) {
    cli.int_option("--trials", trials, 1, 1000000, "trials per cell");
    cli.uint64_option("--seed", seed, "base seed", "S");
    cli.int_option("--jobs", jobs, 1, 4096, "worker threads (default: hardware concurrency)");
    cli.string_option("--csv", csv, "also write the series as CSV", "PATH");
    cli.flag("--quick", quick, "1/4 of the default trials (CI-friendly)");
  }

  /// Runs the parse; exits 0 on --help and 2 on bad arguments (the historic
  /// harness contract). Applies --quick's trial scaling unless --trials was
  /// given explicitly.
  void finish(common::cli::Parser& cli, int argc, char** argv) {
    auto parsed = cli.parse(argc, argv);
    if (!parsed) {
      std::fprintf(stderr, "%s\n", parsed.error().c_str());
      std::exit(2);
    }
    if (parsed->help) {
      std::fputs(cli.usage().c_str(), stdout);
      std::exit(0);
    }
    if (quick && !cli.seen("--trials")) trials = std::max(2, trials / 4);
  }

  static BenchArgs parse(int argc, char** argv, int default_trials) {
    BenchArgs args;
    args.trials = default_trials;
    common::cli::Parser cli(argc > 0 ? argv[0] : "bench");
    args.declare(cli);
    args.finish(cli, argc, argv);
    return args;
  }
};

/// RunRequest for one Table I experiment cell under this bench's args — the
/// exact request `aimesc submit --experiment E` carries, so a bench cell and
/// a daemon submission run bit-identical trials. `seed_offset` reproduces
/// the per-series seed spreading the harnesses use.
[[nodiscard]] inline exp::RunRequest cell_request(const BenchArgs& args, int experiment_id,
                                                 int tasks, std::uint64_t seed_offset = 0) {
  exp::RunRequest req;
  req.strategy.experiment = experiment_id;
  req.tasks = tasks;
  req.trials = args.trials;
  req.jobs = args.jobs;
  req.seed = args.seed + seed_offset;
  return req;
}

/// Executes a single-app request and returns its cell. An invalid request
/// or failed execution is a bench bug, not a data point — dies loudly.
[[nodiscard]] inline exp::CellResult run_cell_request(const exp::RunRequest& req) {
  exp::RunResult result = exp::execute(req);
  if (!result.ok) {
    std::fprintf(stderr, "bench: %s\n", result.error.c_str());
    std::exit(2);
  }
  return std::move(result.cell);
}

/// Campaign counterpart of run_cell_request.
[[nodiscard]] inline exp::CampaignCellResult run_campaign_request(const exp::RunRequest& req) {
  exp::RunResult result = exp::execute(req);
  if (!result.ok) {
    std::fprintf(stderr, "bench: %s\n", result.error.c_str());
    std::exit(2);
  }
  return std::move(result.campaign);
}

}  // namespace aimes::bench
