// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace aimes::bench {

/// Command-line knobs common to every reproduction harness:
///   --trials N   trials per cell (default varies per bench)
///   --seed S     base seed (default 20160418, the paper's IPDPS date)
///   --csv PATH   also write the series as CSV
///   --quick      1/4 of the default trials (CI-friendly)
struct BenchArgs {
  int trials;
  std::uint64_t seed = 20160418;
  std::string csv;
  bool quick = false;

  static BenchArgs parse(int argc, char** argv, int default_trials) {
    BenchArgs args;
    args.trials = default_trials;
    bool trials_given = false;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", a.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (a == "--trials") {
        args.trials = std::atoi(next());
        trials_given = true;
      } else if (a == "--seed") {
        args.seed = std::strtoull(next(), nullptr, 10);
      } else if (a == "--csv") {
        args.csv = next();
      } else if (a == "--quick") {
        args.quick = true;
      } else if (a == "--help" || a == "-h") {
        std::printf("usage: %s [--trials N] [--seed S] [--csv PATH] [--quick]\n", argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown argument '%s' (try --help)\n", a.c_str());
        std::exit(2);
      }
    }
    if (args.quick && !trials_given) args.trials = std::max(2, args.trials / 4);
    return args;
  }
};

}  // namespace aimes::bench
