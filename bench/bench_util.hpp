// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace aimes::bench {

/// Command-line knobs common to every reproduction harness:
///   --trials N   trials per cell (default varies per bench; N >= 1)
///   --seed S     base seed (default 20160418, the paper's IPDPS date)
///   --jobs N     worker threads for trial replicas (default: hardware
///                concurrency; 1 = legacy serial loop). Output is
///                bit-identical for every value of N.
///   --csv PATH   also write the series as CSV
///   --quick      1/4 of the default trials (CI-friendly)
struct BenchArgs {
  int trials;
  std::uint64_t seed = 20160418;
  int jobs = 0;  // 0 = hardware concurrency (sim::ReplicaPool resolves it)
  std::string csv;
  bool quick = false;

  /// Strict integer parse: the whole token must be a base-10 integer in
  /// range. `std::atoi`'s silent 0 on garbage once turned `--trials x` into
  /// an empty bench that "passed"; now it dies loudly.
  static long long parse_int(const char* text, const char* flag, long long min_value,
                             long long max_value) {
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || value < min_value ||
        value > max_value) {
      std::fprintf(stderr, "invalid value '%s' for %s (expected integer in [%lld, %lld])\n",
                   text, flag, min_value, max_value);
      std::exit(2);
    }
    return value;
  }

  static BenchArgs parse(int argc, char** argv, int default_trials) {
    BenchArgs args;
    args.trials = default_trials;
    bool trials_given = false;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", a.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (a == "--trials") {
        args.trials = static_cast<int>(parse_int(next(), "--trials", 1, 1000000));
        trials_given = true;
      } else if (a == "--seed") {
        // Seeds are unsigned; parse through the signed checker so "-1" and
        // other garbage are rejected instead of wrapping.
        args.seed = static_cast<std::uint64_t>(
            parse_int(next(), "--seed", 0, 9223372036854775807LL));
      } else if (a == "--jobs") {
        args.jobs = static_cast<int>(parse_int(next(), "--jobs", 1, 4096));
      } else if (a == "--csv") {
        args.csv = next();
      } else if (a == "--quick") {
        args.quick = true;
      } else if (a == "--help" || a == "-h") {
        std::printf(
            "usage: %s [--trials N] [--seed S] [--jobs N] [--csv PATH] [--quick]\n",
            argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown argument '%s' (try --help)\n", a.c_str());
        std::exit(2);
      }
    }
    if (args.quick && !trials_given) args.trials = std::max(2, args.trials / 4);
    return args;
  }
};

}  // namespace aimes::bench
