// Reproduces Table I: the experiment design matrix.
//
// "Skeleton applications and execution strategies used for the experiments.
// Each application task runs on a single core. Tx = estimated workflow
// execution time; Ts = estimated total data staging time; Trp = AIMES
// middleware overhead."
//
// For every experiment and application size this harness derives the actual
// strategy through the planner (pilot size = #tasks / #pilots, walltime =
// (Tx + Ts + Trp) x #pilots for late binding) against a warm world, printing
// the realized matrix. The paper's formulas should be visible directly in
// the emitted rows.

#include <iostream>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "core/aimes.hpp"
#include "exp/matrix.hpp"
#include "skeleton/application.hpp"

int main(int argc, char** argv) {
  using namespace aimes;
  const auto args = bench::BenchArgs::parse(argc, argv, 1);

  core::AimesConfig config;
  config.seed = args.seed;
  core::Aimes aimes(config);
  aimes.start();

  common::TableWriter table(
      "Table I — skeleton applications and execution strategies (derived by the planner)");
  table.header({"Exp", "#Tasks", "Task Duration", "Binding", "Scheduler", "#Pilots",
                "Pilot Size", "Pilot Walltime", "Tx est", "Ts est", "Trp est"});

  for (const auto& e : exp::table1_experiments()) {
    for (int tasks : exp::table1_task_counts()) {
      const auto app = skeleton::materialize(e.make_skeleton(tasks), args.seed);
      auto planner_config = e.make_planner_config();
      auto strategy = aimes.plan(app, planner_config);
      if (!strategy) {
        std::fprintf(stderr, "planning failed: %s\n", strategy.error().c_str());
        return 1;
      }
      table.row({std::to_string(e.id), std::to_string(tasks),
                 e.gaussian_durations ? "1-30 min (trunc. Gaussian)" : "15 min",
                 std::string(core::to_string(strategy->binding)),
                 std::string(pilot::to_string(strategy->unit_scheduler)),
                 std::to_string(strategy->n_pilots),
                 std::to_string(strategy->pilot_cores) + " cores",
                 strategy->pilot_walltime.str(), strategy->estimated_tx.str(),
                 strategy->estimated_ts.str(), strategy->estimated_trp.str()});
    }
  }
  table.render(std::cout);
  if (!args.csv.empty() && !table.save_csv(args.csv)) {
    std::fprintf(stderr, "cannot write %s\n", args.csv.c_str());
    return 1;
  }
  return 0;
}
