// Ablation: how many resources does Tw-normalization need?
//
// The paper (§IV.B): "the normalization of the notoriously unpredictable
// queuing time on HPC resources is both measured and shown to depend on
// distributing the execution of tasks on multiple pilots instantiated
// across AT LEAST THREE resources" and "it is interesting that this large
// variability is already overcome by using three resources".
//
// This harness sweeps the number of pilots 1..5 under late binding +
// backfill at a fixed application size and reports the TTC/Tw distribution.
// Expected shape: mean and stddev drop sharply from 1 to 3 pilots, then
// flatten — most of the benefit is captured by three resources.

#include <iostream>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace aimes;
  const auto args = bench::BenchArgs::parse(argc, argv, 16);
  const int tasks = 1024;

  common::TableWriter table("Ablation — #pilots sweep (late binding, backfill, " +
                            std::to_string(tasks) + " tasks, " + std::to_string(args.trials) +
                            " trials)");
  table.header({"#Pilots", "TTC mean", "TTC stddev", "Tw mean", "Tw stddev", "Tw max"});

  for (int n = 1; n <= 5; ++n) {
    // The custom-strategy form of a request: profile + explicit binding /
    // scheduler / pilots. selection=random matches what ExperimentSpec's
    // planner used, keeping this sweep's numbers stable across the
    // migration (the request default is predicted-wait).
    exp::RunRequest req;
    req.name = "late backfill " + std::to_string(n) + " pilots";
    req.profile = "bag-uniform";
    req.tasks = tasks;
    req.trials = args.trials;
    req.jobs = args.jobs;
    req.seed = args.seed + static_cast<std::uint64_t>(n) * 1000;
    req.strategy.binding = "late";
    req.strategy.scheduler = "backfill";
    req.strategy.pilots = n;
    req.strategy.selection = "random";

    const auto cell = bench::run_cell_request(req);
    table.row({std::to_string(n), common::TableWriter::num(cell.ttc_s.mean(), 0),
               common::TableWriter::num(cell.ttc_s.stddev(), 0),
               common::TableWriter::num(cell.tw_s.mean(), 0),
               common::TableWriter::num(cell.tw_s.stddev(), 0),
               common::TableWriter::num(cell.tw_s.max(), 0)});
    std::fprintf(stderr, "  npilots: %d done\n", n);
  }
  table.render(std::cout);
  std::cout << "\nshape check (paper): Tw mean/stddev collapse between 1 and 3 pilots and\n"
               "flatten beyond — at least three resources normalize queue wait.\n";
  if (!args.csv.empty() && !table.save_csv(args.csv)) return 1;
  return 0;
}
