// Ablation: when is early binding preferable?
//
// The paper (§IV.B): "early binding would still be desirable for
// applications with a duration of Tx long enough to make the worse case
// scenario of Tw negligible. In this case, applications with early binding
// would have better TTC than those with late binding because of the single
// pilot's larger size and therefore the greater level of concurrent
// execution."
//
// This harness sweeps the task duration at a fixed task count and compares
// early/1-pilot against late/3-pilots. Expected shape: late wins at short
// task durations (Tw dominates); the gap narrows as tasks lengthen, and the
// early strategy's larger pilot eventually pulls (near-)even because its Tx
// is ~3/4 that of the split pilots.
//
// Stays on the library API (not exp::RunRequest): the sweep injects custom
// task-duration distributions, a knob deliberately below the request
// schema's operator surface (profiles fix their distributions).

#include <iostream>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "exp/runner.hpp"
#include "sim/replica_pool.hpp"
#include "skeleton/profiles.hpp"

namespace {

aimes::exp::ExperimentSpec make(bool late, double minutes) {
  aimes::exp::ExperimentSpec e;
  e.id = late ? 203 : 201;
  e.binding = late ? aimes::core::Binding::kLate : aimes::core::Binding::kEarly;
  e.scheduler = late ? aimes::pilot::UnitSchedulerKind::kBackfill
                     : aimes::pilot::UnitSchedulerKind::kDirect;
  e.n_pilots = late ? 3 : 1;
  e.label = std::string(late ? "late" : "early") + " @ " + std::to_string(minutes) + "min";
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aimes;
  const auto args = bench::BenchArgs::parse(argc, argv, 12);
  const int tasks = 512;

  common::TableWriter table("Ablation — task-duration sweep (" + std::to_string(tasks) +
                            " tasks, " + std::to_string(args.trials) + " trials)");
  table.header({"Task dur (min)", "early TTC", "late TTC", "late/early", "early Tw", "late Tw"});

  for (double minutes : {5.0, 15.0, 45.0, 120.0, 360.0}) {
    double means[2];
    double tw_means[2];
    for (int late = 0; late <= 1; ++late) {
      exp::ExperimentSpec e = make(late == 1, minutes);
      // run_cell materializes the skeleton from the experiment spec; inject
      // the duration by overriding the skeleton maker through a custom cell
      // loop here instead. Trials are independent replicas, so they fan out
      // over the pool; aggregation stays in seed order (bit-identical to
      // --jobs 1).
      struct Trial {
        bool ok = false;
        double ttc = 0;
        double tw = 0;
      };
      sim::ReplicaPool pool(args.jobs < 0 ? 1u : static_cast<unsigned>(args.jobs));
      const auto results = pool.map<Trial>(
          static_cast<std::size_t>(args.trials), [&](std::size_t t) {
            const std::uint64_t seed =
                args.seed + static_cast<std::uint64_t>(minutes * 10) * 100 +
                static_cast<std::uint64_t>(late) * 7919 + static_cast<std::uint64_t>(t) + 1;
            core::AimesConfig config;
            config.seed = seed;
            core::Aimes aimes(config);
            aimes.start();
            const auto spec = skeleton::profiles::bag_of_tasks(
                tasks, common::DistributionSpec::constant(minutes * 60.0));
            const auto app = skeleton::materialize(spec, seed);
            auto run = aimes.run(app, e.make_planner_config());
            Trial trial;
            if (run.ok() && run->report.success) {
              trial.ok = true;
              trial.ttc = run->report.ttc.ttc.to_seconds();
              trial.tw = run->report.ttc.tw.to_seconds();
            }
            return trial;
          });
      common::Summary ttc;
      common::Summary tw;
      for (const Trial& trial : results) {
        if (!trial.ok) continue;
        ttc.add(trial.ttc);
        tw.add(trial.tw);
      }
      means[late] = ttc.mean();
      tw_means[late] = tw.mean();
    }
    table.row({common::TableWriter::num(minutes, 0), common::TableWriter::num(means[0], 0),
               common::TableWriter::num(means[1], 0),
               common::TableWriter::num(means[0] > 0 ? means[1] / means[0] : 0, 2),
               common::TableWriter::num(tw_means[0], 0),
               common::TableWriter::num(tw_means[1], 0)});
    std::fprintf(stderr, "  binding sweep: %.0f min done\n", minutes);
  }
  table.render(std::cout);
  std::cout << "\nshape check (paper): late/early < 1 for short tasks (Tw dominates);\n"
               "the ratio rises toward (and past) 1 as task duration grows and the early\n"
               "strategy's larger pilot amortizes its one-time queue wait.\n";
  if (!args.csv.empty() && !table.save_csv(args.csv)) return 1;
  return 0;
}
