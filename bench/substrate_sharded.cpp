// Sharded substrate scale: the 1000-site grid across 1/2/4/8 shards.
//
// ISSUE 7's tentpole claim is that the event substrate scales *within one
// trial*: a machine-room grid of ~1000 sites (each with its own batch queue
// and background workload — millions of background jobs over the horizon)
// partitioned across sim::ShardedEngine shards runs the SAME simulation at
// every shard count — digests and merged span checksums bit-identical — while
// events/sec climbs with the worker count. The sweep below runs the identical
// grid cell at --shards 1, 2, 4 and 8 and
//   * asserts the FNV-1a digest and the obs span checksum never move, and
//   * records events/sec per point plus the shards-8-over-shards-1 speedup
//     against the >= 4x target.
// On hosts with fewer than 8 hardware threads the speedup is recorded but not
// asserted (speedup_measurable: false) — determinism is always asserted.
//
// --json merges a "sharded_grid" section into BENCH_substrate.json (the
// PR's perf evidence, next to the google-benchmark engine numbers); the
// recording refuses to run from a non-Release build.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "exp/grid.hpp"

namespace {

using namespace aimes;

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

struct SweepPoint {
  int shards = 0;
  exp::GridCellResult cell;
  double events_per_second = 0.0;
};

/// Merges `section` (a complete `"sharded_grid": {...}` member) into the
/// JSON object at `path`: replaces a previous section if one is already
/// recorded (the section is always the last member), otherwise splices it
/// before the object's closing brace. A missing or non-object file gets a
/// fresh standalone object, so the target works before bench-substrate-json
/// has ever run.
bool merge_section(const std::string& path, const std::string& section) {
  std::string text;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      text = buffer.str();
    }
  }
  const auto marker = text.find("\"sharded_grid\"");
  if (marker != std::string::npos) {
    const auto comma = text.rfind(',', marker);
    text.erase(comma == std::string::npos ? 0 : comma);
  } else {
    const auto brace = text.rfind('}');
    if (brace == std::string::npos) {
      text.clear();
    } else {
      text.erase(brace);
      const auto end = text.find_last_not_of(" \t\n\r");
      if (end != std::string::npos) text.erase(end + 1);
    }
  }
  // No preceding members (fresh file, or the section was the whole object):
  // open the object ourselves and skip the separating comma.
  const bool bare = text.empty() || text == "{";
  if (bare) text = "{";
  std::ofstream out(path);
  out << text << (bare ? "\n" : ",\n") << "  \"sharded_grid\": " << section << "\n}\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args;
  args.trials = 1;
  std::string json_path;
  int sites = 1000;
  int horizon_minutes = 240;
  int workers = 0;
  common::cli::Parser cli(argc > 0 ? argv[0] : "substrate_sharded");
  args.declare(cli);
  cli.string_option("--json", json_path,
                    "merge a sharded_grid section into this JSON file", "PATH");
  cli.int_option("--sites", sites, 8, 100000, "grid sites per trial (1000)");
  cli.int_option("--horizon-minutes", horizon_minutes, 5, 24 * 60,
                 "background/control arrival horizon (240)");
  cli.int_option("--workers", workers, 0, 4096,
                 "worker threads per point (default 0 =\n"
                 "min(shards, hardware))");
  args.finish(cli, argc, argv);
  if (args.quick) {
    if (!cli.seen("--sites")) sites = 128;
    if (!cli.seen("--horizon-minutes")) horizon_minutes = 30;
  }
  if (!json_path.empty()) bench::require_release_artifacts("substrate_sharded");

  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const int shard_sweep[] = {1, 2, 4, 8};

  std::vector<SweepPoint> points;
  for (const int shards : shard_sweep) {
    exp::GridSpec spec;
    spec.sites = sites;
    spec.shards = shards;
    spec.workers = workers;
    spec.horizon = common::SimDuration::minutes(horizon_minutes);
    // Short background jobs (median ~33 s) push the grid into the
    // event-density regime: ~1M+ submissions per default trial, so the
    // sweep measures the substrate's throughput, not scheduler think time.
    spec.runtime_mu = 3.5;
    spec.runtime_sigma = 0.6;
    spec.observability = true;
    SweepPoint point;
    point.shards = shards;
    point.cell = exp::run_grid_cell(spec, args.trials, args.seed, /*jobs=*/1);
    point.events_per_second =
        point.cell.wall_seconds > 1e-9
            ? static_cast<double>(point.cell.events) / point.cell.wall_seconds
            : 0.0;
    points.push_back(point);
    std::fprintf(stderr,
                 "  shards %d: %" PRIu64 " events in %.2f s (%.0f ev/s), digest %s\n",
                 shards, point.cell.events, point.cell.wall_seconds,
                 point.events_per_second, hex64(point.cell.digest).c_str());
  }

  bool deterministic = true;
  for (const auto& point : points) {
    deterministic = deterministic && point.cell.digest == points.front().cell.digest &&
                    point.cell.obs_span_checksum == points.front().cell.obs_span_checksum;
  }
  const double base_eps = points.front().events_per_second;
  const double speedup =
      base_eps > 1e-9 ? points.back().events_per_second / base_eps : 0.0;
  const double speedup_target = 4.0;
  // The >= 4x single-core multiple needs 8 workers to exist; on smaller
  // hosts the honest numbers are recorded and the assertion is waived.
  const bool measurable = hardware >= 8 && workers == 0;
  const bool speedup_ok = !measurable || speedup >= speedup_target;

  common::TableWriter table("Sharded substrate — " + std::to_string(sites) + "-site grid, " +
                            std::to_string(args.trials) + " trial(s)/point");
  table.header({"Shards", "Events", "Bg jobs", "Windows", "Posts", "Wall s", "Events/s",
                "Digest"});
  for (const auto& point : points) {
    table.row({std::to_string(point.shards), std::to_string(point.cell.events),
               std::to_string(point.cell.background_jobs),
               std::to_string(point.cell.windows), std::to_string(point.cell.posts),
               common::TableWriter::num(point.cell.wall_seconds, 2),
               common::TableWriter::num(point.events_per_second, 0),
               hex64(point.cell.digest)});
  }
  table.render(std::cout);
  std::cout << "\nshape check: digests + span checksums across shards 1/2/4/8 "
            << (deterministic ? "identical" : "DIVERGED") << " | speedup x"
            << common::TableWriter::num(speedup, 2) << " (target >= "
            << common::TableWriter::num(speedup_target, 1) << ", "
            << (measurable ? (speedup_ok ? "OK" : "VIOLATED")
                           : "not asserted: < 8 hardware threads")
            << ")\n";

  if (!args.csv.empty() && !table.save_csv(args.csv)) {
    std::fprintf(stderr, "cannot write %s\n", args.csv.c_str());
    return 1;
  }
  if (!json_path.empty()) {
    std::ostringstream section;
    section << "{\n"
            << "    \"bench\": \"substrate_sharded\",\n"
            << "    \"aimes_build_type\": \"" << bench::kBuildType << "\",\n"
            << "    \"hardware_threads\": " << hardware << ",\n"
            << "    \"sites\": " << sites << ",\n"
            << "    \"trials\": " << args.trials << ",\n"
            << "    \"seed\": " << args.seed << ",\n"
            << "    \"horizon_minutes\": " << horizon_minutes << ",\n"
            << "    \"background_jobs\": " << points.front().cell.background_jobs << ",\n"
            << "    \"control_jobs\": " << points.front().cell.control_jobs << ",\n"
            << "    \"sweep\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& point = points[i];
      section << "      {\"shards\": " << point.shards << ", \"events\": "
              << point.cell.events << ", \"windows\": " << point.cell.windows
              << ", \"posts\": " << point.cell.posts << ", \"wall_seconds\": "
              << point.cell.wall_seconds << ", \"events_per_second\": "
              << point.events_per_second << ", \"digest\": \"" << hex64(point.cell.digest)
              << "\", \"span_checksum\": \"" << hex64(point.cell.obs_span_checksum)
              << "\"}" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    section << "    ],\n"
            << "    \"deterministic_across_shards\": " << (deterministic ? "true" : "false")
            << ",\n"
            << "    \"speedup_shards8\": " << speedup << ",\n"
            << "    \"speedup_target\": " << speedup_target << ",\n"
            << "    \"speedup_measurable\": " << (measurable ? "true" : "false") << ",\n"
            << "    \"speedup_ok\": " << (speedup_ok ? "true" : "false") << "\n"
            << "  }";
    if (!merge_section(json_path, section.str())) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return deterministic && speedup_ok ? 0 : 1;
}
