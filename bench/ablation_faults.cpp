// Ablation: TTC degradation under injected pilot failures, per strategy
// (paper §III.E: the Execution Manager "restarts the pilots" on failure).
//
// Sweeps the pilot-kill rate over {0, 0.1, 0.25, 0.5} for two strategies:
//   early-1  — early binding onto a single pilot (no spare capacity; every
//              loss forces a resubmission before the batch can finish);
//   late-3   — late binding across 3 pilots (survivors absorb orphaned
//              units while the replacement climbs the queue).
//
// Reported: TTC mean/stddev, pilots resubmitted, recovery latency, lost
// core-hours, and goodput. Expected shape: TTC degrades with the fault
// rate for both strategies. Note the exposure asymmetry: the kill rate is
// per *activation*, so a 3-pilot fleet absorbs ~3x the faults per run —
// compare TTC degradation per resubmission, where late-3 is gentler
// (survivors keep computing while the replacement queues) and early-1
// stalls completely on every loss.

#include <iostream>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "core/aimes.hpp"
#include "sim/replica_pool.hpp"
#include "skeleton/profiles.hpp"

namespace {

using namespace aimes;

struct Strategy {
  std::string name;
  core::Binding binding;
  int pilots;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 8);
  const int tasks = 128;
  const double kill_rates[] = {0.0, 0.1, 0.25, 0.5};

  std::vector<Strategy> strategies;
  strategies.push_back({"early-1", core::Binding::kEarly, 1});
  strategies.push_back({"late-3", core::Binding::kLate, 3});

  common::TableWriter table("Ablation — fault rate vs strategy (" + std::to_string(tasks) +
                            " tasks, " + std::to_string(args.trials) + " trials)");
  table.header({"Strategy", "kill rate", "TTC mean", "TTC stddev", "resubmits mean",
                "recovery mean", "lost core-h", "goodput", "failures"});

  for (const auto& strategy : strategies) {
    for (const double rate : kill_rates) {
      struct Trial {
        bool ok = false;
        double ttc = 0;
        double resubmits = 0;
        double recovery = 0;
        double lost = 0;
        double goodput = 0;
      };
      sim::ReplicaPool pool(args.jobs < 0 ? 1u : static_cast<unsigned>(args.jobs));
      const auto results = pool.map<Trial>(
          static_cast<std::size_t>(args.trials), [&](std::size_t t) {
            core::AimesConfig config;
            config.seed = args.seed + static_cast<std::uint64_t>(t) + 1;
            config.execution.units.max_attempts = 12;
            if (rate > 0.0) {
              sim::FaultRates rates;
              rates.pilot_kill = rate;
              config.faults.plan.with_rates(rates);
              config.execution.recovery.enabled = true;
            }
            core::Aimes aimes(config);
            aimes.start();
            const auto app =
                skeleton::materialize(skeleton::profiles::bag_gaussian(tasks), config.seed);
            core::PlannerConfig planner;
            planner.binding = strategy.binding;
            planner.n_pilots = strategy.pilots;
            planner.selection = core::SiteSelection::kPredictedWait;
            auto result = aimes.run(app, planner);
            Trial trial;
            if (!result.ok() || !result->report.success) return trial;
            trial.ok = true;
            trial.ttc = result->report.ttc.ttc.to_seconds();
            trial.resubmits = static_cast<double>(result->report.recovery.pilots_resubmitted);
            trial.recovery = result->report.recovery.mean_recovery_latency().to_seconds();
            trial.lost = result->report.metrics.lost_core_hours;
            trial.goodput = result->report.metrics.goodput;
            return trial;
          });
      common::Summary ttc;
      common::Summary resubmits;
      common::Summary recovery;
      common::Summary lost;
      common::Summary goodput;
      int failures = 0;
      for (const auto& trial : results) {
        if (!trial.ok) {
          ++failures;
          continue;
        }
        ttc.add(trial.ttc);
        resubmits.add(trial.resubmits);
        recovery.add(trial.recovery);
        lost.add(trial.lost);
        goodput.add(trial.goodput);
      }
      table.row({strategy.name, common::TableWriter::num(rate, 2),
                 common::TableWriter::num(ttc.mean(), 0),
                 common::TableWriter::num(ttc.stddev(), 0),
                 common::TableWriter::num(resubmits.mean(), 1),
                 common::TableWriter::num(recovery.mean(), 0),
                 common::TableWriter::num(lost.mean(), 2),
                 common::TableWriter::num(goodput.mean(), 2), std::to_string(failures)});
      std::fprintf(stderr, "  %s @ kill rate %.2f done\n", strategy.name.c_str(), rate);
    }
  }
  table.render(std::cout);
  std::cout << "\nshape check: TTC grows with the kill rate for both strategies. The rate\n"
               "is per activation, so late-3 absorbs ~3x the faults per run; per\n"
               "resubmission its degradation is gentler (survivors keep computing while\n"
               "the replacement queues) where early-1 stalls completely on every loss.\n";
  if (!args.csv.empty() && !table.save_csv(args.csv)) return 1;
  return 0;
}
