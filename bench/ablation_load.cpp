// Ablation: queue "weather" as a function of resource load.
//
// The paper's central nuisance variable is resource dynamism: "Tw depends
// mostly on the resource's queuing time. This is determined by the resource
// load, the length of its queue, and the policies..." (§IV.B). This harness
// characterizes the substrate itself: it sweeps the background offered load
// of a single site and reports the wait-time distribution observed by probe
// pilots of two sizes — the dial that turns a quiet machine into the
// paper's unpredictable production queue.
//
// Expected shape: waits grow non-linearly with offered load, explode past
// saturation (util > 1), and large probes suffer disproportionately; the
// wait histogram's mass crosses from the minutes buckets into hours.

#include <iostream>

#include "bench/bench_util.hpp"
#include "common/histogram.hpp"
#include "common/table.hpp"
#include "core/aimes.hpp"
#include "sim/replica_pool.hpp"

namespace {

using namespace aimes;

/// Submits one probe pilot job directly to a warm single-site world and
/// returns its queue wait, in seconds.
double probe_wait(double utilization, int probe_nodes, std::uint64_t seed) {
  cluster::TestbedSiteSpec spec;
  spec.site.name = "probe-site";
  spec.site.nodes = 512;
  spec.site.cores_per_node = 16;
  spec.load.target_utilization = utilization;
  spec.load.horizon = common::SimDuration::hours(48);

  sim::Engine engine;
  cluster::Testbed testbed(engine, {spec}, seed);
  testbed.prime_and_start();
  engine.run_until(common::SimTime::epoch() + common::SimDuration::hours(6));

  auto* site = testbed.site("probe-site");
  cluster::JobRequest req;
  req.name = "probe";
  req.nodes = probe_nodes;
  req.runtime = common::SimDuration::minutes(15);
  req.walltime = common::SimDuration::minutes(30);
  common::SimTime started = common::SimTime::max();
  req.on_state_change = [&](const cluster::Job& job) {
    if (job.state == cluster::JobState::kRunning) started = job.started_at;
  };
  const auto submit_time = engine.now();
  auto id = site->submit(req);
  if (!id.ok()) return -1;
  // Run until the probe starts (bounded by the workload horizon).
  while (started == common::SimTime::max() && engine.step()) {
  }
  if (started == common::SimTime::max()) return -1;  // never started
  return (started - submit_time).to_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 12);

  common::TableWriter table("Ablation — queue wait vs offered load (512-node site, " +
                            std::to_string(args.trials) + " probes per cell)");
  table.header({"Offered load", "probe", "median wait", "p90 wait", "max wait",
                "histogram 1m..10h (log buckets)"});

  for (double load : {0.70, 0.90, 1.00, 1.10, 1.25}) {
    for (int nodes : {2, 128}) {
      common::Summary waits;
      common::Histogram hist(60.0, 36000.0, 6);
      sim::ReplicaPool pool(args.jobs < 0 ? 1u : static_cast<unsigned>(args.jobs));
      const auto results = pool.map<double>(
          static_cast<std::size_t>(args.trials), [&](std::size_t t) {
            return probe_wait(load, nodes, args.seed + static_cast<std::uint64_t>(t) + 1);
          });
      for (const double w : results) {
        if (w >= 0) {
          waits.add(w);
          hist.add(w);
        }
      }
      table.row({common::TableWriter::num(load, 2),
                 std::to_string(nodes) + " nodes",
                 common::TableWriter::num(waits.percentile(50), 0),
                 common::TableWriter::num(waits.percentile(90), 0),
                 common::TableWriter::num(waits.max(), 0), hist.str()});
    }
    std::fprintf(stderr, "  load %.2f done\n", load);
  }
  table.render(std::cout);
  std::cout << "\nshape check: waits rise non-linearly with load, explode past saturation\n"
               "(>1.0), and the 128-node probe waits far longer than the 2-node probe —\n"
               "the resource dynamism the paper's strategies must absorb.\n";
  if (!args.csv.empty() && !table.save_csv(args.csv)) return 1;
  return 0;
}
