// Observability overhead: the span tracer + metrics sampler must be cheap.
//
// Runs one Figure-2 cell (experiment 3, late binding) twice per repetition —
// observability off, then on — and compares the summed per-trial wall time.
// The acceptance bar is < 10% overhead: the recorder sits on the hot unit
// dispatch / transfer / job-service paths, so a regression here means a
// guard was dropped or the sampler started thrashing the event queue.
// Repetitions are alternated and the minimum per mode kept, which filters
// most scheduler noise out of the ratio.
//
// Two correctness witnesses ride along: the traced and untraced cells must
// agree on every TTC aggregate (observability must not perturb the
// simulation), and the traced cell's span checksum must be bit-identical
// across --jobs 1/2/4/8 (the determinism contract for traces under
// sim::ReplicaPool). --json records everything (BENCH_obs.json is the PR's
// evidence).

#include <algorithm>
#include <cinttypes>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "exp/runner.hpp"

namespace {

using namespace aimes;

std::string hex_checksum(std::uint64_t checksum) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, checksum);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  // Defaults chosen so even --quick (trials / 4) keeps the measured wall
  // time well above scheduler-noise territory: a 3-trial cell runs in ~25 ms
  // and the traced/untraced ratio becomes a coin flip.
  bench::BenchArgs args;
  args.trials = 48;
  std::string json_path;
  int tasks = 64;
  int reps = 5;
  common::cli::Parser cli(argc > 0 ? argv[0] : "obs_overhead");
  args.declare(cli);
  cli.string_option("--json", json_path, "also record the comparison as JSON", "PATH");
  cli.int_option("--tasks", tasks, 1, 100000, "tasks per trial");
  cli.int_option("--reps", reps, 1, 100, "repetitions per mode (minimum kept)");
  args.finish(cli, argc, argv);

  const exp::ExperimentSpec experiment = exp::table1_experiment(3);
  exp::RunRequest untraced = bench::cell_request(args, experiment.id, tasks);
  exp::RunRequest traced = untraced;
  traced.observability.enabled = true;

  // Alternate modes within each repetition so thermal / load drift hits both.
  double wall_off = 0.0;
  double wall_on = 0.0;
  exp::CellResult cell_off;
  exp::CellResult cell_on;
  for (int rep = 0; rep < reps; ++rep) {
    cell_off = bench::run_cell_request(untraced);
    cell_on = bench::run_cell_request(traced);
    wall_off = rep == 0 ? cell_off.wall_seconds : std::min(wall_off, cell_off.wall_seconds);
    wall_on = rep == 0 ? cell_on.wall_seconds : std::min(wall_on, cell_on.wall_seconds);
    std::fprintf(stderr, "  obs_overhead: rep %d/%d done\n", rep + 1, reps);
  }
  const double overhead = wall_off > 0.0 ? (wall_on - wall_off) / wall_off : 0.0;

  // Witness 1: tracing must not perturb the simulated physics. (Raw event
  // counts differ by design — the sampler schedules its own ticks — so the
  // comparison is on the simulation's outputs, not its event count.)
  const bool unperturbed = cell_on.ttc_s.mean() == cell_off.ttc_s.mean() &&
                           cell_on.tw_s.mean() == cell_off.tw_s.mean() &&
                           cell_on.tx_s.mean() == cell_off.tx_s.mean() &&
                           cell_on.ts_s.mean() == cell_off.ts_s.mean() &&
                           cell_on.failures == cell_off.failures;

  // Witness 2: traced cells are deterministic for every worker count.
  const int sweep_jobs[] = {1, 2, 4, 8};
  std::vector<std::uint64_t> sweep_checksums;
  bool deterministic = true;
  for (const int jobs : sweep_jobs) {
    exp::RunRequest sweep = traced;
    sweep.jobs = jobs;
    const auto cell = bench::run_cell_request(sweep);
    sweep_checksums.push_back(cell.span_checksum);
    deterministic = deterministic && cell.span_checksum == sweep_checksums.front();
  }

  common::TableWriter table("Observability overhead — Exp 3, " + std::to_string(tasks) +
                            " tasks, " + std::to_string(args.trials) + " trials, best of " +
                            std::to_string(reps));
  table.header({"Mode", "Wall (s)", "Events", "TTC mean (s)", "Span checksum"});
  table.row({"untraced", common::TableWriter::num(wall_off, 3),
             std::to_string(cell_off.events_executed),
             common::TableWriter::num(cell_off.ttc_s.mean(), 0), "-"});
  table.row({"traced", common::TableWriter::num(wall_on, 3),
             std::to_string(cell_on.events_executed),
             common::TableWriter::num(cell_on.ttc_s.mean(), 0),
             hex_checksum(cell_on.span_checksum)});
  table.render(std::cout);

  const bool overhead_ok = overhead < 0.10;
  std::cout << "\nshape check: tracer overhead " << common::TableWriter::num(overhead * 100, 1)
            << "% (< 10% " << (overhead_ok ? "OK" : "VIOLATED")
            << "); simulation unperturbed " << (unperturbed ? "OK" : "VIOLATED")
            << "; --jobs 1/2/4/8 span checksums "
            << (deterministic ? "identical" : "DIVERGED") << "\n";

  if (!args.csv.empty() && !table.save_csv(args.csv)) {
    std::fprintf(stderr, "cannot write %s\n", args.csv.c_str());
    return 1;
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"bench\": \"obs_overhead\",\n"
        << "  \"experiment\": " << experiment.id << ",\n"
        << "  \"tasks\": " << tasks << ",\n"
        << "  \"trials\": " << args.trials << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"seed\": " << args.seed << ",\n"
        << "  \"wall_seconds_untraced\": " << wall_off << ",\n"
        << "  \"wall_seconds_traced\": " << wall_on << ",\n"
        << "  \"overhead_fraction\": " << overhead << ",\n"
        << "  \"overhead_under_10_percent\": " << (overhead_ok ? "true" : "false") << ",\n"
        << "  \"events_executed\": " << cell_on.events_executed << ",\n"
        << "  \"ttc_mean_s\": " << cell_on.ttc_s.mean() << ",\n"
        << "  \"simulation_unperturbed\": " << (unperturbed ? "true" : "false") << ",\n"
        << "  \"jobs_sweep\": [\n";
    for (std::size_t i = 0; i < sweep_checksums.size(); ++i) {
      out << "    {\"jobs\": " << sweep_jobs[i] << ", \"span_checksum\": \""
          << hex_checksum(sweep_checksums[i]) << "\"}"
          << (i + 1 < sweep_checksums.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"deterministic_across_jobs\": " << (deterministic ? "true" : "false") << "\n"
        << "}\n";
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return overhead_ok && unperturbed && deterministic ? 0 : 1;
}
