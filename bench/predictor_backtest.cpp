// Backtest of the bundle's queue-wait predictors.
//
// The paper is careful about prediction: queue waiting time "is extremely
// hard to predict accurately" (§III.B, citing QBETS and Tsafrir), yet
// order-of-magnitude estimates are still useful. This harness quantifies
// that claim for our two predictor families: on a warm site, repeatedly
// (a) ask each predictor for the wait of the next probe-sized job, then
// (b) submit the probe and measure the realized wait.
//
// Reported per predictor: mean absolute error (seconds), median
// absolute log10-ratio |log10(pred/actual)|, and the fraction of
// predictions within one order of magnitude — the paper's usefulness bar.

#include <cmath>
#include <iostream>
#include <memory>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "core/aimes.hpp"
#include "sim/replica_pool.hpp"

namespace {

using namespace aimes;

struct Sample {
  double predicted_s;
  double actual_s;
};

std::vector<Sample> backtest(const std::string& predictor, int probe_cores, int probes,
                             std::uint64_t seed) {
  core::AimesConfig config;
  config.seed = seed;
  config.warmup = common::SimDuration::hours(6);
  core::Aimes aimes(config);
  aimes.start();

  std::vector<Sample> samples;
  // Probe every site in turn, spacing probes an hour apart so each sees
  // fresh queue weather.
  auto sites = aimes.testbed().sites();
  for (int p = 0; p < probes; ++p) {
    auto* site = sites[static_cast<std::size_t>(p) % sites.size()];
    auto* agent = aimes.bundles().agent(site->id());
    if (predictor == "utilization") {
      agent->set_predictor(std::make_unique<bundle::UtilizationPredictor>());
    } else {
      agent->set_predictor(std::make_unique<bundle::QuantilePredictor>());
    }
    const double predicted = agent->predict_wait(probe_cores).to_seconds();

    cluster::JobRequest req;
    req.name = "probe";
    req.nodes = std::max(1, probe_cores / site->config().cores_per_node);
    req.runtime = common::SimDuration::minutes(10);
    req.walltime = common::SimDuration::minutes(20);
    common::SimTime started = common::SimTime::max();
    req.on_state_change = [&](const cluster::Job& job) {
      if (job.state == cluster::JobState::kRunning) started = job.started_at;
    };
    const auto submitted = aimes.engine().now();
    auto id = site->submit(req);
    if (!id.ok()) continue;
    while (started == common::SimTime::max() && aimes.engine().step()) {
    }
    if (started == common::SimTime::max()) continue;
    samples.push_back({std::max(1.0, predicted), (started - submitted).to_seconds()});
    aimes.engine().run_until(aimes.engine().now() + common::SimDuration::hours(1));
  }
  return samples;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 24);

  common::TableWriter table("Predictor backtest — " + std::to_string(args.trials) +
                            " probes per predictor per size");
  table.header({"Predictor", "probe cores", "MAE (s)", "median |log10 ratio|",
                "within 10x", "samples"});

  // A backtest cell shares one warm world across its probes, so the probes
  // themselves are inherently serial; the four (predictor, cores) cells are
  // the independent replicas that fan out over the pool. Results come back
  // in cell order, so the table is identical for every --jobs value.
  struct Cell {
    std::string predictor;
    int cores;
  };
  std::vector<Cell> cells;
  for (const std::string predictor : {"quantile", "utilization"}) {
    for (int cores : {16, 512}) cells.push_back({predictor, cores});
  }
  sim::ReplicaPool pool(args.jobs < 0 ? 1u : static_cast<unsigned>(args.jobs));
  const auto cell_samples = pool.map<std::vector<Sample>>(
      cells.size(), [&](std::size_t i) {
        return backtest(cells[i].predictor, cells[i].cores, args.trials, args.seed);
      });

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string& predictor = cells[i].predictor;
    const int cores = cells[i].cores;
    const auto& samples = cell_samples[i];
    common::Summary abs_err;
    common::Summary log_ratio;
    int within = 0;
    for (const auto& s : samples) {
      abs_err.add(std::fabs(s.predicted_s - s.actual_s));
      const double ratio = std::fabs(std::log10(s.predicted_s / std::max(1.0, s.actual_s)));
      log_ratio.add(ratio);
      if (ratio <= 1.0) ++within;
    }
    table.row({predictor, std::to_string(cores),
               common::TableWriter::num(abs_err.mean(), 0),
               common::TableWriter::num(log_ratio.percentile(50), 2),
               common::TableWriter::num(
                   samples.empty() ? 0.0
                                   : 100.0 * static_cast<double>(within) /
                                         static_cast<double>(samples.size()),
                   0) + "%",
               std::to_string(samples.size())});
    std::fprintf(stderr, "  backtest %s/%d done\n", predictor.c_str(), cores);
  }
  table.render(std::cout);
  std::cout << "\nshape check (paper): point accuracy is poor (large MAE — queue time is\n"
               "\"extremely hard to predict accurately\") but most predictions land within\n"
               "an order of magnitude, which is what resource selection needs.\n";
  if (!args.csv.empty() && !table.save_csv(args.csv)) return 1;
  return 0;
}
