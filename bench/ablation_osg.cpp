// Ablation: HPC machines vs an opportunistic HTC pool vs the hybrid
// federation (paper §V: OSG support and the reliability metric).
//
// Three deployments run the same bag of tasks under late binding:
//   hpc     — 3 pilots across the five batch machines (the paper's setup);
//   osg     — 4 pilots on the preemptable HTC pool (fast starts, evictions);
//   hybrid  — 3 pilots chosen from the six-resource federation.
//
// Reported: TTC, Tw, restarts (the reliability cost of preemption), and
// pilot efficiency. Expected shape: the HTC pool nearly eliminates Tw but
// pays in restarts and wasted core-time; the hybrid captures most of both
// worlds' advantages.

#include <iostream>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "core/aimes.hpp"
#include "sim/replica_pool.hpp"
#include "skeleton/profiles.hpp"

namespace {

using namespace aimes;

struct Deployment {
  std::string name;
  std::vector<cluster::TestbedSiteSpec> pool;
  int pilots;
  bool reuse;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 12);
  const int tasks = 512;

  std::vector<Deployment> deployments;
  deployments.push_back({"hpc (5 machines)", cluster::standard_testbed(), 3, false});
  deployments.push_back(
      {"osg (preemptable pool)",
       {cluster::osg_pool_spec(4096, common::SimDuration::hours(3))},
       4,
       true});
  deployments.push_back({"hybrid (5 + osg)", cluster::hybrid_testbed(), 3, false});

  common::TableWriter table("Ablation — DCI mix (late binding, " + std::to_string(tasks) +
                            " tasks, " + std::to_string(args.trials) + " trials)");
  table.header({"Deployment", "TTC mean", "TTC stddev", "Tw mean", "restarts mean",
                "pilot efficiency", "failures"});

  for (const auto& deployment : deployments) {
    struct Trial {
      bool ok = false;
      double ttc = 0;
      double tw = 0;
      double restarts = 0;
      double efficiency = 0;
    };
    sim::ReplicaPool pool(args.jobs < 0 ? 1u : static_cast<unsigned>(args.jobs));
    const auto results = pool.map<Trial>(
        static_cast<std::size_t>(args.trials), [&](std::size_t t) {
          core::AimesConfig config;
          config.seed = args.seed + static_cast<std::uint64_t>(t) + 1;
          config.testbed = deployment.pool;
          config.execution.units.max_attempts = 12;
          core::Aimes aimes(config);
          aimes.start();
          const auto app =
              skeleton::materialize(skeleton::profiles::bag_gaussian(tasks), config.seed);
          core::PlannerConfig planner;
          planner.binding = core::Binding::kLate;
          planner.n_pilots = deployment.pilots;
          planner.selection = core::SiteSelection::kRandom;
          planner.allow_site_reuse = deployment.reuse;
          auto result = aimes.run(app, planner);
          Trial trial;
          if (!result.ok() || !result->report.success) return trial;
          trial.ok = true;
          trial.ttc = result->report.ttc.ttc.to_seconds();
          trial.tw = result->report.ttc.tw.to_seconds();
          trial.restarts = static_cast<double>(result->report.ttc.restarted_units);
          trial.efficiency = result->report.metrics.pilot_efficiency;
          return trial;
        });
    common::Summary ttc;
    common::Summary tw;
    common::Summary restarts;
    common::Summary efficiency;
    int failures = 0;
    for (const auto& trial : results) {
      if (!trial.ok) {
        ++failures;
        continue;
      }
      ttc.add(trial.ttc);
      tw.add(trial.tw);
      restarts.add(trial.restarts);
      efficiency.add(trial.efficiency);
    }
    table.row({deployment.name, common::TableWriter::num(ttc.mean(), 0),
               common::TableWriter::num(ttc.stddev(), 0),
               common::TableWriter::num(tw.mean(), 0),
               common::TableWriter::num(restarts.mean(), 1),
               common::TableWriter::num(efficiency.mean(), 2), std::to_string(failures)});
    std::fprintf(stderr, "  deployment '%s' done\n", deployment.name.c_str());
  }
  table.render(std::cout);
  std::cout << "\nshape check: the HTC pool trades queue wait (low Tw) for reliability\n"
               "(restarts > 0, lower pilot efficiency); the hybrid federation keeps Tw low\n"
               "without the full eviction cost.\n";
  if (!args.csv.empty() && !table.save_csv(args.csv)) return 1;
  return 0;
}
