// aimes-run: command-line front end to the virtual laboratory.
//
// Runs one skeleton application (from a config file or a built-in profile)
// on a resource pool (built-in five-site testbed or a pool config file)
// under an explicit execution strategy, and reports the TTC decomposition
// and run metrics. Optionally dumps the full state-transition trace as CSV
// and the skeleton in any of the four emitter formats.
//
// Examples:
//   aimes-run --profile bag-gaussian --tasks 256 --binding late --pilots 3
//   aimes-run --skeleton app.cfg --testbed pool.cfg --seed 7 --trace run.csv
//   aimes-run --profile montage --tasks 64 --emit dax --emit-out app.dax
//   aimes-run --profile bag-uniform --tasks 512 --adaptive
//   aimes-run --profile bag-gaussian --tasks 256 --trials 32 --jobs 8

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "cluster/testbed_config.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "core/adaptive.hpp"
#include "core/aimes.hpp"
#include "core/report_io.hpp"
#include "core/timeline.hpp"
#include "sim/replica_pool.hpp"
#include "skeleton/emitters.hpp"
#include "skeleton/profiles.hpp"

namespace {

using namespace aimes;

struct Args {
  std::string skeleton_file;
  std::string profile = "bag-gaussian";
  int tasks = 128;
  std::string testbed_file;
  std::string binding = "late";
  int pilots = 3;
  std::string selection = "predicted";
  std::uint64_t seed = 42;
  int trials = 1;  // > 1 switches to sweep mode (seeds seed .. seed+trials-1)
  int jobs = 0;    // sweep parallelism; 0 = hardware concurrency, 1 = serial
  double warmup_hours = 6.0;
  bool adaptive = false;
  std::string fault_plan_file;
  double pilot_failure_rate = 0.0;
  std::string trace_file;
  std::string report_file;
  bool timeline = false;
  std::string emit;       // dax | swift | shell | json
  std::string emit_out;   // "-" or path
  bool verbose = false;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --skeleton FILE     skeleton application config file\n"
      "  --profile NAME      built-in profile when no --skeleton is given:\n"
      "                      bag-uniform | bag-gaussian | montage | blast |\n"
      "                      cybershake | mapreduce (default bag-gaussian)\n"
      "  --tasks N           application size for built-in profiles (128)\n"
      "  --testbed FILE      resource pool config (default: paper's 5 sites)\n"
      "  --binding B         early | late (late)\n"
      "  --pilots N          number of pilots (3)\n"
      "  --selection S       random | predicted (predicted)\n"
      "  --seed S            world/application seed (42)\n"
      "  --trials N          sweep mode: run N replicas seeded S..S+N-1 and\n"
      "                      aggregate TTC (default 1 = single run)\n"
      "  --jobs M            sweep worker threads (default: hardware\n"
      "                      concurrency; 1 = serial). Aggregates are\n"
      "                      bit-identical for every M\n"
      "  --warmup H          background warmup hours (6)\n"
      "  --adaptive          enable mid-run strategy adaptation\n"
      "  --fault-plan FILE   fault-injection plan config ([fault.*] sections);\n"
      "                      enables Execution-Manager recovery\n"
      "  --pilot-failure-rate P\n"
      "                      probability each pilot submission is rejected (0)\n"
      "  --trace FILE        write the full state-transition trace as CSV\n"
      "  --timeline          print an ASCII Gantt timeline of the run\n"
      "  --report FILE       write the run report as JSON\n"
      "  --emit FMT          emit the skeleton: shell | json | dax | swift\n"
      "  --emit-out FILE     emission target ('-' = stdout)\n"
      "  --verbose           info-level logging\n",
      argv0);
}

common::Expected<Args> parse_args(int argc, char** argv) {
  using E = common::Expected<Args>;
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> common::Expected<std::string> {
      if (i + 1 >= argc) return common::Expected<std::string>::error("missing value for " + a);
      return std::string(argv[++i]);
    };
    auto take = [&](std::string& slot) -> common::Status {
      auto v = next();
      if (!v) return common::Status::error(v.error());
      slot = *v;
      return {};
    };
    common::Status st;
    if (a == "--skeleton") st = take(args.skeleton_file);
    else if (a == "--profile") st = take(args.profile);
    else if (a == "--tasks") { auto v = next(); if (!v) return E::error(v.error()); args.tasks = std::atoi(v->c_str()); }
    else if (a == "--testbed") st = take(args.testbed_file);
    else if (a == "--binding") st = take(args.binding);
    else if (a == "--pilots") { auto v = next(); if (!v) return E::error(v.error()); args.pilots = std::atoi(v->c_str()); }
    else if (a == "--selection") st = take(args.selection);
    else if (a == "--seed") { auto v = next(); if (!v) return E::error(v.error()); args.seed = std::strtoull(v->c_str(), nullptr, 10); }
    else if (a == "--trials") { auto v = next(); if (!v) return E::error(v.error()); args.trials = std::atoi(v->c_str()); }
    else if (a == "--jobs") { auto v = next(); if (!v) return E::error(v.error()); args.jobs = std::atoi(v->c_str()); }
    else if (a == "--warmup") { auto v = next(); if (!v) return E::error(v.error()); args.warmup_hours = std::atof(v->c_str()); }
    else if (a == "--adaptive") args.adaptive = true;
    else if (a == "--fault-plan") st = take(args.fault_plan_file);
    else if (a == "--pilot-failure-rate") { auto v = next(); if (!v) return E::error(v.error()); args.pilot_failure_rate = std::atof(v->c_str()); }
    else if (a == "--trace") st = take(args.trace_file);
    else if (a == "--timeline") args.timeline = true;
    else if (a == "--report") st = take(args.report_file);
    else if (a == "--emit") st = take(args.emit);
    else if (a == "--emit-out") st = take(args.emit_out);
    else if (a == "--verbose") args.verbose = true;
    else if (a == "--help" || a == "-h") { usage(argv[0]); std::exit(0); }
    else return E::error("unknown argument '" + a + "' (try --help)");
    if (!st.ok()) return E::error(st.error());
  }
  if (args.tasks < 1) return E::error("--tasks must be positive");
  if (args.pilots < 1) return E::error("--pilots must be positive");
  if (args.trials < 1) return E::error("--trials must be positive");
  if (args.jobs < 0) return E::error("--jobs must be >= 0 (0 = hardware concurrency)");
  if (args.trials > 1 &&
      (!args.trace_file.empty() || !args.report_file.empty() || args.timeline ||
       !args.emit.empty() || args.adaptive)) {
    return E::error(
        "--trials > 1 aggregates replicas; it cannot combine with the single-run "
        "artifacts --trace/--report/--timeline/--emit or with --adaptive");
  }
  if (args.pilot_failure_rate < 0.0 || args.pilot_failure_rate > 1.0) {
    return E::error("--pilot-failure-rate must be in [0, 1]");
  }
  return args;
}

common::Expected<skeleton::SkeletonSpec> load_spec(const Args& args) {
  using E = common::Expected<skeleton::SkeletonSpec>;
  if (!args.skeleton_file.empty()) {
    auto config = common::Config::load(args.skeleton_file);
    if (!config) return E::error(config.error());
    return skeleton::parse_spec(*config);
  }
  if (args.profile == "bag-uniform") return skeleton::profiles::bag_uniform(args.tasks);
  if (args.profile == "bag-gaussian") return skeleton::profiles::bag_gaussian(args.tasks);
  if (args.profile == "montage") return skeleton::profiles::montage_like(args.tasks);
  if (args.profile == "blast") return skeleton::profiles::blast_like(args.tasks);
  if (args.profile == "cybershake") return skeleton::profiles::cybershake_like(args.tasks);
  if (args.profile == "mapreduce") {
    return skeleton::profiles::map_reduce(args.tasks, std::max(1, args.tasks / 8),
                                          common::DistributionSpec::constant(300),
                                          common::DistributionSpec::constant(120));
  }
  return E::error("unknown profile '" + args.profile + "'");
}

int emit_skeleton(const Args& args, const skeleton::SkeletonApplication& app) {
  std::string text;
  if (args.emit == "shell") text = skeleton::to_shell_script(app);
  else if (args.emit == "json") text = skeleton::to_json(app);
  else if (args.emit == "dax") text = skeleton::to_pegasus_dax(app);
  else if (args.emit == "swift") text = skeleton::to_swift_script(app);
  else {
    std::fprintf(stderr, "unknown emit format '%s'\n", args.emit.c_str());
    return 2;
  }
  if (args.emit_out.empty() || args.emit_out == "-") {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream out(args.emit_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.emit_out.c_str());
      return 1;
    }
    out << text;
    std::printf("wrote %s (%zu bytes, %s form)\n", args.emit_out.c_str(), text.size(),
                args.emit.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = parse_args(argc, argv);
  if (!parsed) {
    std::fprintf(stderr, "%s\n", parsed.error().c_str());
    return 2;
  }
  const Args& args = *parsed;
  if (args.verbose) common::Log::set_level(common::LogLevel::kInfo);

  auto spec = load_spec(args);
  if (!spec) {
    std::fprintf(stderr, "skeleton: %s\n", spec.error().c_str());
    return 1;
  }
  const auto app = skeleton::materialize(*spec, args.seed);
  std::printf("application '%s': %zu tasks in %zu stage(s), %s compute, %s external input\n",
              app.name().c_str(), app.task_count(), app.stages().size(),
              app.total_compute().str().c_str(), app.total_external_input().str().c_str());

  if (!args.emit.empty()) return emit_skeleton(args, app);

  core::AimesConfig config;
  config.seed = args.seed;
  config.warmup = common::SimDuration::hours(args.warmup_hours);
  if (!args.testbed_file.empty()) {
    auto file = common::Config::load(args.testbed_file);
    if (!file) {
      std::fprintf(stderr, "testbed: %s\n", file.error().c_str());
      return 1;
    }
    auto pool = cluster::parse_testbed(*file);
    if (!pool) {
      std::fprintf(stderr, "testbed: %s\n", pool.error().c_str());
      return 1;
    }
    config.testbed = std::move(*pool);
  }
  if (!args.fault_plan_file.empty()) {
    auto file = common::Config::load(args.fault_plan_file);
    if (!file) {
      std::fprintf(stderr, "fault plan: %s\n", file.error().c_str());
      return 1;
    }
    auto plan = sim::FaultPlan::parse(*file);
    if (!plan) {
      std::fprintf(stderr, "fault plan: %s\n", plan.error().c_str());
      return 1;
    }
    config.faults = std::move(*plan);
  }
  if (args.pilot_failure_rate > 0.0) {
    auto rates = config.faults.rates();
    rates.pilot_launch_failure = args.pilot_failure_rate;
    config.faults.with_rates(rates);
  }
  // Any requested fault makes recovery part of the experiment.
  if (!config.faults.empty()) config.execution.recovery.enabled = true;

  core::PlannerConfig planner;
  planner.binding = args.binding == "early" ? core::Binding::kEarly : core::Binding::kLate;
  planner.n_pilots = args.pilots;
  planner.selection = args.selection == "random" ? core::SiteSelection::kRandom
                                                 : core::SiteSelection::kPredictedWait;

  if (args.trials > 1) {
    // Sweep mode: N independent replicas of the configured experiment, seeded
    // seed..seed+N-1, fanned out over the pool. Each replica owns its engine
    // and world; results come back in seed order, so the aggregate is
    // bit-identical for every --jobs value (trial 0 == the single-run seed).
    struct Trial {
      bool ok = false;
      double ttc = 0;
      double tw = 0;
      double tx = 0;
      double ts = 0;
      double faults = 0;
      double resubmitted = 0;
    };
    sim::ReplicaPool pool(args.jobs == 0 ? 0u : static_cast<unsigned>(args.jobs));
    std::printf("\nsweep: %d trials (seeds %llu..%llu), %u worker(s)\n", args.trials,
                static_cast<unsigned long long>(args.seed),
                static_cast<unsigned long long>(args.seed + args.trials - 1), pool.jobs());
    const auto results = pool.map<Trial>(
        static_cast<std::size_t>(args.trials), [&](std::size_t t) {
          core::AimesConfig replica = config;
          replica.seed = args.seed + t;
          core::Aimes world(replica);
          world.start();
          const auto replica_app = skeleton::materialize(*spec, replica.seed);
          auto result = world.run(replica_app, planner);
          Trial trial;
          if (!result.ok() || !result->report.success) return trial;
          trial.ok = true;
          trial.ttc = result->report.ttc.ttc.to_seconds();
          trial.tw = result->report.ttc.tw.to_seconds();
          trial.tx = result->report.ttc.tx.to_seconds();
          trial.ts = result->report.ttc.ts.to_seconds();
          trial.faults = static_cast<double>(result->report.faults.total());
          trial.resubmitted =
              static_cast<double>(result->report.recovery.pilots_resubmitted);
          return trial;
        });
    common::Summary ttc;
    common::Summary tw;
    common::Summary tx;
    common::Summary ts;
    common::Summary faults;
    common::Summary resubmitted;
    int failures = 0;
    for (const auto& trial : results) {
      if (!trial.ok) {
        ++failures;
        continue;
      }
      ttc.add(trial.ttc);
      tw.add(trial.tw);
      tx.add(trial.tx);
      ts.add(trial.ts);
      faults.add(trial.faults);
      resubmitted.add(trial.resubmitted);
    }
    std::printf("  TTC mean %.0f s (stddev %.0f, p50 %.0f) | Tw %.0f | Tx %.0f | Ts %.0f\n",
                ttc.mean(), ttc.stddev(), ttc.percentile(50), tw.mean(), tx.mean(),
                ts.mean());
    if (faults.mean() > 0.0 || resubmitted.mean() > 0.0) {
      std::printf("  faults/trial mean %.1f | pilots resubmitted/trial mean %.1f\n",
                  faults.mean(), resubmitted.mean());
    }
    std::printf("  failed trials: %d of %d\n", failures, args.trials);
    return failures == args.trials ? 1 : 0;
  }

  core::Aimes aimes(config);
  aimes.start();

  auto strategy = aimes.plan(app, planner);
  if (!strategy) {
    std::fprintf(stderr, "planner: %s\n", strategy.error().c_str());
    return 1;
  }
  std::printf("\n%s\n", strategy->describe().c_str());

  pilot::Profiler adaptive_trace;
  core::ExecutionReport report;
  std::size_t adaptation_count = 0;
  if (args.adaptive) {
    core::AdaptiveExecutionManager manager(
        aimes.engine(), adaptive_trace, aimes.services(), aimes.staging(), aimes.bundles(),
        aimes.config().execution, core::AdaptivePolicy{}, common::Rng(args.seed));
    bool done = false;
    auto status = manager.enact(app, *strategy, [&](const core::ExecutionReport&) {
      done = true;
    });
    if (!status.ok()) {
      std::fprintf(stderr, "enact: %s\n", status.error().c_str());
      return 1;
    }
    while (!done && aimes.engine().step()) {
    }
    report = manager.report();
    adaptation_count = manager.adaptations().size();
  } else {
    auto result = aimes.execute(app, *strategy);
    report = result.report;
    adaptive_trace = std::move(result.trace);
  }

  std::printf("run %s: %zu done, %zu failed\n", report.success ? "succeeded" : "INCOMPLETE",
              report.units_done, report.units_failed);
  std::printf("  TTC %s | Tw %s | Tx %s | Ts %s\n", report.ttc.ttc.str().c_str(),
              report.ttc.tw.str().c_str(), report.ttc.tx.str().c_str(),
              report.ttc.ts.str().c_str());
  std::printf("  throughput %.1f tasks/h | pilot usage %.1f core-h (%.0f%% useful) | "
              "charge %.1f SU | energy %.2f kWh\n",
              report.metrics.throughput_tasks_per_hour, report.metrics.pilot_core_hours,
              100.0 * report.metrics.pilot_efficiency, report.metrics.charge,
              report.metrics.energy_kwh);
  if (args.adaptive) std::printf("  adaptations: %zu\n", adaptation_count);
  if (report.faults.total() > 0 || report.recovery.pilots_lost > 0) {
    std::printf("  faults: %zu injected (%zu launch, %zu kill, %zu outage, %zu transfer) | "
                "recovery: %zu lost, %zu resubmitted, %zu abandoned, mean latency %s\n",
                report.faults.total(), report.faults.pilot_launch_failures,
                report.faults.pilot_kills, report.faults.site_outages,
                report.faults.transfer_failures, report.recovery.pilots_lost,
                report.recovery.pilots_resubmitted, report.recovery.recoveries_abandoned,
                report.recovery.mean_recovery_latency().str().c_str());
  }

  if (args.timeline) {
    std::printf("\n%s", core::render_timeline(adaptive_trace).c_str());
  }
  if (!args.report_file.empty()) {
    if (!core::save_report_json(report, args.report_file)) {
      std::fprintf(stderr, "cannot write %s\n", args.report_file.c_str());
      return 1;
    }
    std::printf("  report: %s\n", args.report_file.c_str());
  }
  if (!args.trace_file.empty()) {
    std::ofstream out(args.trace_file);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.trace_file.c_str());
      return 1;
    }
    adaptive_trace.render_csv(out);
    std::printf("  trace: %zu records -> %s\n", adaptive_trace.size(),
                args.trace_file.c_str());
  }
  return report.success ? 0 : 1;
}
