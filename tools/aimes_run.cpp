// aimes-run: command-line front end to the virtual laboratory.
//
// Runs one skeleton application (from a config file or a built-in profile)
// on a resource pool (built-in five-site testbed or a pool config file)
// under an explicit execution strategy, and reports the TTC decomposition
// and run metrics. Optionally dumps the full state-transition trace as CSV
// and the skeleton in any of the four emitter formats.
//
// The flags map onto one typed exp::RunRequest (the same struct `aimesd`
// accepts over HTTP), and sweeps/campaigns run through the same
// exp::execute(), so a cell run here is bit-identical — same FNV-1a
// checksum — to the same request submitted via `aimesc`. Only presentation
// stays local: single-run artifact rendering (--trace/--timeline/--report),
// the adaptive manager, skeleton emission, observability file outputs.
//
// Examples:
//   aimes-run --profile bag-gaussian --tasks 256 --binding late --pilots 3
//   aimes-run --skeleton app.cfg --testbed pool.cfg --seed 7 --trace run.csv
//   aimes-run --profile montage --tasks 64 --emit dax --emit-out app.dax
//   aimes-run --profile bag-uniform --tasks 512 --adaptive
//   aimes-run --profile bag-gaussian --tasks 256 --trials 32 --jobs 8
//   aimes-run --campaign 4 --tasks 16 --arrival poisson:4 --campaign-mode shared

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "core/adaptive.hpp"
#include "core/aimes.hpp"
#include "core/report_io.hpp"
#include "core/timeline.hpp"
#include "exp/request.hpp"
#include "exp/request_cli.hpp"
#include "obs/recorder.hpp"
#include "skeleton/emitters.hpp"

namespace {

using namespace aimes;

struct Args {
  exp::RunRequest req;
  bool quick = false;
  // Presentation-only concerns that never cross the wire.
  bool adaptive = false;
  bool timeline = false;
  bool verbose = false;
  std::string trace_file;
  std::string report_file;
  std::string trace_out;    // Chrome trace-event JSON (Perfetto-loadable)
  std::string metrics_out;  // Prometheus text; FILE.csv gets the series
  double sample_interval_s = 30.0;
  std::string emit;      // dax | swift | shell | json
  std::string emit_out;  // "-" or path
};

common::Expected<Args> parse_args(int argc, char** argv) {
  using E = common::Expected<Args>;
  Args args;
  common::cli::Parser cli("aimes-run");
  exp::declare_request_options(cli, args.req, args.quick);
  cli.flag("--adaptive", args.adaptive, "enable mid-run strategy adaptation");
  cli.string_option("--trace", args.trace_file,
                    "write the full state-transition trace as CSV", "FILE");
  cli.string_option("--trace-out", args.trace_out,
                    "write a Chrome trace-event JSON of the run's\n"
                    "spans and counter tracks (open in Perfetto)",
                    "FILE");
  cli.string_option("--metrics-out", args.metrics_out,
                    "write final metric values in Prometheus text\n"
                    "format; FILE.csv gets the sampled time series",
                    "FILE");
  cli.double_option("--sample-interval", args.sample_interval_s, 0.001, 1e6,
                    "metrics sampling interval in virtual seconds (30)", "S");
  cli.flag("--timeline", args.timeline, "print an ASCII Gantt timeline of the run");
  cli.string_option("--report", args.report_file, "write the run report as JSON", "FILE");
  cli.string_option("--emit", args.emit, "emit the skeleton: shell | json | dax | swift",
                    "FMT");
  cli.string_option("--emit-out", args.emit_out, "emission target ('-' = stdout)", "FILE");
  cli.flag("--verbose", args.verbose, "info-level logging");

  // Mode exclusions, declared once instead of hand-checked after parsing:
  // a campaign aggregates tenants, so the single-run artifact flags and the
  // adaptive manager cannot apply; --emit renders the skeleton without
  // running, so there is nothing for the observability exporters to record.
  for (const char* single_run : {"--adaptive", "--emit", "--trace", "--report",
                                 "--timeline"}) {
    cli.conflicts("--campaign", single_run);
  }
  for (const char* obs_out : {"--trace-out", "--metrics-out"}) {
    cli.conflicts("--emit", obs_out);
    cli.conflicts("--adaptive", obs_out);
  }

  auto parsed = cli.parse(argc, argv);
  if (!parsed) return E::error(parsed.error());
  if (parsed->help) {
    std::fputs(cli.usage().c_str(), stdout);
    std::exit(0);
  }
  exp::finalize_request_options(cli, args.req, args.quick);
  // Value-dependent checks the declarative pairs cannot express.
  if (args.req.trials > 1 && (!args.trace_out.empty() || !args.metrics_out.empty())) {
    return E::error("--trace-out/--metrics-out need a single run (--trials 1); use the "
                    "bench-obs target for sweeps");
  }
  if (args.req.trials > 1 &&
      (!args.trace_file.empty() || !args.report_file.empty() || args.timeline ||
       !args.emit.empty() || args.adaptive)) {
    return E::error(
        "--trials > 1 aggregates replicas; it cannot combine with the single-run "
        "artifacts --trace/--report/--timeline/--emit or with --adaptive");
  }
  // Observability rides the request: either output flag turns the recorder
  // (and artifact rendering) on for the executed trial.
  const bool obs_on = !args.trace_out.empty() || !args.metrics_out.empty();
  args.req.observability.enabled = obs_on;
  args.req.observability.sample_interval_s = args.sample_interval_s;
  args.req.observability.artifacts = obs_on;
  if (auto st = exp::validate(args.req); !st.ok()) return E::error(st.error());
  return args;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}

/// Prints the observability summary and writes the requested artifacts.
/// Returns false when a file could not be written.
bool emit_observability(const Args& args, const obs::Snapshot& snap) {
  std::printf("  observability: %zu spans (max depth %d), %zu instants, %zu metrics, "
              "%zu samples | span checksum %016llx\n",
              snap.span_count, snap.max_span_depth, snap.instant_count, snap.metric_count,
              snap.sample_count, static_cast<unsigned long long>(snap.span_checksum));
  bool ok = true;
  if (!args.trace_out.empty()) {
    ok = write_text_file(args.trace_out, snap.chrome_trace) && ok;
    if (ok) std::printf("  trace-out: %s (open in ui.perfetto.dev)\n", args.trace_out.c_str());
  }
  if (!args.metrics_out.empty()) {
    ok = write_text_file(args.metrics_out, snap.prometheus) && ok;
    ok = write_text_file(args.metrics_out + ".csv", snap.csv) && ok;
    if (ok) {
      std::printf("  metrics-out: %s (+ %s.csv time series)\n", args.metrics_out.c_str(),
                  args.metrics_out.c_str());
    }
  }
  return ok;
}

/// Campaign front end: one trial prints the per-tenant breakdown; --trials N
/// sweeps seeded replicas through the campaign cell runner. Both run through
/// exp::execute — the same path a daemon submission takes.
int run_campaign(const Args& args) {
  const exp::RunRequest& req = args.req;
  std::printf("campaign: %d tenants (base %d tasks, sizes x{1,2,4}), mode %s\n",
              req.campaign.tenants, req.tasks,
              std::string(to_string(req.campaign.mode)).c_str());

  const exp::RunResult result = exp::execute(req);
  if (!result.ok) {
    std::fprintf(stderr, "%s\n", result.error.c_str());
    return 1;
  }

  if (req.trials > 1) {
    const exp::CampaignCellResult& cell = result.campaign;
    std::printf("  %d trials: makespan mean %.0f s (stddev %.0f) | tenant TTC mean %.0f s\n",
                req.trials, cell.makespan_s.mean(), cell.makespan_s.stddev(),
                cell.tenant_ttc_s.mean());
    if (req.admission.enabled) {
      std::printf("  admission: %zu admitted, %zu shed | queue wait mean %.0f s | "
                  "goodput mean %.1f units/h\n",
                  cell.tenants_admitted, cell.tenants_shed, cell.admission_wait_s.mean(),
                  cell.goodput_uph.mean());
    }
    std::printf("  failed trials: %zu of %d | checksum %016llx\n", cell.failures,
                req.trials, static_cast<unsigned long long>(result.checksum));
    return result.success ? 0 : 1;
  }

  if (!result.has_first_campaign) {
    std::fprintf(stderr, "campaign trial did not run\n");
    return 1;
  }
  const exp::CampaignTrialResult& trial = result.first_campaign;
  std::printf("campaign %s: makespan %s\n", trial.success ? "succeeded" : "INCOMPLETE",
              trial.makespan.str().c_str());
  const bool obs_on = req.observability.enabled;
  if (req.campaign.mode == exp::CampaignMode::kSequential) {
    for (std::size_t i = 0; i < trial.tenant_ttc.size(); ++i) {
      std::printf("  t%zu: %d tasks, TTC %s\n", i + 1,
                  exp::campaign_tenant_tasks(result.campaign.spec, static_cast<int>(i)),
                  trial.tenant_ttc[i].str().c_str());
    }
    if (obs_on && !emit_observability(args, trial.obs)) return 1;
    return trial.success ? 0 : 1;
  }
  for (const auto& t : trial.report.tenants) {
    if (t.admission == core::AdmissionOutcome::kShed) {
      std::printf("  %s (w%d): SHED (%s) after %s queued\n", t.name.c_str(), t.weight,
                  core::to_string(t.shed_reason), t.admission_wait.str().c_str());
      continue;
    }
    std::printf("  %s (w%d): %zu done, TTC %s (Tw %s Tx %s Ts %s), pilots %d (%d reused)%s%s\n",
                t.name.c_str(), t.weight, t.units_done, t.ttc.ttc.str().c_str(),
                t.ttc.tw.str().c_str(), t.ttc.tx.str().c_str(), t.ttc.ts.str().c_str(),
                t.pilots_leased, t.pilots_reused, t.error.empty() ? "" : " | ERROR: ",
                t.error.c_str());
    if (t.admission == core::AdmissionOutcome::kAdmittedDegraded ||
        t.admission_wait > common::SimDuration::zero()) {
      std::printf("    admission: %s, %d pilot(s) granted, queued %s, slo %s\n",
                  core::to_string(t.admission), t.granted_pilots,
                  t.admission_wait.str().c_str(), core::to_string(t.slo));
    }
  }
  if (trial.report.admission.requests > 0) {
    std::printf("  admission: %llu requests | %llu admitted, %llu degraded, %llu queued, "
                "%llu shed\n",
                static_cast<unsigned long long>(trial.report.admission.requests),
                static_cast<unsigned long long>(trial.report.admission.admitted),
                static_cast<unsigned long long>(trial.report.admission.degraded),
                static_cast<unsigned long long>(trial.report.admission.queued),
                static_cast<unsigned long long>(trial.report.admission.shed));
  }
  if (trial.report.health.trips > 0 || trial.report.recovery.pilots_lost > 0) {
    std::printf("  health: %llu failures seen, %llu breaker trip(s), %llu probe(s) | "
                "recovery: %zu lost, %zu resubmitted\n",
                static_cast<unsigned long long>(trial.report.health.failures),
                static_cast<unsigned long long>(trial.report.health.trips),
                static_cast<unsigned long long>(trial.report.health.half_opens),
                trial.report.recovery.pilots_lost, trial.report.recovery.pilots_resubmitted);
  }
  std::printf("  pool: %d launched, %d leases served from running pilots, %d idled out\n",
              trial.report.pool.launched, trial.report.pool.reused,
              trial.report.pool.cancelled_idle);
  for (const auto& f : trial.report.fair_share) {
    std::printf("  fair-share t%d (w%d): %llu dispatches, max gap %llu\n", f.tenant,
                f.weight, static_cast<unsigned long long>(f.dispatched),
                static_cast<unsigned long long>(f.max_dispatch_gap));
  }
  std::printf("  throughput %.1f tasks/h over the campaign makespan\n",
              trial.report.metrics.throughput_tasks_per_hour);
  if (obs_on) {
    std::printf("  peak concurrent executing units (sampled gauge): %zu\n",
                trial.report.metrics.peak_units_executing);
    if (!emit_observability(args, trial.obs)) return 1;
  }
  return trial.success ? 0 : 1;
}

int emit_skeleton(const Args& args, const skeleton::SkeletonApplication& app) {
  std::string text;
  if (args.emit == "shell") text = skeleton::to_shell_script(app);
  else if (args.emit == "json") text = skeleton::to_json(app);
  else if (args.emit == "dax") text = skeleton::to_pegasus_dax(app);
  else if (args.emit == "swift") text = skeleton::to_swift_script(app);
  else {
    std::fprintf(stderr, "unknown emit format '%s'\n", args.emit.c_str());
    return 2;
  }
  if (args.emit_out.empty() || args.emit_out == "-") {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream out(args.emit_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.emit_out.c_str());
      return 1;
    }
    out << text;
    std::printf("wrote %s (%zu bytes, %s form)\n", args.emit_out.c_str(), text.size(),
                args.emit.c_str());
  }
  return 0;
}

/// Sweep front end (--trials > 1): N seeded replicas through exp::execute —
/// the same cell the daemon runs, same seeds S+1..S+N, same checksum.
int run_sweep(const Args& args) {
  const exp::RunRequest& req = args.req;
  std::printf("\nsweep: %d trials (seeds %llu..%llu), %s worker(s)\n", req.trials,
              static_cast<unsigned long long>(req.seed + 1),
              static_cast<unsigned long long>(req.seed + req.trials),
              req.jobs == 0 ? "hardware" : std::to_string(req.jobs).c_str());
  const exp::RunResult result = exp::execute(req);
  if (!result.ok) {
    std::fprintf(stderr, "%s\n", result.error.c_str());
    return 1;
  }
  const exp::CellResult& cell = result.cell;
  std::printf("  TTC mean %.0f s (stddev %.0f, p50 %.0f) | Tw %.0f | Tx %.0f | Ts %.0f\n",
              cell.ttc_s.mean(), cell.ttc_s.stddev(), cell.ttc_s.percentile(50),
              cell.tw_s.mean(), cell.tx_s.mean(), cell.ts_s.mean());
  if (cell.faults_n.mean() > 0.0 || cell.resubmitted_n.mean() > 0.0) {
    std::printf("  faults/trial mean %.1f | pilots resubmitted/trial mean %.1f\n",
                cell.faults_n.mean(), cell.resubmitted_n.mean());
  }
  std::printf("  failed trials: %zu of %d | checksum %016llx\n", cell.failures, req.trials,
              static_cast<unsigned long long>(result.checksum));
  return result.success ? 0 : 1;
}

/// Single-run front end: drives trial 1's world (seed S+1, exactly the world
/// `--trials 1` runs through exp::execute) directly, which keeps the
/// renderers only this path offers — strategy description, adaptive manager,
/// CSV trace, ASCII timeline, report JSON, observability artifacts.
int run_single(const Args& args, const exp::ResolvedRun& resolved) {
  const exp::RunRequest& req = args.req;
  const exp::WorldTweaks& tweaks = resolved.tweaks;
  const std::uint64_t seed = req.seed + 1;

  core::AimesConfig config;
  config.seed = seed;
  config.warmup = tweaks.warmup;
  if (!tweaks.testbed.empty()) config.testbed = tweaks.testbed;
  config.execution.recovery = tweaks.recovery;
  config.faults = tweaks.faults;
  config.observability = tweaks.observability;
  config.sharding = tweaks.sharding;

  const auto app = skeleton::materialize(resolved.app.skeleton, seed);
  std::printf("application '%s': %zu tasks in %zu stage(s), %s compute, %s external input\n",
              app.name().c_str(), app.task_count(), app.stages().size(),
              app.total_compute().str().c_str(), app.total_external_input().str().c_str());

  if (!args.emit.empty()) return emit_skeleton(args, app);

  core::Aimes aimes(config);
  aimes.start();

  auto strategy = aimes.plan(app, resolved.app.planner);
  if (!strategy) {
    std::fprintf(stderr, "planner: %s\n", strategy.error().c_str());
    return 1;
  }
  std::printf("\n%s\n", strategy->describe().c_str());

  pilot::Profiler adaptive_trace;
  core::ExecutionReport report;
  std::size_t adaptation_count = 0;
  if (args.adaptive) {
    core::AdaptiveExecutionManager manager(
        aimes.engine(), adaptive_trace, aimes.services(), aimes.staging(), aimes.bundles(),
        aimes.config().execution, core::AdaptivePolicy{}, common::Rng(seed));
    bool done = false;
    auto status = manager.enact(app, *strategy, [&](const core::ExecutionReport&) {
      done = true;
    });
    if (!status.ok()) {
      std::fprintf(stderr, "enact: %s\n", status.error().c_str());
      return 1;
    }
    while (!done && aimes.engine().step()) {
    }
    report = manager.report();
    adaptation_count = manager.adaptations().size();
  } else {
    auto result = aimes.execute(app, *strategy);
    report = result.report;
    adaptive_trace = std::move(result.trace);
  }

  std::printf("run %s: %zu done, %zu failed\n", report.success ? "succeeded" : "INCOMPLETE",
              report.units_done, report.units_failed);
  std::printf("  TTC %s | Tw %s | Tx %s | Ts %s\n", report.ttc.ttc.str().c_str(),
              report.ttc.tw.str().c_str(), report.ttc.tx.str().c_str(),
              report.ttc.ts.str().c_str());
  std::printf("  throughput %.1f tasks/h | pilot usage %.1f core-h (%.0f%% useful) | "
              "charge %.1f SU | energy %.2f kWh\n",
              report.metrics.throughput_tasks_per_hour, report.metrics.pilot_core_hours,
              100.0 * report.metrics.pilot_efficiency, report.metrics.charge,
              report.metrics.energy_kwh);
  if (args.adaptive) std::printf("  adaptations: %zu\n", adaptation_count);
  if (report.faults.total() > 0 || report.recovery.pilots_lost > 0) {
    std::printf("  faults: %zu injected (%zu launch, %zu kill, %zu outage, %zu transfer) | "
                "recovery: %zu lost, %zu resubmitted, %zu abandoned, mean latency %s\n",
                report.faults.total(), report.faults.pilot_launch_failures,
                report.faults.pilot_kills, report.faults.site_outages,
                report.faults.transfer_failures, report.recovery.pilots_lost,
                report.recovery.pilots_resubmitted, report.recovery.recoveries_abandoned,
                report.recovery.mean_recovery_latency().str().c_str());
  }

  if (aimes.recorder() != nullptr) {
    std::printf("  peak concurrent executing units (sampled gauge): %zu\n",
                report.metrics.peak_units_executing);
    std::printf("  engine: %zu events executed, peak queue %zu\n", aimes.world().executed(),
                aimes.world().peak_queued());
    if (!emit_observability(args, aimes.recorder()->snapshot(true))) return 1;
  }

  if (args.timeline) {
    if (core::build_timeline(adaptive_trace).empty()) {
      // No rows to draw: the trace has no RUN_START (run failed before
      // enactment) or no time passed after it.
      std::printf("\ntimeline: no RUN_START record in the trace, nothing to draw "
                  "(did the run fail before enactment?)\n");
    } else {
      std::printf("\n%s", core::render_timeline(adaptive_trace).c_str());
    }
  }
  if (!args.report_file.empty()) {
    auto saved = core::save_report_json(report, args.report_file);
    if (!saved.ok()) {
      std::fprintf(stderr, "report: %s\n", saved.error().c_str());
      return 1;
    }
    std::printf("  report: %s\n", args.report_file.c_str());
  }
  if (!args.trace_file.empty()) {
    std::ofstream out(args.trace_file);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.trace_file.c_str());
      return 1;
    }
    adaptive_trace.render_csv(out);
    std::printf("  trace: %zu records -> %s\n", adaptive_trace.size(),
                args.trace_file.c_str());
  }
  return report.success ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = parse_args(argc, argv);
  if (!parsed) {
    std::fprintf(stderr, "%s\n", parsed.error().c_str());
    return 2;
  }
  const Args& args = *parsed;
  if (args.verbose) common::Log::set_level(common::LogLevel::kInfo);

  if (args.req.is_campaign()) return run_campaign(args);
  if (args.req.trials > 1) return run_sweep(args);

  // Single run (and skeleton emission): resolve files once, then drive the
  // world directly for the artifact renderers.
  auto resolved = exp::resolve(args.req);
  if (!resolved) {
    std::fprintf(stderr, "%s\n", resolved.error().c_str());
    return 1;
  }
  return run_single(args, *resolved);
}
