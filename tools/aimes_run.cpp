// aimes-run: command-line front end to the virtual laboratory.
//
// Runs one skeleton application (from a config file or a built-in profile)
// on a resource pool (built-in five-site testbed or a pool config file)
// under an explicit execution strategy, and reports the TTC decomposition
// and run metrics. Optionally dumps the full state-transition trace as CSV
// and the skeleton in any of the four emitter formats.
//
// Examples:
//   aimes-run --profile bag-gaussian --tasks 256 --binding late --pilots 3
//   aimes-run --skeleton app.cfg --testbed pool.cfg --seed 7 --trace run.csv
//   aimes-run --profile montage --tasks 64 --emit dax --emit-out app.dax
//   aimes-run --profile bag-uniform --tasks 512 --adaptive
//   aimes-run --profile bag-gaussian --tasks 256 --trials 32 --jobs 8
//   aimes-run --campaign 4 --tasks 16 --arrival poisson:4 --campaign-mode shared

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "cluster/testbed_config.hpp"
#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "core/adaptive.hpp"
#include "core/aimes.hpp"
#include "core/report_io.hpp"
#include "core/timeline.hpp"
#include "exp/campaign.hpp"
#include "obs/recorder.hpp"
#include "sim/replica_pool.hpp"
#include "skeleton/emitters.hpp"
#include "skeleton/profiles.hpp"

namespace {

using namespace aimes;

struct Args {
  std::string skeleton_file;
  std::string profile = "bag-gaussian";
  int tasks = 128;
  std::string testbed_file;
  std::string binding = "late";
  int pilots = 3;
  std::string selection = "predicted";
  std::uint64_t seed = 42;
  int trials = 1;  // > 1 switches to sweep mode (seeds seed .. seed+trials-1)
  int jobs = 0;    // sweep parallelism; 0 = hardware concurrency, 1 = serial
  // Intra-trial sharding (orthogonal to --jobs): 0 = legacy single-engine
  // drive, N >= 1 = conservative-window drive, bit-identical for every N.
  int shards = 0;
  int grid_sites = 0;
  int shard_workers = 0;
  double warmup_hours = 6.0;
  bool adaptive = false;
  std::string fault_plan_file;
  double pilot_failure_rate = 0.0;
  std::string trace_file;
  std::string report_file;
  bool timeline = false;
  // Observability (src/obs): either output flag turns the recorder on.
  std::string trace_out;    // Chrome trace-event JSON (Perfetto-loadable)
  std::string metrics_out;  // Prometheus text; FILE.csv gets the series
  double sample_interval_s = 30.0;
  bool quick = false;
  std::string emit;       // dax | swift | shell | json
  std::string emit_out;   // "-" or path
  bool verbose = false;
  // Campaign mode (exercised when campaign > 0): N tenants, size-cycled from
  // --tasks, arriving per --arrival, sharing pilots per --campaign-mode.
  int campaign = 0;
  exp::ArrivalSpec arrival;
  exp::CampaignMode campaign_mode = exp::CampaignMode::kSharedPool;
  // Admission ladder and site circuit breakers (campaign only). Any --quota/
  // --slo knob arms admission; any --breaker-* knob arms the breakers.
  bool admission = false;
  core::TenantQuota quota;
  core::SloClass slo = core::SloClass::kStandard;
  double max_queue_wait_s = 0.0;  // 0 keeps the policy default
  bool breaker = false;
  double breaker_threshold = 0.0;   // 0 keeps the policy default
  int breaker_min_events = 0;       // 0 keeps the policy default
  double breaker_cooldown_s = 0.0;  // 0 keeps the policy default
};

common::Expected<Args> parse_args(int argc, char** argv) {
  using E = common::Expected<Args>;
  Args args;
  common::cli::Parser cli("aimes-run");
  cli.string_option("--skeleton", args.skeleton_file, "skeleton application config file",
                    "FILE");
  cli.string_option("--profile", args.profile,
                    "built-in profile when no --skeleton is given:\n"
                    "bag-uniform | bag-gaussian | montage | blast |\n"
                    "cybershake | mapreduce (default bag-gaussian)",
                    "NAME");
  cli.int_option("--tasks", args.tasks, 1, 10000000,
                 "application size for built-in profiles (128)");
  cli.string_option("--testbed", args.testbed_file,
                    "resource pool config (default: paper's 5 sites)", "FILE");
  cli.string_option("--binding", args.binding, "early | late (late)", "B");
  cli.int_option("--pilots", args.pilots, 1, 4096, "number of pilots (3)");
  cli.string_option("--selection", args.selection, "random | predicted (predicted)", "S");
  cli.uint64_option("--seed", args.seed, "world/application seed (42)", "S");
  cli.int_option("--trials", args.trials, 1, 1000000,
                 "sweep mode: run N replicas seeded S..S+N-1 and\n"
                 "aggregate TTC (default 1 = single run)");
  cli.int_option("--jobs", args.jobs, 0, 4096,
                 "sweep worker threads (default: hardware\n"
                 "concurrency; 1 = serial). Aggregates are\n"
                 "bit-identical for every M",
                 "M");
  cli.int_option("--shards", args.shards, 0, 4096,
                 "intra-trial shards: partition each world's sites\n"
                 "across N engines driven in conservative lock-step\n"
                 "windows (default 0 = classic single-engine drive).\n"
                 "Results are bit-identical for every N >= 1",
                 "N");
  cli.int_option("--grid-sites", args.grid_sites, 0, 100000,
                 "ambient background sites spread across the shards\n"
                 "(default 0); the load --shards parallelizes");
  cli.int_option("--shard-workers", args.shard_workers, 0, 4096,
                 "worker threads per sharded trial (default 0 =\n"
                 "min(shards, hardware)); wall clock only, never\n"
                 "results. Keep at 1 when sweeping --jobs",
                 "W");
  cli.double_option("--warmup", args.warmup_hours, 0.0, 24.0 * 365.0,
                    "background warmup hours (6)", "H");
  cli.int_option("--campaign", args.campaign, 2, 256,
                 "campaign mode: N tenants with sizes cycled from\n"
                 "--tasks x {1,2,4}; plans each arrival against a\n"
                 "shared pilot pool (see --campaign-mode)");
  cli.custom_option("--arrival", "SPEC",
                    "campaign arrival process: poisson:RATE (tenants\n"
                    "per hour) or fixed:SECONDS (default fixed:1200)",
                    [&args](const std::string& value) -> common::Status {
                      const auto colon = value.find(':');
                      const std::string kind = value.substr(0, colon);
                      const std::string rest =
                          colon == std::string::npos ? "" : value.substr(colon + 1);
                      if (kind == "poisson") {
                        auto rate = common::cli::parse_double(rest, 1e-6, 1e6);
                        if (!rate) return common::Status::error(rate.error());
                        args.arrival.poisson_per_hour = *rate;
                        return {};
                      }
                      if (kind == "fixed") {
                        auto seconds = common::cli::parse_double(rest, 0.0, 1e9);
                        if (!seconds) return common::Status::error(seconds.error());
                        args.arrival.poisson_per_hour = 0.0;
                        args.arrival.fixed_spacing = common::SimDuration::seconds(*seconds);
                        return {};
                      }
                      return common::Status::error("expected poisson:RATE or fixed:SECONDS");
                    });
  cli.custom_option("--campaign-mode", "M", "shared | private | sequential (shared)",
                    [&args](const std::string& value) -> common::Status {
                      if (!exp::parse_campaign_mode(value, args.campaign_mode)) {
                        return common::Status::error(
                            "expected shared, private, or sequential");
                      }
                      return {};
                    });
  cli.flag("--admission", args.admission,
           "campaign: arm the SLO-aware admission ladder\n"
           "(admit -> queue -> degrade -> shed)");
  cli.custom_option("--quota", "C[:U[:H]]",
                    "campaign: per-tenant quota as concurrent cores,\n"
                    "optionally :units and :core-hours (0 = unlimited);\n"
                    "implies --admission",
                    [&args](const std::string& value) -> common::Status {
                      std::string rest = value;
                      double parts[3] = {0.0, 0.0, 0.0};
                      for (int i = 0; i < 3 && !rest.empty(); ++i) {
                        const auto colon = rest.find(':');
                        auto field = common::cli::parse_double(rest.substr(0, colon), 0.0, 1e12);
                        if (!field) return common::Status::error(field.error());
                        parts[i] = *field;
                        if (colon == std::string::npos) break;
                        rest = rest.substr(colon + 1);
                      }
                      args.quota.max_cores = static_cast<int>(parts[0]);
                      args.quota.max_concurrent_units = static_cast<int>(parts[1]);
                      args.quota.max_core_hours = parts[2];
                      return {};
                    });
  cli.custom_option("--slo", "CLASS",
                    "campaign: declared tenant SLO class, interactive |\n"
                    "standard | batch (standard); implies --admission",
                    [&args](const std::string& value) -> common::Status {
                      if (value == "interactive") args.slo = core::SloClass::kInteractive;
                      else if (value == "standard") args.slo = core::SloClass::kStandard;
                      else if (value == "batch") args.slo = core::SloClass::kBatch;
                      else return common::Status::error("expected interactive, standard, or batch");
                      return {};
                    });
  cli.double_option("--max-queue-wait", args.max_queue_wait_s, 1.0, 1e9,
                    "campaign: admission queue wait bound in seconds\n"
                    "(1800); implies --admission",
                    "S");
  cli.double_option("--breaker-threshold", args.breaker_threshold, 0.01, 1.0,
                    "campaign: EWMA failure score that trips a site's\n"
                    "breaker (0.6); any --breaker-* arms the breakers",
                    "X");
  cli.int_option("--breaker-min-events", args.breaker_min_events, 1, 1000000,
                 "campaign: events recorded at a site before its\n"
                 "breaker may trip (3)");
  cli.double_option("--breaker-cooldown", args.breaker_cooldown_s, 1.0, 1e9,
                    "campaign: seconds an open breaker blocks a site\n"
                    "before the half-open probe (600)",
                    "S");
  cli.flag("--adaptive", args.adaptive, "enable mid-run strategy adaptation");
  cli.string_option("--fault-plan", args.fault_plan_file,
                    "fault-injection plan config ([fault.*] sections);\n"
                    "enables Execution-Manager recovery",
                    "FILE");
  cli.double_option("--pilot-failure-rate", args.pilot_failure_rate, 0.0, 1.0,
                    "probability each pilot submission is rejected (0)", "P");
  cli.string_option("--trace", args.trace_file,
                    "write the full state-transition trace as CSV", "FILE");
  cli.string_option("--trace-out", args.trace_out,
                    "write a Chrome trace-event JSON of the run's\n"
                    "spans and counter tracks (open in Perfetto)",
                    "FILE");
  cli.string_option("--metrics-out", args.metrics_out,
                    "write final metric values in Prometheus text\n"
                    "format; FILE.csv gets the sampled time series",
                    "FILE");
  cli.double_option("--sample-interval", args.sample_interval_s, 0.001, 1e6,
                    "metrics sampling interval in virtual seconds (30)", "S");
  cli.flag("--quick", args.quick,
           "small fast run: 16 tasks, 2 pilots, 1 h warmup\n"
           "(each unless explicitly overridden)");
  cli.flag("--timeline", args.timeline, "print an ASCII Gantt timeline of the run");
  cli.string_option("--report", args.report_file, "write the run report as JSON", "FILE");
  cli.string_option("--emit", args.emit, "emit the skeleton: shell | json | dax | swift",
                    "FMT");
  cli.string_option("--emit-out", args.emit_out, "emission target ('-' = stdout)", "FILE");
  cli.flag("--verbose", args.verbose, "info-level logging");

  // Mode exclusions, declared once instead of hand-checked after parsing:
  // a campaign aggregates tenants, so the single-run artifact flags and the
  // adaptive manager cannot apply; --emit renders the skeleton without
  // running, so there is nothing for the observability exporters to record.
  for (const char* single_run : {"--skeleton", "--adaptive", "--emit", "--trace", "--report",
                                 "--timeline"}) {
    cli.conflicts("--campaign", single_run);
  }
  for (const char* obs_out : {"--trace-out", "--metrics-out"}) {
    cli.conflicts("--emit", obs_out);
    cli.conflicts("--adaptive", obs_out);
  }
  for (const char* campaign_only :
       {"--arrival", "--campaign-mode", "--admission", "--quota", "--slo", "--max-queue-wait",
        "--breaker-threshold", "--breaker-min-events", "--breaker-cooldown"}) {
    cli.requires_option(campaign_only, "--campaign");
  }

  auto parsed = cli.parse(argc, argv);
  if (!parsed) return E::error(parsed.error());
  if (parsed->help) {
    std::fputs(cli.usage().c_str(), stdout);
    std::exit(0);
  }
  if (args.quick) {
    if (!cli.seen("--tasks")) args.tasks = 16;
    if (!cli.seen("--pilots")) args.pilots = 2;
    if (!cli.seen("--warmup")) args.warmup_hours = 1.0;
  }
  // Value-dependent checks the declarative pairs cannot express.
  if (args.trials > 1 && (!args.trace_out.empty() || !args.metrics_out.empty())) {
    return E::error("--trace-out/--metrics-out need a single run (--trials 1); use the "
                    "bench-obs target for sweeps");
  }
  if (args.trials > 1 &&
      (!args.trace_file.empty() || !args.report_file.empty() || args.timeline ||
       !args.emit.empty() || args.adaptive)) {
    return E::error(
        "--trials > 1 aggregates replicas; it cannot combine with the single-run "
        "artifacts --trace/--report/--timeline/--emit or with --adaptive");
  }
  if (args.campaign > 0 && args.profile != "bag-uniform" && args.profile != "bag-gaussian") {
    return E::error("--campaign supports the bag-uniform and bag-gaussian profiles");
  }
  if (cli.seen("--quota") || cli.seen("--slo") || cli.seen("--max-queue-wait")) {
    args.admission = true;
  }
  if (cli.seen("--breaker-threshold") || cli.seen("--breaker-min-events") ||
      cli.seen("--breaker-cooldown")) {
    args.breaker = true;
  }
  if (args.campaign_mode == exp::CampaignMode::kSequential && (args.admission || args.breaker)) {
    return E::error(
        "--campaign-mode sequential runs tenants one at a time through the single-app "
        "path, which has no admission controller or site breakers; use shared or private");
  }
  return args;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}

/// Prints the observability summary and writes the requested artifacts.
/// Returns false when a file could not be written.
bool emit_observability(const Args& args, const obs::Snapshot& snap) {
  std::printf("  observability: %zu spans (max depth %d), %zu instants, %zu metrics, "
              "%zu samples | span checksum %016llx\n",
              snap.span_count, snap.max_span_depth, snap.instant_count, snap.metric_count,
              snap.sample_count, static_cast<unsigned long long>(snap.span_checksum));
  bool ok = true;
  if (!args.trace_out.empty()) {
    ok = write_text_file(args.trace_out, snap.chrome_trace) && ok;
    if (ok) std::printf("  trace-out: %s (open in ui.perfetto.dev)\n", args.trace_out.c_str());
  }
  if (!args.metrics_out.empty()) {
    ok = write_text_file(args.metrics_out, snap.prometheus) && ok;
    ok = write_text_file(args.metrics_out + ".csv", snap.csv) && ok;
    if (ok) {
      std::printf("  metrics-out: %s (+ %s.csv time series)\n", args.metrics_out.c_str(),
                  args.metrics_out.c_str());
    }
  }
  return ok;
}

/// Campaign front end: one trial prints the per-tenant breakdown; --trials N
/// sweeps seeded replicas through the campaign cell runner.
int run_campaign(const Args& args) {
  exp::CampaignSpec spec;
  spec.n_tenants = args.campaign;
  spec.base_tasks = args.tasks;
  spec.gaussian_durations = args.profile == "bag-gaussian";
  spec.n_pilots = args.pilots;
  spec.arrival = args.arrival;
  spec.mode = args.campaign_mode;
  spec.admission.enabled = args.admission;
  if (args.max_queue_wait_s > 0.0) {
    spec.admission.max_queue_wait = common::SimDuration::seconds(args.max_queue_wait_s);
  }
  if (args.admission) {
    spec.slos = {args.slo};
    spec.quotas = {args.quota};
  }
  spec.breaker.enabled = args.breaker;
  if (args.breaker_threshold > 0.0) spec.breaker.trip_threshold = args.breaker_threshold;
  if (args.breaker_min_events > 0) spec.breaker.min_events = args.breaker_min_events;
  if (args.breaker_cooldown_s > 0.0) {
    spec.breaker.cooldown = common::SimDuration::seconds(args.breaker_cooldown_s);
  }

  exp::WorldTweaks tweaks;
  tweaks.warmup = common::SimDuration::hours(args.warmup_hours);
  tweaks.shards = args.shards;
  tweaks.grid_sites = args.grid_sites;
  tweaks.shard_workers = args.shard_workers;
  if (!args.fault_plan_file.empty()) {
    auto file = common::Config::load(args.fault_plan_file);
    if (!file) {
      std::fprintf(stderr, "fault plan: %s\n", file.error().c_str());
      return 1;
    }
    auto plan = sim::FaultPlan::parse(*file);
    if (!plan) {
      std::fprintf(stderr, "fault plan: %s\n", plan.error().c_str());
      return 1;
    }
    tweaks.faults = std::move(*plan);
  }
  if (args.pilot_failure_rate > 0.0) {
    auto rates = tweaks.faults.rates();
    rates.pilot_launch_failure = args.pilot_failure_rate;
    tweaks.faults.with_rates(rates);
  }
  // As in single-run mode, any requested fault arms pilot recovery.
  spec.recovery.enabled = !tweaks.faults.empty();
  const bool obs_on = !args.trace_out.empty() || !args.metrics_out.empty();
  tweaks.observability.enabled = obs_on;
  tweaks.observability.sample_interval =
      common::SimDuration::seconds(args.sample_interval_s);
  tweaks.obs_artifacts = obs_on;
  if (!args.testbed_file.empty()) {
    auto file = common::Config::load(args.testbed_file);
    if (!file) {
      std::fprintf(stderr, "testbed: %s\n", file.error().c_str());
      return 1;
    }
    auto pool = cluster::parse_testbed(*file);
    if (!pool) {
      std::fprintf(stderr, "testbed: %s\n", pool.error().c_str());
      return 1;
    }
    tweaks.testbed = std::move(*pool);
  }

  std::printf("campaign: %d tenants (base %d tasks, sizes x{1,2,4}), mode %s\n",
              spec.n_tenants, spec.base_tasks, std::string(to_string(spec.mode)).c_str());

  if (args.trials > 1) {
    const auto cell =
        exp::run_campaign_cell(spec, args.trials, args.seed, tweaks, args.jobs);
    std::printf("  %d trials: makespan mean %.0f s (stddev %.0f) | tenant TTC mean %.0f s\n",
                args.trials, cell.makespan_s.mean(), cell.makespan_s.stddev(),
                cell.tenant_ttc_s.mean());
    if (spec.admission.enabled) {
      std::printf("  admission: %zu admitted, %zu shed | queue wait mean %.0f s | "
                  "goodput mean %.1f units/h\n",
                  cell.tenants_admitted, cell.tenants_shed, cell.admission_wait_s.mean(),
                  cell.goodput_uph.mean());
    }
    std::printf("  failed trials: %zu of %d | checksum %016llx\n", cell.failures,
                args.trials, static_cast<unsigned long long>(cell.checksum));
    return cell.failures == static_cast<std::size_t>(args.trials) ? 1 : 0;
  }

  const auto trial = exp::run_campaign_trial(spec, args.seed, tweaks);
  std::printf("campaign %s: makespan %s\n", trial.success ? "succeeded" : "INCOMPLETE",
              trial.makespan.str().c_str());
  if (spec.mode == exp::CampaignMode::kSequential) {
    for (std::size_t i = 0; i < trial.tenant_ttc.size(); ++i) {
      std::printf("  t%zu: %d tasks, TTC %s\n", i + 1,
                  exp::campaign_tenant_tasks(spec, static_cast<int>(i)),
                  trial.tenant_ttc[i].str().c_str());
    }
    if (obs_on && !emit_observability(args, trial.obs)) return 1;
    return trial.success ? 0 : 1;
  }
  for (const auto& t : trial.report.tenants) {
    if (t.admission == core::AdmissionOutcome::kShed) {
      std::printf("  %s (w%d): SHED (%s) after %s queued\n", t.name.c_str(), t.weight,
                  core::to_string(t.shed_reason), t.admission_wait.str().c_str());
      continue;
    }
    std::printf("  %s (w%d): %zu done, TTC %s (Tw %s Tx %s Ts %s), pilots %d (%d reused)%s%s\n",
                t.name.c_str(), t.weight, t.units_done, t.ttc.ttc.str().c_str(),
                t.ttc.tw.str().c_str(), t.ttc.tx.str().c_str(), t.ttc.ts.str().c_str(),
                t.pilots_leased, t.pilots_reused, t.error.empty() ? "" : " | ERROR: ",
                t.error.c_str());
    if (t.admission == core::AdmissionOutcome::kAdmittedDegraded ||
        t.admission_wait > common::SimDuration::zero()) {
      std::printf("    admission: %s, %d pilot(s) granted, queued %s, slo %s\n",
                  core::to_string(t.admission), t.granted_pilots, t.admission_wait.str().c_str(),
                  core::to_string(t.slo));
    }
  }
  if (trial.report.admission.requests > 0) {
    std::printf("  admission: %llu requests | %llu admitted, %llu degraded, %llu queued, "
                "%llu shed\n",
                static_cast<unsigned long long>(trial.report.admission.requests),
                static_cast<unsigned long long>(trial.report.admission.admitted),
                static_cast<unsigned long long>(trial.report.admission.degraded),
                static_cast<unsigned long long>(trial.report.admission.queued),
                static_cast<unsigned long long>(trial.report.admission.shed));
  }
  if (trial.report.health.trips > 0 || trial.report.recovery.pilots_lost > 0) {
    std::printf("  health: %llu failures seen, %llu breaker trip(s), %llu probe(s) | "
                "recovery: %zu lost, %zu resubmitted\n",
                static_cast<unsigned long long>(trial.report.health.failures),
                static_cast<unsigned long long>(trial.report.health.trips),
                static_cast<unsigned long long>(trial.report.health.half_opens),
                trial.report.recovery.pilots_lost, trial.report.recovery.pilots_resubmitted);
  }
  std::printf("  pool: %d launched, %d leases served from running pilots, %d idled out\n",
              trial.report.pool.launched, trial.report.pool.reused,
              trial.report.pool.cancelled_idle);
  for (const auto& f : trial.report.fair_share) {
    std::printf("  fair-share t%d (w%d): %llu dispatches, max gap %llu\n", f.tenant,
                f.weight, static_cast<unsigned long long>(f.dispatched),
                static_cast<unsigned long long>(f.max_dispatch_gap));
  }
  std::printf("  throughput %.1f tasks/h over the campaign makespan\n",
              trial.report.metrics.throughput_tasks_per_hour);
  if (obs_on) {
    std::printf("  peak concurrent executing units (sampled gauge): %zu\n",
                trial.report.metrics.peak_units_executing);
    if (!emit_observability(args, trial.obs)) return 1;
  }
  return trial.success ? 0 : 1;
}

common::Expected<skeleton::SkeletonSpec> load_spec(const Args& args) {
  using E = common::Expected<skeleton::SkeletonSpec>;
  if (!args.skeleton_file.empty()) {
    auto config = common::Config::load(args.skeleton_file);
    if (!config) return E::error(config.error());
    return skeleton::parse_spec(*config);
  }
  if (args.profile == "bag-uniform") return skeleton::profiles::bag_uniform(args.tasks);
  if (args.profile == "bag-gaussian") return skeleton::profiles::bag_gaussian(args.tasks);
  if (args.profile == "montage") return skeleton::profiles::montage_like(args.tasks);
  if (args.profile == "blast") return skeleton::profiles::blast_like(args.tasks);
  if (args.profile == "cybershake") return skeleton::profiles::cybershake_like(args.tasks);
  if (args.profile == "mapreduce") {
    return skeleton::profiles::map_reduce(args.tasks, std::max(1, args.tasks / 8),
                                          common::DistributionSpec::constant(300),
                                          common::DistributionSpec::constant(120));
  }
  return E::error("unknown profile '" + args.profile + "'");
}

int emit_skeleton(const Args& args, const skeleton::SkeletonApplication& app) {
  std::string text;
  if (args.emit == "shell") text = skeleton::to_shell_script(app);
  else if (args.emit == "json") text = skeleton::to_json(app);
  else if (args.emit == "dax") text = skeleton::to_pegasus_dax(app);
  else if (args.emit == "swift") text = skeleton::to_swift_script(app);
  else {
    std::fprintf(stderr, "unknown emit format '%s'\n", args.emit.c_str());
    return 2;
  }
  if (args.emit_out.empty() || args.emit_out == "-") {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream out(args.emit_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.emit_out.c_str());
      return 1;
    }
    out << text;
    std::printf("wrote %s (%zu bytes, %s form)\n", args.emit_out.c_str(), text.size(),
                args.emit.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = parse_args(argc, argv);
  if (!parsed) {
    std::fprintf(stderr, "%s\n", parsed.error().c_str());
    return 2;
  }
  const Args& args = *parsed;
  if (args.verbose) common::Log::set_level(common::LogLevel::kInfo);

  if (args.campaign > 0) return run_campaign(args);

  auto spec = load_spec(args);
  if (!spec) {
    std::fprintf(stderr, "skeleton: %s\n", spec.error().c_str());
    return 1;
  }
  const auto app = skeleton::materialize(*spec, args.seed);
  std::printf("application '%s': %zu tasks in %zu stage(s), %s compute, %s external input\n",
              app.name().c_str(), app.task_count(), app.stages().size(),
              app.total_compute().str().c_str(), app.total_external_input().str().c_str());

  if (!args.emit.empty()) return emit_skeleton(args, app);

  core::AimesConfig config;
  config.seed = args.seed;
  config.warmup = common::SimDuration::hours(args.warmup_hours);
  config.shards = args.shards;
  config.grid_sites = args.grid_sites;
  config.shard_workers = args.shard_workers;
  const bool obs_on = !args.trace_out.empty() || !args.metrics_out.empty();
  config.observability.enabled = obs_on;
  config.observability.sample_interval =
      common::SimDuration::seconds(args.sample_interval_s);
  if (!args.testbed_file.empty()) {
    auto file = common::Config::load(args.testbed_file);
    if (!file) {
      std::fprintf(stderr, "testbed: %s\n", file.error().c_str());
      return 1;
    }
    auto pool = cluster::parse_testbed(*file);
    if (!pool) {
      std::fprintf(stderr, "testbed: %s\n", pool.error().c_str());
      return 1;
    }
    config.testbed = std::move(*pool);
  }
  if (!args.fault_plan_file.empty()) {
    auto file = common::Config::load(args.fault_plan_file);
    if (!file) {
      std::fprintf(stderr, "fault plan: %s\n", file.error().c_str());
      return 1;
    }
    auto plan = sim::FaultPlan::parse(*file);
    if (!plan) {
      std::fprintf(stderr, "fault plan: %s\n", plan.error().c_str());
      return 1;
    }
    config.faults = std::move(*plan);
  }
  if (args.pilot_failure_rate > 0.0) {
    auto rates = config.faults.rates();
    rates.pilot_launch_failure = args.pilot_failure_rate;
    config.faults.with_rates(rates);
  }
  // Any requested fault makes recovery part of the experiment.
  if (!config.faults.empty()) config.execution.recovery.enabled = true;

  core::PlannerConfig planner;
  planner.binding = args.binding == "early" ? core::Binding::kEarly : core::Binding::kLate;
  planner.n_pilots = args.pilots;
  planner.selection = args.selection == "random" ? core::SiteSelection::kRandom
                                                 : core::SiteSelection::kPredictedWait;

  if (args.trials > 1) {
    // Sweep mode: N independent replicas of the configured experiment, seeded
    // seed..seed+N-1, fanned out over the pool. Each replica owns its engine
    // and world; results come back in seed order, so the aggregate is
    // bit-identical for every --jobs value (trial 0 == the single-run seed).
    struct Trial {
      bool ok = false;
      double ttc = 0;
      double tw = 0;
      double tx = 0;
      double ts = 0;
      double faults = 0;
      double resubmitted = 0;
    };
    sim::ReplicaPool pool(args.jobs == 0 ? 0u : static_cast<unsigned>(args.jobs));
    std::printf("\nsweep: %d trials (seeds %llu..%llu), %u worker(s)\n", args.trials,
                static_cast<unsigned long long>(args.seed),
                static_cast<unsigned long long>(args.seed + args.trials - 1), pool.jobs());
    const auto results = pool.map<Trial>(
        static_cast<std::size_t>(args.trials), [&](std::size_t t) {
          core::AimesConfig replica = config;
          replica.seed = args.seed + t;
          core::Aimes world(replica);
          world.start();
          const auto replica_app = skeleton::materialize(*spec, replica.seed);
          auto result = world.run(replica_app, planner);
          Trial trial;
          if (!result.ok() || !result->report.success) return trial;
          trial.ok = true;
          trial.ttc = result->report.ttc.ttc.to_seconds();
          trial.tw = result->report.ttc.tw.to_seconds();
          trial.tx = result->report.ttc.tx.to_seconds();
          trial.ts = result->report.ttc.ts.to_seconds();
          trial.faults = static_cast<double>(result->report.faults.total());
          trial.resubmitted =
              static_cast<double>(result->report.recovery.pilots_resubmitted);
          return trial;
        });
    common::Summary ttc;
    common::Summary tw;
    common::Summary tx;
    common::Summary ts;
    common::Summary faults;
    common::Summary resubmitted;
    int failures = 0;
    for (const auto& trial : results) {
      if (!trial.ok) {
        ++failures;
        continue;
      }
      ttc.add(trial.ttc);
      tw.add(trial.tw);
      tx.add(trial.tx);
      ts.add(trial.ts);
      faults.add(trial.faults);
      resubmitted.add(trial.resubmitted);
    }
    std::printf("  TTC mean %.0f s (stddev %.0f, p50 %.0f) | Tw %.0f | Tx %.0f | Ts %.0f\n",
                ttc.mean(), ttc.stddev(), ttc.percentile(50), tw.mean(), tx.mean(),
                ts.mean());
    if (faults.mean() > 0.0 || resubmitted.mean() > 0.0) {
      std::printf("  faults/trial mean %.1f | pilots resubmitted/trial mean %.1f\n",
                  faults.mean(), resubmitted.mean());
    }
    std::printf("  failed trials: %d of %d\n", failures, args.trials);
    return failures == args.trials ? 1 : 0;
  }

  core::Aimes aimes(config);
  aimes.start();

  auto strategy = aimes.plan(app, planner);
  if (!strategy) {
    std::fprintf(stderr, "planner: %s\n", strategy.error().c_str());
    return 1;
  }
  std::printf("\n%s\n", strategy->describe().c_str());

  pilot::Profiler adaptive_trace;
  core::ExecutionReport report;
  std::size_t adaptation_count = 0;
  if (args.adaptive) {
    core::AdaptiveExecutionManager manager(
        aimes.engine(), adaptive_trace, aimes.services(), aimes.staging(), aimes.bundles(),
        aimes.config().execution, core::AdaptivePolicy{}, common::Rng(args.seed));
    bool done = false;
    auto status = manager.enact(app, *strategy, [&](const core::ExecutionReport&) {
      done = true;
    });
    if (!status.ok()) {
      std::fprintf(stderr, "enact: %s\n", status.error().c_str());
      return 1;
    }
    while (!done && aimes.engine().step()) {
    }
    report = manager.report();
    adaptation_count = manager.adaptations().size();
  } else {
    auto result = aimes.execute(app, *strategy);
    report = result.report;
    adaptive_trace = std::move(result.trace);
  }

  std::printf("run %s: %zu done, %zu failed\n", report.success ? "succeeded" : "INCOMPLETE",
              report.units_done, report.units_failed);
  std::printf("  TTC %s | Tw %s | Tx %s | Ts %s\n", report.ttc.ttc.str().c_str(),
              report.ttc.tw.str().c_str(), report.ttc.tx.str().c_str(),
              report.ttc.ts.str().c_str());
  std::printf("  throughput %.1f tasks/h | pilot usage %.1f core-h (%.0f%% useful) | "
              "charge %.1f SU | energy %.2f kWh\n",
              report.metrics.throughput_tasks_per_hour, report.metrics.pilot_core_hours,
              100.0 * report.metrics.pilot_efficiency, report.metrics.charge,
              report.metrics.energy_kwh);
  if (args.adaptive) std::printf("  adaptations: %zu\n", adaptation_count);
  if (report.faults.total() > 0 || report.recovery.pilots_lost > 0) {
    std::printf("  faults: %zu injected (%zu launch, %zu kill, %zu outage, %zu transfer) | "
                "recovery: %zu lost, %zu resubmitted, %zu abandoned, mean latency %s\n",
                report.faults.total(), report.faults.pilot_launch_failures,
                report.faults.pilot_kills, report.faults.site_outages,
                report.faults.transfer_failures, report.recovery.pilots_lost,
                report.recovery.pilots_resubmitted, report.recovery.recoveries_abandoned,
                report.recovery.mean_recovery_latency().str().c_str());
  }

  if (aimes.recorder() != nullptr) {
    std::printf("  peak concurrent executing units (sampled gauge): %zu\n",
                report.metrics.peak_units_executing);
    std::printf("  engine: %zu events executed, peak queue %zu\n", aimes.engine().executed(),
                aimes.engine().peak_queued());
    if (!emit_observability(args, aimes.recorder()->snapshot(true))) return 1;
  }

  if (args.timeline) {
    if (core::build_timeline(adaptive_trace).empty()) {
      // No rows to draw: the trace has no RUN_START (run failed before
      // enactment) or no time passed after it.
      std::printf("\ntimeline: no RUN_START record in the trace, nothing to draw "
                  "(did the run fail before enactment?)\n");
    } else {
      std::printf("\n%s", core::render_timeline(adaptive_trace).c_str());
    }
  }
  if (!args.report_file.empty()) {
    auto saved = core::save_report_json(report, args.report_file);
    if (!saved.ok()) {
      std::fprintf(stderr, "report: %s\n", saved.error().c_str());
      return 1;
    }
    std::printf("  report: %s\n", args.report_file.c_str());
  }
  if (!args.trace_file.empty()) {
    std::ofstream out(args.trace_file);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.trace_file.c_str());
      return 1;
    }
    adaptive_trace.render_csv(out);
    std::printf("  trace: %zu records -> %s\n", adaptive_trace.size(),
                args.trace_file.c_str());
  }
  return report.success ? 0 : 1;
}
