// aimesd: the AIMES control-plane daemon.
//
// Serves the run-request API over local HTTP (127.0.0.1 only, or a
// unix-domain socket with --socket) and executes submitted requests
// concurrently on the registry's worker pool — the same exp::execute the CLI
// uses, so a campaign submitted here is bit-identical (FNV-1a checksum) to
// the same cell run by `aimes-run`. See ctl/daemon.hpp for the route table;
// `aimesc` is the matching client.
//
// Shutdown is graceful on SIGINT/SIGTERM or POST /api/v1/shutdown: the
// listener closes, queued runs are cancelled with a typed shutdown reason,
// in-flight runs stop at their next trial boundary.
//
// With `--journal FILE` the run table is durable: every lifecycle transition
// is appended to a JSONL journal and replayed at startup, so a restarted
// daemon serves the full history and marks runs orphaned by a crash as
// failed (daemon-restart). A journal that cannot be opened or replayed is a
// startup failure — a silently non-durable daemon is worse than no daemon.
//
// Hostile-tenant defenses (all off by default): --rate puts a per-user token
// bucket in front of POST /runs, --max-queued/--max-running cap one user's
// share of the pool, --queue-depth bounds the global backlog. Refusals are
// typed 429/503 responses with Retry-After. --net-faults installs the seeded
// wire-fault shim (short reads/writes, stalls, resets) for chaos testing.
//
// Examples:
//   aimesd --port 8477
//   aimesd --port 0 --port-file /tmp/aimesd.port --workers 4
//   aimesd --journal /var/tmp/aimes-runs.jsonl
//   aimesd --socket /tmp/aimesd.sock --max-queued 4 --rate 5:10
//   aimesd --net-faults 'seed=7,reset=0.1,short-read=0.25'

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "ctl/daemon.hpp"
#include "net/fault.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

struct Args {
  int port = 8477;
  std::string port_file;
  std::string socket;
  int workers = 2;
  std::string user = "anon";
  std::string journal;
  std::string net_faults;
  int max_queued = 0;
  int max_running = 0;
  int queue_depth = 0;
  std::string rate;
  bool verbose = false;
};

/// Parses --rate R[:BURST] into the quota policy.
aimes::common::Status parse_rate(const std::string& text, aimes::ctl::QuotaPolicy& quota) {
  const auto colon = text.find(':');
  char* end = nullptr;
  const std::string rate_text = text.substr(0, colon);
  quota.rate_per_s = std::strtod(rate_text.c_str(), &end);
  if (end == rate_text.c_str() || *end != '\0' || quota.rate_per_s <= 0.0) {
    return aimes::common::Status::error("expected R[:BURST] with R > 0, got '" + text + "'");
  }
  if (colon != std::string::npos) {
    const std::string burst_text = text.substr(colon + 1);
    quota.rate_burst = std::strtod(burst_text.c_str(), &end);
    if (end == burst_text.c_str() || *end != '\0' || quota.rate_burst < 1.0) {
      return aimes::common::Status::error("burst must be >= 1, got '" + burst_text + "'");
    }
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aimes;
  Args args;
  common::cli::Parser cli("aimesd");
  cli.int_option("--port", args.port, 0, 65535,
                 "TCP port on 127.0.0.1 (0 = pick an ephemeral port; 8477)", "PORT");
  cli.string_option("--port-file", args.port_file,
                    "write the bound port number to FILE once listening\n"
                    "(for scripts that start with --port 0)",
                    "FILE");
  cli.string_option("--socket", args.socket,
                    "serve on a unix-domain socket at PATH instead of TCP\n"
                    "(aimesc --socket PATH is the matching client)",
                    "PATH");
  cli.int_option("--workers", args.workers, 1, 256, "concurrent runs (2)", "N");
  cli.string_option("--user", args.user, "owner recorded for anonymous submissions", "NAME");
  cli.string_option("--journal", args.journal,
                    "JSONL run journal: replayed at startup (prior runs\n"
                    "recovered, orphaned ones failed with daemon-restart),\n"
                    "then appended per lifecycle transition",
                    "FILE");
  cli.int_option("--max-queued", args.max_queued, 0, 1000000,
                 "queued runs one user may hold (0 = unlimited)", "N");
  cli.int_option("--max-running", args.max_running, 0, 1000000,
                 "concurrent runs one user may hold (0 = unlimited)", "N");
  cli.int_option("--queue-depth", args.queue_depth, 0, 1000000,
                 "global queued-run bound; over it submits get 503\n"
                 "(0 = unlimited)",
                 "N");
  cli.string_option("--rate", args.rate,
                    "per-user submit rate limit: R tokens/second with\n"
                    "an optional :BURST bucket size (default burst =\n"
                    "max(1, R)); over it submits get 429 + Retry-After",
                    "R[:B]");
  cli.string_option("--net-faults", args.net_faults,
                    "seeded wire-fault injection for chaos testing, e.g.\n"
                    "'seed=7,reset=0.1,short-read=0.25,read-stall=0.05';\n"
                    "keys: seed, short-read, short-write, read-stall,\n"
                    "reset, accept-reset, stall-ms",
                    "SPEC");
  cli.flag("--verbose", args.verbose, "info-level logging");
  cli.conflicts("--socket", "--port");
  cli.conflicts("--socket", "--port-file");
  auto parsed = cli.parse(argc, argv);
  if (!parsed) {
    std::fprintf(stderr, "%s\n", parsed.error().c_str());
    return 2;
  }
  if (parsed->help) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  if (args.verbose) common::Log::set_level(common::LogLevel::kInfo);

  if (!args.net_faults.empty()) {
    auto spec = net::parse_fault_spec(args.net_faults);
    if (!spec) {
      std::fprintf(stderr, "aimesd: --net-faults: %s\n", spec.error().c_str());
      return 2;
    }
    net::install_net_faults(*spec);
    std::printf("aimesd: net-fault shim armed (%s)\n", net::to_string(*spec).c_str());
  }

  ctl::DaemonOptions options;
  options.default_user = args.user;
  options.workers = args.workers;
  options.journal_file = args.journal;
  options.quota.max_queued_per_user = args.max_queued;
  options.quota.max_running_per_user = args.max_running;
  options.quota.max_queue_depth = static_cast<std::size_t>(args.queue_depth);
  if (!args.rate.empty()) {
    if (auto st = parse_rate(args.rate, options.quota); !st.ok()) {
      std::fprintf(stderr, "aimesd: --rate: %s\n", st.error().c_str());
      return 2;
    }
  }
  ctl::Daemon daemon(options);
  if (auto st = daemon.registry().journal_status(); !st.ok()) {
    std::fprintf(stderr, "aimesd: %s\n", st.error().c_str());
    return 1;
  }
  if (!args.journal.empty()) {
    const auto recovered = static_cast<unsigned long long>(daemon.registry().counters().submitted);
    std::printf("aimesd: journal %s (%llu prior run%s recovered)\n", args.journal.c_str(),
                recovered, recovered == 1 ? "" : "s");
  }
  if (!args.socket.empty()) {
    if (auto st = daemon.start_unix(args.socket); !st.ok()) {
      std::fprintf(stderr, "aimesd: %s\n", st.error().c_str());
      return 1;
    }
    std::printf("aimesd: listening on unix:%s (%d worker%s)\n", args.socket.c_str(),
                args.workers, args.workers == 1 ? "" : "s");
  } else {
    auto port = daemon.start(static_cast<std::uint16_t>(args.port));
    if (!port) {
      std::fprintf(stderr, "aimesd: %s\n", port.error().c_str());
      return 1;
    }
    if (!args.port_file.empty()) {
      std::ofstream out(args.port_file);
      if (!out) {
        std::fprintf(stderr, "aimesd: cannot write %s\n", args.port_file.c_str());
        return 1;
      }
      out << *port << "\n";
    }
    std::printf("aimesd: listening on 127.0.0.1:%u (%d worker%s)\n", unsigned{*port},
                args.workers, args.workers == 1 ? "" : "s");
  }
  std::fflush(stdout);

  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  while (!g_stop.load() && !daemon.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("aimesd: draining (%zu queued, %zu running)\n", daemon.registry().queued(),
              daemon.registry().running());
  std::fflush(stdout);
  daemon.stop();
  std::printf("aimesd: bye\n");
  return 0;
}
