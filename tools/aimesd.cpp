// aimesd: the AIMES control-plane daemon.
//
// Serves the run-request API over local HTTP (127.0.0.1 only) and executes
// submitted requests concurrently on the registry's worker pool — the same
// exp::execute the CLI uses, so a campaign submitted here is bit-identical
// (FNV-1a checksum) to the same cell run by `aimes-run`. See ctl/daemon.hpp
// for the route table; `aimesc` is the matching client.
//
// Shutdown is graceful on SIGINT/SIGTERM or POST /api/v1/shutdown: the
// listener closes, queued runs are cancelled with a typed shutdown reason,
// in-flight runs stop at their next trial boundary.
//
// With `--journal FILE` the run table is durable: every lifecycle transition
// is appended to a JSONL journal and replayed at startup, so a restarted
// daemon serves the full history and marks runs orphaned by a crash as
// failed (daemon-restart). A journal that cannot be opened or replayed is a
// startup failure — a silently non-durable daemon is worse than no daemon.
//
// Examples:
//   aimesd --port 8477
//   aimesd --port 0 --port-file /tmp/aimesd.port --workers 4
//   aimesd --journal /var/tmp/aimes-runs.jsonl

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "ctl/daemon.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

struct Args {
  int port = 8477;
  std::string port_file;
  int workers = 2;
  std::string user = "anon";
  std::string journal;
  bool verbose = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace aimes;
  Args args;
  common::cli::Parser cli("aimesd");
  cli.int_option("--port", args.port, 0, 65535,
                 "TCP port on 127.0.0.1 (0 = pick an ephemeral port; 8477)", "PORT");
  cli.string_option("--port-file", args.port_file,
                    "write the bound port number to FILE once listening\n"
                    "(for scripts that start with --port 0)",
                    "FILE");
  cli.int_option("--workers", args.workers, 1, 256, "concurrent runs (2)", "N");
  cli.string_option("--user", args.user, "owner recorded for anonymous submissions", "NAME");
  cli.string_option("--journal", args.journal,
                    "JSONL run journal: replayed at startup (prior runs\n"
                    "recovered, orphaned ones failed with daemon-restart),\n"
                    "then appended per lifecycle transition",
                    "FILE");
  cli.flag("--verbose", args.verbose, "info-level logging");
  auto parsed = cli.parse(argc, argv);
  if (!parsed) {
    std::fprintf(stderr, "%s\n", parsed.error().c_str());
    return 2;
  }
  if (parsed->help) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  if (args.verbose) common::Log::set_level(common::LogLevel::kInfo);

  ctl::DaemonOptions options;
  options.default_user = args.user;
  options.workers = args.workers;
  options.journal_file = args.journal;
  ctl::Daemon daemon(options);
  if (auto st = daemon.registry().journal_status(); !st.ok()) {
    std::fprintf(stderr, "aimesd: %s\n", st.error().c_str());
    return 1;
  }
  if (!args.journal.empty()) {
    const auto recovered = static_cast<unsigned long long>(daemon.registry().counters().submitted);
    std::printf("aimesd: journal %s (%llu prior run%s recovered)\n", args.journal.c_str(),
                recovered, recovered == 1 ? "" : "s");
  }
  auto port = daemon.start(static_cast<std::uint16_t>(args.port));
  if (!port) {
    std::fprintf(stderr, "aimesd: %s\n", port.error().c_str());
    return 1;
  }
  if (!args.port_file.empty()) {
    std::ofstream out(args.port_file);
    if (!out) {
      std::fprintf(stderr, "aimesd: cannot write %s\n", args.port_file.c_str());
      return 1;
    }
    out << *port << "\n";
  }
  std::printf("aimesd: listening on 127.0.0.1:%u (%d worker%s)\n", unsigned{*port},
              args.workers, args.workers == 1 ? "" : "s");
  std::fflush(stdout);

  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  while (!g_stop.load() && !daemon.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("aimesd: draining (%zu queued, %zu running)\n", daemon.registry().queued(),
              daemon.registry().running());
  std::fflush(stdout);
  daemon.stop();
  std::printf("aimesd: bye\n");
  return 0;
}
