// aimesc: command-line client for the aimesd control plane.
//
//   aimesc submit [run flags] [--name N] [--user U] [--wait]
//   aimesc list   [--user U]
//   aimesc view    <id>
//   aimesc log     <id>
//   aimesc cancel  <id>
//   aimesc resource
//   aimesc metrics
//   aimesc shutdown
//
// `submit` takes the exact run flags `aimes-run` takes (they fill the same
// typed exp::RunRequest, serialized as JSON over loopback HTTP), so any
// command line that works locally works remotely by s/aimes-run/aimesc
// submit/ — and produces the identical FNV-1a checksum. `--wait` polls the
// run to completion and prints the result summary; its exit code then
// reflects the run (0 done, 1 failed/cancelled).
//
// Exit codes: 0 success, 1 daemon/run error, 2 usage error.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "core/json_scan.hpp"
#include "exp/request.hpp"
#include "exp/request_cli.hpp"
#include "net/http.hpp"

namespace {

using namespace aimes;

constexpr int kDefaultPort = 8477;

const char* kUsage =
    "usage: aimesc <verb> [options]\n"
    "\n"
    "verbs:\n"
    "  submit    submit a run request (takes aimes-run's flags; see --help)\n"
    "  list      list runs, newest first\n"
    "  view      show one run's record and result   (aimesc view <id>)\n"
    "  log       print one run's progress log       (aimesc log <id>)\n"
    "  cancel    request cancellation of a run      (aimesc cancel <id>)\n"
    "  resource  describe the simulated grid the daemon runs on\n"
    "  metrics   dump the daemon's Prometheus exposition\n"
    "  shutdown  ask the daemon to drain and exit\n"
    "\n"
    "every verb takes --port PORT (default 8477).\n";

/// One HTTP exchange with the local daemon; exits talking to stderr on
/// transport errors so verbs can chain calls without plumbing Expected.
common::Expected<net::HttpResponse> call(int port, const std::string& method,
                                         const std::string& target,
                                         const std::string& body = "") {
  net::HttpRequest request;
  request.method = method;
  request.target = target;
  request.body = body;
  return net::http_call(static_cast<std::uint16_t>(port), request);
}

/// Prints the daemon's typed error body ({"error": "..."}) or the raw body.
void print_error_body(const net::HttpResponse& response) {
  core::json::FieldScanner scanner("response", response.body);
  if (auto err = scanner.text("error")) {
    std::fprintf(stderr, "aimesc: %s (HTTP %d)\n", err->c_str(), response.status);
  } else {
    std::fprintf(stderr, "aimesc: HTTP %d: %s\n", response.status, response.body.c_str());
  }
}

/// Splits a JSON array of objects into its "{...}" elements (enough for the
/// daemon's own output; strings with braces are handled, arrays of arrays —
/// which the daemon never emits — are not).
std::vector<std::string> split_objects(const std::string& json) {
  std::vector<std::string> out;
  int depth = 0;
  bool in_string = false;
  std::size_t start = 0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') {
      if (depth++ == 0) start = i;
    } else if (c == '}') {
      if (--depth == 0) out.push_back(json.substr(start, i - start + 1));
    }
  }
  return out;
}

/// One run's line in `aimesc list`: id, state, user, name.
void print_run_line(const std::string& record_json) {
  core::json::FieldScanner scanner("record", record_json);
  const auto id = scanner.number("id");
  const auto state = scanner.text("state");
  const auto user = scanner.text("user");
  const auto name = scanner.text("name");
  if (!id || !state) return;
  std::printf("  %4.0f  %-10s %-10s %s\n", *id, state->c_str(),
              user ? user->c_str() : "?", name ? name->c_str() : "");
}

bool terminal_state(const std::string& state) {
  return state == "done" || state == "failed" || state == "cancelled";
}

/// Prints the completed run's summary from its record JSON; returns the
/// process exit code (0 only for a fully successful run).
int print_outcome(const std::string& record_json) {
  core::json::FieldScanner scanner("record", record_json);
  const auto state = scanner.text("state");
  if (!state) {
    std::fprintf(stderr, "aimesc: %s\n", state.error().c_str());
    return 1;
  }
  auto result = scanner.object("result");
  if (!result) {
    std::printf("run %s (no result recorded)\n", state->c_str());
    return *state == "done" ? 0 : 1;
  }
  const auto success = result->boolean("success");
  const auto checksum = result->text("checksum");
  const auto wall = result->number("wall_seconds");
  std::printf("run %s%s", state->c_str(),
              success && *success ? "" : " (with failures)");
  if (checksum) std::printf(" | checksum %s", checksum->c_str());
  if (wall) std::printf(" | wall %.1f s", *wall);
  std::printf("\n");
  if (const auto error = result->text("error"); error && !error->empty()) {
    std::fprintf(stderr, "aimesc: run error: %s\n", error->c_str());
  }
  return (*state == "done" && success && *success) ? 0 : 1;
}

int cmd_submit(int argc, char** argv) {
  exp::RunRequest req;
  bool quick = false;
  bool wait = false;
  int port = kDefaultPort;
  double poll_s = 1.0;
  common::cli::Parser cli("aimesc submit");
  exp::declare_request_options(cli, req, quick);
  cli.string_option("--name", req.name, "label for the run in list/view output", "NAME");
  cli.string_option("--user", req.user, "owner recorded with the run", "NAME");
  cli.flag("--wait", wait, "poll the run to completion and print its result");
  cli.double_option("--poll", poll_s, 0.05, 3600, "poll interval with --wait (1 s)", "S");
  cli.int_option("--port", port, 1, 65535, "aimesd port (8477)", "PORT");
  auto parsed = cli.parse(argc, argv);
  if (!parsed) {
    std::fprintf(stderr, "%s\n", parsed.error().c_str());
    return 2;
  }
  if (parsed->help) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  exp::finalize_request_options(cli, req, quick);
  if (auto st = exp::validate(req); !st.ok()) {
    // Reject locally with the same typed message the daemon would return.
    std::fprintf(stderr, "%s\n", st.error().c_str());
    return 2;
  }

  auto response = call(port, "POST", "/api/v1/runs", exp::run_request_to_json(req));
  if (!response) {
    std::fprintf(stderr, "aimesc: %s\n", response.error().c_str());
    return 1;
  }
  if (response->status != 202) {
    print_error_body(*response);
    return 1;
  }
  core::json::FieldScanner scanner("response", response->body);
  const auto id = scanner.number("id");
  if (!id) {
    std::fprintf(stderr, "aimesc: %s\n", id.error().c_str());
    return 1;
  }
  const auto run_id = static_cast<std::uint64_t>(*id);
  std::printf("submitted run %llu\n", static_cast<unsigned long long>(run_id));
  if (!wait) return 0;

  const std::string target = "/api/v1/runs/" + std::to_string(run_id);
  std::string last_state;
  for (;;) {
    auto view = call(port, "GET", target);
    if (!view) {
      std::fprintf(stderr, "aimesc: %s\n", view.error().c_str());
      return 1;
    }
    if (view->status != 200) {
      print_error_body(*view);
      return 1;
    }
    core::json::FieldScanner record("record", view->body);
    const auto state = record.text("state");
    if (!state) {
      std::fprintf(stderr, "aimesc: %s\n", state.error().c_str());
      return 1;
    }
    if (*state != last_state) {
      std::printf("run %llu: %s\n", static_cast<unsigned long long>(run_id),
                  state->c_str());
      std::fflush(stdout);
      last_state = *state;
    }
    if (terminal_state(*state)) return print_outcome(view->body);
    std::this_thread::sleep_for(std::chrono::duration<double>(poll_s));
  }
}

/// Parses `aimesc <verb> [<id>] [--port P]` for the id-addressed verbs and
/// the flagless ones. Returns the exit code.
int cmd_simple(const std::string& verb, int argc, char** argv) {
  int port = kDefaultPort;
  std::string user;
  std::uint64_t id = 0;
  bool id_seen = false;

  // Accept a bare numeric id directly after the verb: `aimesc view 3`. Only
  // that position — a later bare number is some flag's value, not an id.
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  int first_flag = 1;
  if (argc > 1 && argv[1][0] != '-') {
    char* end = nullptr;
    const unsigned long long parsed_id = std::strtoull(argv[1], &end, 10);
    if (end != nullptr && *end == '\0' && *argv[1] != '\0') {
      id = parsed_id;
      id_seen = true;
      first_flag = 2;
    }
  }
  for (int i = first_flag; i < argc; ++i) rest.push_back(argv[i]);

  common::cli::Parser cli("aimesc " + verb);
  cli.int_option("--port", port, 1, 65535, "aimesd port (8477)", "PORT");
  if (verb == "list") cli.string_option("--user", user, "only this user's runs", "NAME");
  auto parsed = cli.parse(static_cast<int>(rest.size()), rest.data());
  if (!parsed) {
    std::fprintf(stderr, "%s\n", parsed.error().c_str());
    return 2;
  }
  if (parsed->help) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }

  const bool needs_id = verb == "view" || verb == "log" || verb == "cancel";
  if (needs_id && !id_seen) {
    std::fprintf(stderr, "aimesc %s: run id required (aimesc %s <id>)\n", verb.c_str(),
                 verb.c_str());
    return 2;
  }

  std::string method = "GET";
  std::string target;
  if (verb == "list") {
    target = user.empty() ? "/api/v1/runs" : "/api/v1/runs?user=" + user;
  } else if (verb == "view") {
    target = "/api/v1/runs/" + std::to_string(id);
  } else if (verb == "log") {
    target = "/api/v1/runs/" + std::to_string(id) + "/log";
  } else if (verb == "cancel") {
    method = "POST";
    target = "/api/v1/runs/" + std::to_string(id) + "/cancel";
  } else if (verb == "resource") {
    target = "/api/v1/resource";
  } else if (verb == "metrics") {
    target = "/metrics";
  } else if (verb == "shutdown") {
    method = "POST";
    target = "/api/v1/shutdown";
  }

  auto response = call(port, method, target);
  if (!response) {
    std::fprintf(stderr, "aimesc: %s\n", response.error().c_str());
    return 1;
  }
  if (response->status >= 400) {
    print_error_body(*response);
    return 1;
  }

  if (verb == "list") {
    // The body is {"runs": [ {...}, ... ]}; split inside the array so the
    // outer wrapper does not count as the one-and-only object.
    const std::size_t open = response->body.find('[');
    const std::size_t close = response->body.rfind(']');
    const auto records =
        open == std::string::npos || close == std::string::npos || close < open
            ? std::vector<std::string>{}
            : split_objects(response->body.substr(open, close - open + 1));
    if (records.empty()) {
      std::printf("no runs\n");
      return 0;
    }
    std::printf("   id  state      user       name\n");
    for (const auto& record : records) print_run_line(record);
    return 0;
  }
  if (verb == "cancel") {
    core::json::FieldScanner scanner("response", response->body);
    const auto state = scanner.text("state");
    std::printf("run %llu: %s\n", static_cast<unsigned long long>(id),
                state ? state->c_str() : "cancellation requested");
    return 0;
  }
  // view / log / resource / metrics / shutdown: the body is the answer.
  std::fputs(response->body.c_str(), stdout);
  if (!response->body.empty() && response->body.back() != '\n') std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0) {
    std::fputs(kUsage, argc < 2 ? stderr : stdout);
    return argc < 2 ? 2 : 0;
  }
  const std::string verb = argv[1];
  if (verb == "submit") return cmd_submit(argc - 1, argv + 1);
  if (verb == "list" || verb == "view" || verb == "log" || verb == "cancel" ||
      verb == "resource" || verb == "metrics" || verb == "shutdown") {
    return cmd_simple(verb, argc - 1, argv + 1);
  }
  std::fprintf(stderr, "aimesc: unknown verb '%s'\n\n%s", verb.c_str(), kUsage);
  return 2;
}
