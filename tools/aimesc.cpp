// aimesc: command-line client for the aimesd control plane.
//
//   aimesc submit [run flags] [--name N] [--user U] [--wait]
//   aimesc list   [--user U] [--state S]
//   aimesc view    <id>
//   aimesc log     <id> [--offset N] [--follow]
//   aimesc watch   <id>
//   aimesc top    [--interval S] [--once]
//   aimesc cancel  <id>
//   aimesc resource
//   aimesc metrics
//   aimesc shutdown
//
// `submit` takes the exact run flags `aimes-run` takes (they fill the same
// typed exp::RunRequest, serialized as JSON over loopback HTTP or a unix
// socket), so any command line that works locally works remotely by
// s/aimes-run/aimesc submit/ — and produces the identical FNV-1a checksum.
// `--wait` tails the run's log live over a chunked stream (reconnecting from
// its byte offset after drops) and prints the result summary; its exit code
// then reflects the run (0 done, 1 failed/cancelled). `watch` renders the
// run's SSE event stream — every state transition and per-trial RunProgress
// snapshot — and `top` is a self-refreshing table of all runs.
//
// Resilience: every request retries transport failures and the daemon's
// typed 429/503 refusals (honoring Retry-After) with capped exponential
// backoff — except 503 "draining", which no retry against the same daemon
// will fix. A submit carries a client-generated Idempotency-Key, so a retry
// whose first attempt actually landed is answered with the existing run id
// instead of a duplicate run; the key survives daemon restarts via the
// journal. --retries 0 disables all of this (fail fast, typed).
//
// Exit codes: 0 success, 1 daemon/run error, 2 usage error.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/json_scan.hpp"
#include "exp/request.hpp"
#include "exp/request_cli.hpp"
#include "net/http.hpp"

namespace {

using namespace aimes;

constexpr int kDefaultPort = 8477;

const char* kUsage =
    "usage: aimesc <verb> [options]\n"
    "\n"
    "verbs:\n"
    "  submit    submit a run request (takes aimes-run's flags; see --help)\n"
    "  list      list runs, newest first (--state S filters)\n"
    "  view      show one run's record and result   (aimesc view <id>)\n"
    "  log       print one run's progress log       (aimesc log <id> [--follow])\n"
    "  watch     stream a run's live progress       (aimesc watch <id>)\n"
    "  top       self-refreshing table of all runs  (aimesc top [--once])\n"
    "  cancel    request cancellation of a run      (aimesc cancel <id>)\n"
    "  resource  describe the simulated grid the daemon runs on\n"
    "  metrics   dump the daemon's Prometheus exposition\n"
    "  shutdown  ask the daemon to drain and exit\n"
    "\n"
    "every verb takes --port PORT (default 8477) or --socket PATH, and\n"
    "--retries N (default 5) for transport/429/503 retry behavior.\n";

/// Where the daemon lives plus how hard to try reaching it — shared flags
/// every verb declares.
struct Remote {
  int port = kDefaultPort;
  std::string socket;
  int retries = 5;

  [[nodiscard]] net::Endpoint endpoint() const {
    return socket.empty() ? net::Endpoint::tcp(static_cast<std::uint16_t>(port))
                          : net::Endpoint::unix_path(socket);
  }
};

void declare_remote_options(common::cli::Parser& cli, Remote& remote) {
  cli.int_option("--port", remote.port, 1, 65535, "aimesd port (8477)", "PORT");
  cli.string_option("--socket", remote.socket,
                    "connect to aimesd's unix-domain socket instead of TCP", "PATH");
  cli.int_option("--retries", remote.retries, 0, 100,
                 "retry transport errors and 429/503 refusals this\n"
                 "many times with capped backoff (5; 0 = fail fast)",
                 "N");
}

/// One HTTP exchange with the daemon, with the Remote's retry policy: capped
/// exponential backoff over transport errors and retryable 429/503 bodies,
/// honoring the server's Retry-After hint when present. Retries are safe for
/// every verb: GETs are idempotent, cancel/shutdown are no-op repeats, and
/// submit carries an Idempotency-Key the registry dedups on.
common::Expected<net::HttpResponse> call(const Remote& remote, const std::string& method,
                                         const std::string& target,
                                         const std::string& body = "",
                                         std::map<std::string, std::string> headers = {}) {
  net::HttpRequest request;
  request.method = method;
  request.target = target;
  request.body = body;
  request.headers = std::move(headers);
  net::Backoff backoff(100, 2000, 0x61696d6573ULL);
  for (int attempt = 0;; ++attempt) {
    auto response = net::http_call(remote.endpoint(), request);
    bool transient = !response;
    if (response && (response->status == 429 || response->status == 503)) {
      // "draining" means this daemon is going away — retrying against it
      // cannot succeed, so surface the typed refusal immediately.
      transient =
          response->body.find("\"reason\": \"draining\"") == std::string::npos;
    }
    if (!transient || attempt >= remote.retries) return response;
    int delay_ms = backoff.next_ms();
    if (response) {
      if (const std::string after = response->header("retry-after"); !after.empty()) {
        const long seconds = std::strtol(after.c_str(), nullptr, 10);
        if (seconds > 0) {
          delay_ms = std::min(static_cast<int>(seconds) * 1000, 30000);
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
}

/// A fresh dedup token for one submit: 128 random bits as hex. Entropy comes
/// from random_device XOR the clock, so two concurrent shells never collide.
std::string make_idempotency_key() {
  std::random_device rd;
  std::uint64_t state = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  state ^= static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  const std::uint64_t hi = common::splitmix64(state);
  const std::uint64_t lo = common::splitmix64(state);
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx", static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

/// Prints the daemon's typed error body ({"error": "...", "reason": ...}).
void print_error_body(const net::HttpResponse& response) {
  core::json::FieldScanner scanner("response", response.body);
  const auto err = scanner.text("error");
  const auto reason = scanner.text("reason");
  if (err && reason) {
    std::fprintf(stderr, "aimesc: %s [%s] (HTTP %d)\n", err->c_str(), reason->c_str(),
                 response.status);
  } else if (err) {
    std::fprintf(stderr, "aimesc: %s (HTTP %d)\n", err->c_str(), response.status);
  } else {
    std::fprintf(stderr, "aimesc: HTTP %d: %s\n", response.status, response.body.c_str());
  }
}

/// Splits a JSON array of objects into its "{...}" elements (enough for the
/// daemon's own output; strings with braces are handled, arrays of arrays —
/// which the daemon never emits — are not).
std::vector<std::string> split_objects(const std::string& json) {
  std::vector<std::string> out;
  int depth = 0;
  bool in_string = false;
  std::size_t start = 0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') {
      if (depth++ == 0) start = i;
    } else if (c == '}') {
      if (--depth == 0) out.push_back(json.substr(start, i - start + 1));
    }
  }
  return out;
}

/// One run's line in `aimesc list`: id, state, user, trials, name — widths
/// fixed so the columns stay aligned as runs progress.
void print_run_line(const std::string& record_json) {
  core::json::FieldScanner scanner("record", record_json);
  const auto id = scanner.number("id");
  const auto state = scanner.text("state");
  const auto user = scanner.text("user");
  const auto name = scanner.text("name");
  const auto done = scanner.number("trials_done");
  const auto total = scanner.number("trials_total");
  if (!id || !state) return;
  char trials[32];
  std::snprintf(trials, sizeof trials, "%.0f/%.0f", done ? *done : 0,
                total ? *total : 0);
  std::printf("  %4.0f  %-10s %-10s %9s  %s\n", *id, state->c_str(),
              user ? user->c_str() : "?", trials, name ? name->c_str() : "");
}

/// One run's line in `aimesc top`: adds virtual time and shed count from the
/// run's latest progress snapshot.
void print_top_line(const std::string& record_json) {
  core::json::FieldScanner scanner("record", record_json);
  const auto id = scanner.number("id");
  const auto state = scanner.text("state");
  const auto user = scanner.text("user");
  const auto name = scanner.text("name");
  const auto done = scanner.number("trials_done");
  const auto total = scanner.number("trials_total");
  const auto vt = scanner.number("vt_s");
  const auto sheds = scanner.number("sheds");
  if (!id || !state) return;
  char trials[32];
  std::snprintf(trials, sizeof trials, "%.0f/%.0f", done ? *done : 0,
                total ? *total : 0);
  std::printf("  %4.0f  %-10s %-10s %9s %10.1f %6.0f  %s\n", *id, state->c_str(),
              user ? user->c_str() : "?", trials, vt ? *vt : 0.0,
              sheds ? *sheds : 0.0, name ? name->c_str() : "");
}

/// Human one-liner for a RunProgress JSON document (an /events data payload
/// or one element of a record's "progress" array).
void print_progress_line(std::uint64_t run_id, const std::string& progress_json) {
  core::json::FieldScanner scanner("progress", progress_json);
  const auto done = scanner.number("trials_done");
  const auto total = scanner.number("trials_total");
  const auto units = scanner.number("units_done");
  const auto vt = scanner.number("vt_s");
  const auto sheds = scanner.number("tenants_shed");
  if (!done || !total) return;
  std::printf("run %llu: trial %.0f/%.0f | units %.0f | vt %.1f s | sheds %.0f\n",
              static_cast<unsigned long long>(run_id), *done, *total,
              units ? *units : 0, vt ? *vt : 0, sheds ? *sheds : 0);
  std::fflush(stdout);
}

/// Raw text of the record's "progress" array ("[...]"), or empty.
std::string progress_array(const std::string& record_json) {
  const std::size_t key = record_json.find("\"progress\": [");
  if (key == std::string::npos) return "";
  const std::size_t open = record_json.find('[', key);
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = open; i < record_json.size(); ++i) {
    const char c = record_json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '[') ++depth;
    else if (c == ']' && --depth == 0) return record_json.substr(open, i - open + 1);
  }
  return "";
}

/// Prints the completed run's summary from its record JSON; returns the
/// process exit code (0 only for a fully successful run).
int print_outcome(const std::string& record_json) {
  core::json::FieldScanner scanner("record", record_json);
  const auto state = scanner.text("state");
  if (!state) {
    std::fprintf(stderr, "aimesc: %s\n", state.error().c_str());
    return 1;
  }
  auto result = scanner.object("result");
  if (!result) {
    std::printf("run %s (no result recorded)\n", state->c_str());
    return *state == "done" ? 0 : 1;
  }
  const auto success = result->boolean("success");
  const auto checksum = result->text("checksum");
  const auto wall = result->number("wall_seconds");
  std::printf("run %s%s", state->c_str(),
              success && *success ? "" : " (with failures)");
  if (checksum) std::printf(" | checksum %s", checksum->c_str());
  if (wall) std::printf(" | wall %.1f s", *wall);
  std::printf("\n");
  if (const auto error = result->text("error"); error && !error->empty()) {
    std::fprintf(stderr, "aimesc: run error: %s\n", error->c_str());
  }
  return (*state == "done" && success && *success) ? 0 : 1;
}

/// Tails one run's log to stdout over the chunked /log?follow=1 stream,
/// reconnecting from the last byte offset after drops — idle timeouts,
/// injected resets, even a daemon restart (the journal rebuilds the same
/// byte stream, so the offset stays valid). Returns false only when the
/// daemon stayed unreachable through the whole backoff ladder.
bool follow_log(const Remote& remote, std::uint64_t run_id, std::size_t offset = 0) {
  net::Backoff backoff(100, 2000, 0x6c6f67ULL);
  const int max_consecutive = std::max(5, remote.retries * 3);
  int consecutive_failures = 0;
  for (;;) {
    net::HttpRequest request;
    request.method = "GET";
    request.target = "/api/v1/runs/" + std::to_string(run_id) +
                     "/log?follow=1&offset=" + std::to_string(offset);
    bool got_data = false;
    auto response = net::http_stream(
        remote.endpoint(), request, [&](std::string_view piece) {
          offset += piece.size();
          if (!piece.empty()) got_data = true;
          std::fwrite(piece.data(), 1, piece.size(), stdout);
          std::fflush(stdout);
          return true;
        });
    if (response) {
      if (response->status != 200) {
        print_error_body(*response);
        return false;
      }
      // A run already terminal at connect time comes back unstreamed with
      // the remaining bytes in the body.
      if (!response->body.empty()) {
        std::fwrite(response->body.data(), 1, response->body.size(), stdout);
        std::fflush(stdout);
        offset += response->body.size();
      }
      return true;  // the server ended the stream: the run is terminal
    }
    // Drop or timeout: resume from `offset` — the byte position makes the
    // retry loss- and duplicate-free. Progress resets the failure budget.
    if (got_data) {
      consecutive_failures = 1;
      backoff.reset();
    } else {
      ++consecutive_failures;
    }
    if (consecutive_failures > max_consecutive) {
      std::fprintf(stderr, "aimesc: %s\n", response.error().c_str());
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff.next_ms()));
  }
}

int cmd_submit(int argc, char** argv) {
  exp::RunRequest req;
  bool quick = false;
  bool wait = false;
  Remote remote;
  std::string idempotency_key;
  common::cli::Parser cli("aimesc submit");
  exp::declare_request_options(cli, req, quick);
  cli.string_option("--name", req.name, "label for the run in list/view output", "NAME");
  cli.string_option("--user", req.user, "owner recorded with the run", "NAME");
  cli.flag("--wait", wait, "tail the run's log live and print its result");
  cli.string_option("--idempotency-key", idempotency_key,
                    "dedup token sent as the Idempotency-Key header\n"
                    "(default: a fresh random key per invocation);\n"
                    "resubmitting the same key returns the existing\n"
                    "run instead of starting a duplicate",
                    "KEY");
  declare_remote_options(cli, remote);
  auto parsed = cli.parse(argc, argv);
  if (!parsed) {
    std::fprintf(stderr, "%s\n", parsed.error().c_str());
    return 2;
  }
  if (parsed->help) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  exp::finalize_request_options(cli, req, quick);
  if (auto st = exp::validate(req); !st.ok()) {
    // Reject locally with the same typed message the daemon would return.
    std::fprintf(stderr, "%s\n", st.error().c_str());
    return 2;
  }
  if (idempotency_key.empty()) idempotency_key = make_idempotency_key();

  auto response = call(remote, "POST", "/api/v1/runs", exp::run_request_to_json(req),
                       {{"Idempotency-Key", idempotency_key}});
  if (!response) {
    std::fprintf(stderr, "aimesc: %s\n", response.error().c_str());
    return 1;
  }
  if (response->status != 202) {
    print_error_body(*response);
    return 1;
  }
  core::json::FieldScanner scanner("response", response->body);
  const auto id = scanner.number("id");
  if (!id) {
    std::fprintf(stderr, "aimesc: %s\n", id.error().c_str());
    return 1;
  }
  const auto run_id = static_cast<std::uint64_t>(*id);
  const auto duplicate = scanner.boolean("duplicate");
  std::printf("submitted run %llu%s\n", static_cast<unsigned long long>(run_id),
              duplicate && *duplicate ? " (deduplicated retry)" : "");
  if (!wait) return 0;

  // Live tail instead of polling: the chunked stream delivers log lines as
  // the workers emit them and ends exactly when the run is terminal.
  if (!follow_log(remote, run_id)) return 1;
  auto view = call(remote, "GET", "/api/v1/runs/" + std::to_string(run_id));
  if (!view || view->status != 200) {
    if (!view) std::fprintf(stderr, "aimesc: %s\n", view.error().c_str());
    else print_error_body(*view);
    return 1;
  }
  return print_outcome(view->body);
}

/// `aimesc watch <id>`: renders the run's SSE event stream — one line per
/// state transition and per-trial progress snapshot — then the outcome.
/// Reconnects from the last complete event's sequence number after drops
/// and daemon restarts (seqs are rebuilt identically from the journal);
/// net::drain_sse_frames leaves a torn frame in the carry, so a stream cut
/// mid-`id:` line never advances the resume point past data we lost.
int cmd_watch(const Remote& remote, std::uint64_t run_id) {
  std::uint64_t next_seq = 0;
  net::Backoff backoff(100, 2000, 0x7761746368ULL);
  const int max_consecutive = std::max(5, remote.retries * 3);
  int consecutive_failures = 0;
  for (;;) {
    net::HttpRequest request;
    request.method = "GET";
    request.target = "/api/v1/runs/" + std::to_string(run_id) +
                     "/events?offset=" + std::to_string(next_seq);
    std::string carry;
    bool got_event = false;
    auto response = net::http_stream(
        remote.endpoint(), request, [&](std::string_view piece) {
          carry.append(piece);
          for (const net::SseEvent& event : net::drain_sse_frames(carry)) {
            if (!event.has_id) continue;
            next_seq = event.id + 1;
            got_event = true;
            if (event.kind == "progress") {
              print_progress_line(run_id, event.data);
            } else if (event.kind == "state") {
              core::json::FieldScanner scanner("event", event.data);
              const auto state = scanner.text("state");
              if (state) {
                std::printf("run %llu: %s\n",
                            static_cast<unsigned long long>(run_id), state->c_str());
                std::fflush(stdout);
              }
            }
          }
          return true;
        });
    if (response) {
      if (response->status != 200) {
        print_error_body(*response);
        return 1;
      }
      break;  // the server ended the stream: the run is terminal
    }
    // Drop or timeout: resume from the next sequence number.
    if (got_event) {
      consecutive_failures = 1;
      backoff.reset();
    } else {
      ++consecutive_failures;
    }
    if (consecutive_failures > max_consecutive) {
      std::fprintf(stderr, "aimesc: %s\n", response.error().c_str());
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff.next_ms()));
  }
  auto view = call(remote, "GET", "/api/v1/runs/" + std::to_string(run_id));
  if (!view || view->status != 200) {
    if (!view) std::fprintf(stderr, "aimesc: %s\n", view.error().c_str());
    else print_error_body(*view);
    return 1;
  }
  return print_outcome(view->body);
}

/// `aimesc top`: a self-refreshing table of every run the daemon knows.
int cmd_top(int argc, char** argv) {
  Remote remote;
  double interval_s = 2.0;
  bool once = false;
  common::cli::Parser cli("aimesc top");
  declare_remote_options(cli, remote);
  cli.double_option("--interval", interval_s, 0.1, 3600, "refresh interval (2 s)", "S");
  cli.flag("--once", once, "print one snapshot and exit (no screen clearing)");
  auto parsed = cli.parse(argc, argv);
  if (!parsed) {
    std::fprintf(stderr, "%s\n", parsed.error().c_str());
    return 2;
  }
  if (parsed->help) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  for (;;) {
    auto runs = call(remote, "GET", "/api/v1/runs");
    if (!runs || runs->status != 200) {
      if (!runs) std::fprintf(stderr, "aimesc: %s\n", runs.error().c_str());
      else print_error_body(*runs);
      return 1;
    }
    auto health = call(remote, "GET", "/api/v1/health");
    std::string status = "?";
    double queued = 0, running = 0;
    if (health && health->status == 200) {
      core::json::FieldScanner scanner("health", health->body);
      if (auto s = scanner.text("status")) status = *s;
      if (auto q = scanner.number("queued")) queued = *q;
      if (auto r = scanner.number("running")) running = *r;
    }
    if (!once) std::printf("\033[2J\033[H");  // clear screen, home cursor
    std::printf("aimesd %s | %s | %.0f queued, %.0f running\n\n",
                remote.endpoint().describe().c_str(), status.c_str(), queued, running);
    const std::size_t open = runs->body.find('[');
    const std::size_t close = runs->body.rfind(']');
    const auto records =
        open == std::string::npos || close == std::string::npos || close < open
            ? std::vector<std::string>{}
            : split_objects(runs->body.substr(open, close - open + 1));
    if (records.empty()) {
      std::printf("no runs\n");
    } else {
      std::printf("    id  state      user          trials       vt_s  sheds  name\n");
      for (const auto& record : records) print_top_line(record);
    }
    std::fflush(stdout);
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
  }
}

/// Parses `aimesc <verb> [<id>] [--port P]` for the id-addressed verbs and
/// the flagless ones. Returns the exit code.
int cmd_simple(const std::string& verb, int argc, char** argv) {
  Remote remote;
  std::string user;
  std::string state;
  int offset = 0;
  bool follow = false;
  std::uint64_t id = 0;
  bool id_seen = false;

  // Accept a bare numeric id directly after the verb: `aimesc view 3`. Only
  // that position — a later bare number is some flag's value, not an id.
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  int first_flag = 1;
  if (argc > 1 && argv[1][0] != '-') {
    char* end = nullptr;
    const unsigned long long parsed_id = std::strtoull(argv[1], &end, 10);
    if (end != nullptr && *end == '\0' && *argv[1] != '\0') {
      id = parsed_id;
      id_seen = true;
      first_flag = 2;
    }
  }
  for (int i = first_flag; i < argc; ++i) rest.push_back(argv[i]);

  common::cli::Parser cli("aimesc " + verb);
  declare_remote_options(cli, remote);
  if (verb == "list") {
    cli.string_option("--user", user, "only this user's runs", "NAME");
    cli.string_option("--state", state,
                      "only runs in this state\n"
                      "(queued|running|done|failed|cancelled)",
                      "S");
  }
  if (verb == "log") {
    cli.int_option("--offset", offset, 0, 1 << 30, "start at byte N of the log (0)", "N");
    cli.flag("--follow", follow, "stream new log lines until the run finishes");
  }
  auto parsed = cli.parse(static_cast<int>(rest.size()), rest.data());
  if (!parsed) {
    std::fprintf(stderr, "%s\n", parsed.error().c_str());
    return 2;
  }
  if (parsed->help) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }

  const bool needs_id =
      verb == "view" || verb == "log" || verb == "cancel" || verb == "watch";
  if (needs_id && !id_seen) {
    std::fprintf(stderr, "aimesc %s: run id required (aimesc %s <id>)\n", verb.c_str(),
                 verb.c_str());
    return 2;
  }

  if (verb == "watch") return cmd_watch(remote, id);
  if (verb == "log" && follow) {
    return follow_log(remote, id, static_cast<std::size_t>(offset)) ? 0 : 1;
  }

  std::string method = "GET";
  std::string target;
  if (verb == "list") {
    std::string query;
    if (!user.empty()) query += (query.empty() ? "?" : "&") + std::string("user=") + user;
    if (!state.empty()) query += (query.empty() ? "?" : "&") + std::string("state=") + state;
    target = "/api/v1/runs" + query;
  } else if (verb == "view") {
    target = "/api/v1/runs/" + std::to_string(id);
  } else if (verb == "log") {
    target = "/api/v1/runs/" + std::to_string(id) + "/log";
    if (offset > 0) target += "?offset=" + std::to_string(offset);
  } else if (verb == "cancel") {
    method = "POST";
    target = "/api/v1/runs/" + std::to_string(id) + "/cancel";
  } else if (verb == "resource") {
    target = "/api/v1/resource";
  } else if (verb == "metrics") {
    target = "/metrics";
  } else if (verb == "shutdown") {
    method = "POST";
    target = "/api/v1/shutdown";
  }

  auto response = call(remote, method, target);
  if (!response) {
    std::fprintf(stderr, "aimesc: %s\n", response.error().c_str());
    return 1;
  }
  if (response->status >= 400) {
    print_error_body(*response);
    return 1;
  }

  if (verb == "list") {
    // The body is {"runs": [ {...}, ... ]}; split inside the array so the
    // outer wrapper does not count as the one-and-only object.
    const std::size_t open = response->body.find('[');
    const std::size_t close = response->body.rfind(']');
    const auto records =
        open == std::string::npos || close == std::string::npos || close < open
            ? std::vector<std::string>{}
            : split_objects(response->body.substr(open, close - open + 1));
    if (records.empty()) {
      std::printf("no runs\n");
      return 0;
    }
    std::printf("    id  state      user          trials  name\n");
    for (const auto& record : records) print_run_line(record);
    return 0;
  }
  if (verb == "view") {
    std::fputs(response->body.c_str(), stdout);
    // Trailing human summary of the latest progress snapshot, so a glance
    // answers "how far along is it" without reading the JSON.
    const std::string array = progress_array(response->body);
    if (!array.empty()) {
      const auto snapshots = split_objects(array);
      if (!snapshots.empty()) print_progress_line(id, snapshots.back());
    }
    return 0;
  }
  if (verb == "cancel") {
    core::json::FieldScanner scanner("response", response->body);
    const auto state_text = scanner.text("state");
    std::printf("run %llu: %s\n", static_cast<unsigned long long>(id),
                state_text ? state_text->c_str() : "cancellation requested");
    return 0;
  }
  // view / log / resource / metrics / shutdown: the body is the answer.
  std::fputs(response->body.c_str(), stdout);
  if (!response->body.empty() && response->body.back() != '\n') std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0) {
    std::fputs(kUsage, argc < 2 ? stderr : stdout);
    return argc < 2 ? 2 : 0;
  }
  const std::string verb = argv[1];
  if (verb == "submit") return cmd_submit(argc - 1, argv + 1);
  if (verb == "top") return cmd_top(argc - 1, argv + 1);
  if (verb == "list" || verb == "view" || verb == "log" || verb == "cancel" ||
      verb == "watch" || verb == "resource" || verb == "metrics" || verb == "shutdown") {
    return cmd_simple(verb, argc - 1, argv + 1);
  }
  std::fprintf(stderr, "aimesc: unknown verb '%s'\n\n%s", verb.c_str(), kUsage);
  return 2;
}
