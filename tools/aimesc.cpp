// aimesc: command-line client for the aimesd control plane.
//
//   aimesc submit [run flags] [--name N] [--user U] [--wait]
//   aimesc list   [--user U] [--state S]
//   aimesc view    <id>
//   aimesc log     <id> [--offset N] [--follow]
//   aimesc watch   <id>
//   aimesc top    [--interval S] [--once]
//   aimesc cancel  <id>
//   aimesc resource
//   aimesc metrics
//   aimesc shutdown
//
// `submit` takes the exact run flags `aimes-run` takes (they fill the same
// typed exp::RunRequest, serialized as JSON over loopback HTTP), so any
// command line that works locally works remotely by s/aimes-run/aimesc
// submit/ — and produces the identical FNV-1a checksum. `--wait` tails the
// run's log live over a chunked stream (reconnecting from its byte offset
// after an idle timeout) and prints the result summary; its exit code then
// reflects the run (0 done, 1 failed/cancelled). `watch` renders the run's
// SSE event stream — every state transition and per-trial RunProgress
// snapshot — and `top` is a self-refreshing table of all runs.
//
// Exit codes: 0 success, 1 daemon/run error, 2 usage error.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "core/json_scan.hpp"
#include "exp/request.hpp"
#include "exp/request_cli.hpp"
#include "net/http.hpp"

namespace {

using namespace aimes;

constexpr int kDefaultPort = 8477;

const char* kUsage =
    "usage: aimesc <verb> [options]\n"
    "\n"
    "verbs:\n"
    "  submit    submit a run request (takes aimes-run's flags; see --help)\n"
    "  list      list runs, newest first (--state S filters)\n"
    "  view      show one run's record and result   (aimesc view <id>)\n"
    "  log       print one run's progress log       (aimesc log <id> [--follow])\n"
    "  watch     stream a run's live progress       (aimesc watch <id>)\n"
    "  top       self-refreshing table of all runs  (aimesc top [--once])\n"
    "  cancel    request cancellation of a run      (aimesc cancel <id>)\n"
    "  resource  describe the simulated grid the daemon runs on\n"
    "  metrics   dump the daemon's Prometheus exposition\n"
    "  shutdown  ask the daemon to drain and exit\n"
    "\n"
    "every verb takes --port PORT (default 8477).\n";

/// One HTTP exchange with the local daemon; exits talking to stderr on
/// transport errors so verbs can chain calls without plumbing Expected.
common::Expected<net::HttpResponse> call(int port, const std::string& method,
                                         const std::string& target,
                                         const std::string& body = "") {
  net::HttpRequest request;
  request.method = method;
  request.target = target;
  request.body = body;
  return net::http_call(static_cast<std::uint16_t>(port), request);
}

/// Prints the daemon's typed error body ({"error": "..."}) or the raw body.
void print_error_body(const net::HttpResponse& response) {
  core::json::FieldScanner scanner("response", response.body);
  if (auto err = scanner.text("error")) {
    std::fprintf(stderr, "aimesc: %s (HTTP %d)\n", err->c_str(), response.status);
  } else {
    std::fprintf(stderr, "aimesc: HTTP %d: %s\n", response.status, response.body.c_str());
  }
}

/// Splits a JSON array of objects into its "{...}" elements (enough for the
/// daemon's own output; strings with braces are handled, arrays of arrays —
/// which the daemon never emits — are not).
std::vector<std::string> split_objects(const std::string& json) {
  std::vector<std::string> out;
  int depth = 0;
  bool in_string = false;
  std::size_t start = 0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') {
      if (depth++ == 0) start = i;
    } else if (c == '}') {
      if (--depth == 0) out.push_back(json.substr(start, i - start + 1));
    }
  }
  return out;
}

/// One run's line in `aimesc list`: id, state, user, trials, name — widths
/// fixed so the columns stay aligned as runs progress.
void print_run_line(const std::string& record_json) {
  core::json::FieldScanner scanner("record", record_json);
  const auto id = scanner.number("id");
  const auto state = scanner.text("state");
  const auto user = scanner.text("user");
  const auto name = scanner.text("name");
  const auto done = scanner.number("trials_done");
  const auto total = scanner.number("trials_total");
  if (!id || !state) return;
  char trials[32];
  std::snprintf(trials, sizeof trials, "%.0f/%.0f", done ? *done : 0,
                total ? *total : 0);
  std::printf("  %4.0f  %-10s %-10s %9s  %s\n", *id, state->c_str(),
              user ? user->c_str() : "?", trials, name ? name->c_str() : "");
}

/// One run's line in `aimesc top`: adds virtual time and shed count from the
/// run's latest progress snapshot.
void print_top_line(const std::string& record_json) {
  core::json::FieldScanner scanner("record", record_json);
  const auto id = scanner.number("id");
  const auto state = scanner.text("state");
  const auto user = scanner.text("user");
  const auto name = scanner.text("name");
  const auto done = scanner.number("trials_done");
  const auto total = scanner.number("trials_total");
  const auto vt = scanner.number("vt_s");
  const auto sheds = scanner.number("sheds");
  if (!id || !state) return;
  char trials[32];
  std::snprintf(trials, sizeof trials, "%.0f/%.0f", done ? *done : 0,
                total ? *total : 0);
  std::printf("  %4.0f  %-10s %-10s %9s %10.1f %6.0f  %s\n", *id, state->c_str(),
              user ? user->c_str() : "?", trials, vt ? *vt : 0.0,
              sheds ? *sheds : 0.0, name ? name->c_str() : "");
}

/// Human one-liner for a RunProgress JSON document (an /events data payload
/// or one element of a record's "progress" array).
void print_progress_line(std::uint64_t run_id, const std::string& progress_json) {
  core::json::FieldScanner scanner("progress", progress_json);
  const auto done = scanner.number("trials_done");
  const auto total = scanner.number("trials_total");
  const auto units = scanner.number("units_done");
  const auto vt = scanner.number("vt_s");
  const auto sheds = scanner.number("tenants_shed");
  if (!done || !total) return;
  std::printf("run %llu: trial %.0f/%.0f | units %.0f | vt %.1f s | sheds %.0f\n",
              static_cast<unsigned long long>(run_id), *done, *total,
              units ? *units : 0, vt ? *vt : 0, sheds ? *sheds : 0);
  std::fflush(stdout);
}

/// Raw text of the record's "progress" array ("[...]"), or empty.
std::string progress_array(const std::string& record_json) {
  const std::size_t key = record_json.find("\"progress\": [");
  if (key == std::string::npos) return "";
  const std::size_t open = record_json.find('[', key);
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = open; i < record_json.size(); ++i) {
    const char c = record_json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '[') ++depth;
    else if (c == ']' && --depth == 0) return record_json.substr(open, i - open + 1);
  }
  return "";
}

/// Prints the completed run's summary from its record JSON; returns the
/// process exit code (0 only for a fully successful run).
int print_outcome(const std::string& record_json) {
  core::json::FieldScanner scanner("record", record_json);
  const auto state = scanner.text("state");
  if (!state) {
    std::fprintf(stderr, "aimesc: %s\n", state.error().c_str());
    return 1;
  }
  auto result = scanner.object("result");
  if (!result) {
    std::printf("run %s (no result recorded)\n", state->c_str());
    return *state == "done" ? 0 : 1;
  }
  const auto success = result->boolean("success");
  const auto checksum = result->text("checksum");
  const auto wall = result->number("wall_seconds");
  std::printf("run %s%s", state->c_str(),
              success && *success ? "" : " (with failures)");
  if (checksum) std::printf(" | checksum %s", checksum->c_str());
  if (wall) std::printf(" | wall %.1f s", *wall);
  std::printf("\n");
  if (const auto error = result->text("error"); error && !error->empty()) {
    std::fprintf(stderr, "aimesc: run error: %s\n", error->c_str());
  }
  return (*state == "done" && success && *success) ? 0 : 1;
}

/// Tails one run's log to stdout over the chunked /log?follow=1 stream,
/// reconnecting from the last byte offset after idle timeouts, until the run
/// reaches a terminal state (the server ends the stream). Returns false only
/// when the daemon became unreachable.
bool follow_log(int port, std::uint64_t run_id, std::size_t offset = 0) {
  int consecutive_failures = 0;
  for (;;) {
    net::HttpRequest request;
    request.method = "GET";
    request.target = "/api/v1/runs/" + std::to_string(run_id) +
                     "/log?follow=1&offset=" + std::to_string(offset);
    bool got_data = false;
    auto response = net::http_stream(
        static_cast<std::uint16_t>(port), request, [&](std::string_view piece) {
          offset += piece.size();
          if (!piece.empty()) got_data = true;
          std::fwrite(piece.data(), 1, piece.size(), stdout);
          std::fflush(stdout);
          return true;
        });
    if (response) {
      if (response->status != 200) {
        print_error_body(*response);
        return false;
      }
      // A run already terminal at connect time comes back unstreamed with
      // the remaining bytes in the body.
      if (!response->body.empty()) {
        std::fwrite(response->body.data(), 1, response->body.size(), stdout);
        std::fflush(stdout);
      }
      return true;  // the server ended the stream: the run is terminal
    }
    // Idle timeout or transient transport error: resume from `offset` — the
    // byte position makes the retry loss- and duplicate-free.
    consecutive_failures = got_data ? 1 : consecutive_failures + 1;
    if (consecutive_failures > 5) {
      std::fprintf(stderr, "aimesc: %s\n", response.error().c_str());
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

int cmd_submit(int argc, char** argv) {
  exp::RunRequest req;
  bool quick = false;
  bool wait = false;
  int port = kDefaultPort;
  common::cli::Parser cli("aimesc submit");
  exp::declare_request_options(cli, req, quick);
  cli.string_option("--name", req.name, "label for the run in list/view output", "NAME");
  cli.string_option("--user", req.user, "owner recorded with the run", "NAME");
  cli.flag("--wait", wait, "tail the run's log live and print its result");
  cli.int_option("--port", port, 1, 65535, "aimesd port (8477)", "PORT");
  auto parsed = cli.parse(argc, argv);
  if (!parsed) {
    std::fprintf(stderr, "%s\n", parsed.error().c_str());
    return 2;
  }
  if (parsed->help) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  exp::finalize_request_options(cli, req, quick);
  if (auto st = exp::validate(req); !st.ok()) {
    // Reject locally with the same typed message the daemon would return.
    std::fprintf(stderr, "%s\n", st.error().c_str());
    return 2;
  }

  auto response = call(port, "POST", "/api/v1/runs", exp::run_request_to_json(req));
  if (!response) {
    std::fprintf(stderr, "aimesc: %s\n", response.error().c_str());
    return 1;
  }
  if (response->status != 202) {
    print_error_body(*response);
    return 1;
  }
  core::json::FieldScanner scanner("response", response->body);
  const auto id = scanner.number("id");
  if (!id) {
    std::fprintf(stderr, "aimesc: %s\n", id.error().c_str());
    return 1;
  }
  const auto run_id = static_cast<std::uint64_t>(*id);
  std::printf("submitted run %llu\n", static_cast<unsigned long long>(run_id));
  if (!wait) return 0;

  // Live tail instead of polling: the chunked stream delivers log lines as
  // the workers emit them and ends exactly when the run is terminal.
  if (!follow_log(port, run_id)) return 1;
  auto view = call(port, "GET", "/api/v1/runs/" + std::to_string(run_id));
  if (!view || view->status != 200) {
    if (!view) std::fprintf(stderr, "aimesc: %s\n", view.error().c_str());
    else print_error_body(*view);
    return 1;
  }
  return print_outcome(view->body);
}

/// One SSE event block (the lines between blank-line separators).
struct SseEvent {
  std::uint64_t id = 0;
  bool has_id = false;
  std::string kind;
  std::string data;
};

SseEvent parse_sse_event(const std::string& text) {
  SseEvent event;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == ':') continue;  // comment = keepalive
    if (line.rfind("id: ", 0) == 0) {
      event.id = std::strtoull(line.c_str() + 4, nullptr, 10);
      event.has_id = true;
    } else if (line.rfind("event: ", 0) == 0) {
      event.kind = line.substr(7);
    } else if (line.rfind("data: ", 0) == 0) {
      event.data = line.substr(6);
    }
  }
  return event;
}

/// `aimesc watch <id>`: renders the run's SSE event stream — one line per
/// state transition and per-trial progress snapshot — then the outcome.
int cmd_watch(std::uint64_t run_id, int port) {
  std::uint64_t next_seq = 0;
  int consecutive_failures = 0;
  for (;;) {
    net::HttpRequest request;
    request.method = "GET";
    request.target = "/api/v1/runs/" + std::to_string(run_id) +
                     "/events?offset=" + std::to_string(next_seq);
    std::string carry;
    bool got_event = false;
    auto response = net::http_stream(
        static_cast<std::uint16_t>(port), request, [&](std::string_view piece) {
          carry.append(piece);
          std::size_t sep;
          while ((sep = carry.find("\n\n")) != std::string::npos) {
            const SseEvent event = parse_sse_event(carry.substr(0, sep));
            carry.erase(0, sep + 2);
            if (!event.has_id) continue;  // keepalive comment block
            next_seq = event.id + 1;
            got_event = true;
            if (event.kind == "progress") {
              print_progress_line(run_id, event.data);
            } else if (event.kind == "state") {
              core::json::FieldScanner scanner("event", event.data);
              const auto state = scanner.text("state");
              if (state) {
                std::printf("run %llu: %s\n",
                            static_cast<unsigned long long>(run_id), state->c_str());
                std::fflush(stdout);
              }
            }
          }
          return true;
        });
    if (response) {
      if (response->status != 200) {
        print_error_body(*response);
        return 1;
      }
      break;  // the server ended the stream: the run is terminal
    }
    // Idle timeout: resume from the next sequence number.
    consecutive_failures = got_event ? 1 : consecutive_failures + 1;
    if (consecutive_failures > 5) {
      std::fprintf(stderr, "aimesc: %s\n", response.error().c_str());
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  auto view = call(port, "GET", "/api/v1/runs/" + std::to_string(run_id));
  if (!view || view->status != 200) {
    if (!view) std::fprintf(stderr, "aimesc: %s\n", view.error().c_str());
    else print_error_body(*view);
    return 1;
  }
  return print_outcome(view->body);
}

/// `aimesc top`: a self-refreshing table of every run the daemon knows.
int cmd_top(int argc, char** argv) {
  int port = kDefaultPort;
  double interval_s = 2.0;
  bool once = false;
  common::cli::Parser cli("aimesc top");
  cli.int_option("--port", port, 1, 65535, "aimesd port (8477)", "PORT");
  cli.double_option("--interval", interval_s, 0.1, 3600, "refresh interval (2 s)", "S");
  cli.flag("--once", once, "print one snapshot and exit (no screen clearing)");
  auto parsed = cli.parse(argc, argv);
  if (!parsed) {
    std::fprintf(stderr, "%s\n", parsed.error().c_str());
    return 2;
  }
  if (parsed->help) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  for (;;) {
    auto runs = call(port, "GET", "/api/v1/runs");
    if (!runs || runs->status != 200) {
      if (!runs) std::fprintf(stderr, "aimesc: %s\n", runs.error().c_str());
      else print_error_body(*runs);
      return 1;
    }
    auto health = call(port, "GET", "/api/v1/health");
    std::string status = "?";
    double queued = 0, running = 0;
    if (health && health->status == 200) {
      core::json::FieldScanner scanner("health", health->body);
      if (auto s = scanner.text("status")) status = *s;
      if (auto q = scanner.number("queued")) queued = *q;
      if (auto r = scanner.number("running")) running = *r;
    }
    if (!once) std::printf("\033[2J\033[H");  // clear screen, home cursor
    std::printf("aimesd 127.0.0.1:%d | %s | %.0f queued, %.0f running\n\n", port,
                status.c_str(), queued, running);
    const std::size_t open = runs->body.find('[');
    const std::size_t close = runs->body.rfind(']');
    const auto records =
        open == std::string::npos || close == std::string::npos || close < open
            ? std::vector<std::string>{}
            : split_objects(runs->body.substr(open, close - open + 1));
    if (records.empty()) {
      std::printf("no runs\n");
    } else {
      std::printf("    id  state      user          trials       vt_s  sheds  name\n");
      for (const auto& record : records) print_top_line(record);
    }
    std::fflush(stdout);
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
  }
}

/// Parses `aimesc <verb> [<id>] [--port P]` for the id-addressed verbs and
/// the flagless ones. Returns the exit code.
int cmd_simple(const std::string& verb, int argc, char** argv) {
  int port = kDefaultPort;
  std::string user;
  std::string state;
  int offset = 0;
  bool follow = false;
  std::uint64_t id = 0;
  bool id_seen = false;

  // Accept a bare numeric id directly after the verb: `aimesc view 3`. Only
  // that position — a later bare number is some flag's value, not an id.
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  int first_flag = 1;
  if (argc > 1 && argv[1][0] != '-') {
    char* end = nullptr;
    const unsigned long long parsed_id = std::strtoull(argv[1], &end, 10);
    if (end != nullptr && *end == '\0' && *argv[1] != '\0') {
      id = parsed_id;
      id_seen = true;
      first_flag = 2;
    }
  }
  for (int i = first_flag; i < argc; ++i) rest.push_back(argv[i]);

  common::cli::Parser cli("aimesc " + verb);
  cli.int_option("--port", port, 1, 65535, "aimesd port (8477)", "PORT");
  if (verb == "list") {
    cli.string_option("--user", user, "only this user's runs", "NAME");
    cli.string_option("--state", state,
                      "only runs in this state\n"
                      "(queued|running|done|failed|cancelled)",
                      "S");
  }
  if (verb == "log") {
    cli.int_option("--offset", offset, 0, 1 << 30, "start at byte N of the log (0)", "N");
    cli.flag("--follow", follow, "stream new log lines until the run finishes");
  }
  auto parsed = cli.parse(static_cast<int>(rest.size()), rest.data());
  if (!parsed) {
    std::fprintf(stderr, "%s\n", parsed.error().c_str());
    return 2;
  }
  if (parsed->help) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }

  const bool needs_id =
      verb == "view" || verb == "log" || verb == "cancel" || verb == "watch";
  if (needs_id && !id_seen) {
    std::fprintf(stderr, "aimesc %s: run id required (aimesc %s <id>)\n", verb.c_str(),
                 verb.c_str());
    return 2;
  }

  if (verb == "watch") return cmd_watch(id, port);
  if (verb == "log" && follow) {
    return follow_log(port, id, static_cast<std::size_t>(offset)) ? 0 : 1;
  }

  std::string method = "GET";
  std::string target;
  if (verb == "list") {
    std::string query;
    if (!user.empty()) query += (query.empty() ? "?" : "&") + std::string("user=") + user;
    if (!state.empty()) query += (query.empty() ? "?" : "&") + std::string("state=") + state;
    target = "/api/v1/runs" + query;
  } else if (verb == "view") {
    target = "/api/v1/runs/" + std::to_string(id);
  } else if (verb == "log") {
    target = "/api/v1/runs/" + std::to_string(id) + "/log";
    if (offset > 0) target += "?offset=" + std::to_string(offset);
  } else if (verb == "cancel") {
    method = "POST";
    target = "/api/v1/runs/" + std::to_string(id) + "/cancel";
  } else if (verb == "resource") {
    target = "/api/v1/resource";
  } else if (verb == "metrics") {
    target = "/metrics";
  } else if (verb == "shutdown") {
    method = "POST";
    target = "/api/v1/shutdown";
  }

  auto response = call(port, method, target);
  if (!response) {
    std::fprintf(stderr, "aimesc: %s\n", response.error().c_str());
    return 1;
  }
  if (response->status >= 400) {
    print_error_body(*response);
    return 1;
  }

  if (verb == "list") {
    // The body is {"runs": [ {...}, ... ]}; split inside the array so the
    // outer wrapper does not count as the one-and-only object.
    const std::size_t open = response->body.find('[');
    const std::size_t close = response->body.rfind(']');
    const auto records =
        open == std::string::npos || close == std::string::npos || close < open
            ? std::vector<std::string>{}
            : split_objects(response->body.substr(open, close - open + 1));
    if (records.empty()) {
      std::printf("no runs\n");
      return 0;
    }
    std::printf("    id  state      user          trials  name\n");
    for (const auto& record : records) print_run_line(record);
    return 0;
  }
  if (verb == "view") {
    std::fputs(response->body.c_str(), stdout);
    // Trailing human summary of the latest progress snapshot, so a glance
    // answers "how far along is it" without reading the JSON.
    const std::string array = progress_array(response->body);
    if (!array.empty()) {
      const auto snapshots = split_objects(array);
      if (!snapshots.empty()) print_progress_line(id, snapshots.back());
    }
    return 0;
  }
  if (verb == "cancel") {
    core::json::FieldScanner scanner("response", response->body);
    const auto state = scanner.text("state");
    std::printf("run %llu: %s\n", static_cast<unsigned long long>(id),
                state ? state->c_str() : "cancellation requested");
    return 0;
  }
  // view / log / resource / metrics / shutdown: the body is the answer.
  std::fputs(response->body.c_str(), stdout);
  if (!response->body.empty() && response->body.back() != '\n') std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0) {
    std::fputs(kUsage, argc < 2 ? stderr : stdout);
    return argc < 2 ? 2 : 0;
  }
  const std::string verb = argv[1];
  if (verb == "submit") return cmd_submit(argc - 1, argv + 1);
  if (verb == "top") return cmd_top(argc - 1, argv + 1);
  if (verb == "list" || verb == "view" || verb == "log" || verb == "cancel" ||
      verb == "watch" || verb == "resource" || verb == "metrics" || verb == "shutdown") {
    return cmd_simple(verb, argc - 1, argv + 1);
  }
  std::fprintf(stderr, "aimesc: unknown verb '%s'\n\n%s", verb.c_str(), kUsage);
  return 2;
}
