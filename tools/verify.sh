#!/bin/sh
# Full verification sweep: the tier-1 suite plus both sanitizer builds.
#
#   tools/verify.sh [build-dir-prefix]
#
# Runs, in order:
#   1. Release build + the whole ctest suite (tier-1, what CI gates on);
#   2. Observability smoke: aimes-run --quick with --trace-out/--metrics-out,
#      then validates the Chrome trace parses as JSON and the Prometheus
#      file is non-empty — the exporters are only exercised end to end here;
#   3. Campaign-scale smoke: bench/campaign_scale --quick, whose exit code
#      enforces the admission shape checks (goodput ratio, wait bound, typed
#      sheds, jobs-sweep determinism), plus greps pinning the JSON evidence
#      fields (shed_rate, checksums, admission waits);
#   4. Sharded-substrate smoke: bench/substrate_sharded --quick, whose exit
#      code enforces bit-identical digests across --shards 1/2/4/8, plus
#      greps pinning the committed evidence (speedup field present, recorded
#      from a Release build);
#   5. Control-plane smoke: start aimesd on an ephemeral port, submit the
#      --quick campaign through aimesc --wait (which live-streams the run
#      log), require the daemon's determinism checksum to equal the same
#      request run via aimes-run, grep the Prometheus exposition (including
#      the latency histograms), and shut down gracefully;
#   6. Live-telemetry smoke: aimesd with a --journal file, a streamed
#      submit --wait that must carry >= 2 trial-boundary lines, an
#      `aimesc watch` replay of the finished run's event stream, then a
#      SIGKILL mid-run followed by a restart on the same journal — the
#      finished run must replay complete and the orphan must come back
#      failed with the typed daemon-restart reason;
#   7. Sanitize (ASan/UBSan) build + the chaos and sanitize labels — the
#      fault-injection paths are where lifetime bugs hide;
#   8. Thread (TSan) build + the sanitize label — races in the parallel
#      trial runner (sim::ReplicaPool) and the sharded window coordinator
#      (sim::ShardedEngine's barrier/mailbox/park handoffs).
#
# Exits non-zero on the first failing step. Build trees default to
# build-verify-{release,asan,tsan} so an existing ./build is untouched.
set -eu

prefix="${1:-build-verify}"
src_dir="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
# nproc undercounts in cgroup-limited containers; VERIFY_JOBS overrides.
jobs="${VERIFY_JOBS:-$(nproc 2>/dev/null || echo 4)}"

step() {
  printf '\n== %s\n' "$*"
}

step "Release build + full suite"
cmake -S "$src_dir" -B "$prefix-release" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$prefix-release" -j "$jobs"
ctest --test-dir "$prefix-release" -j "$jobs" --output-on-failure

step "Observability smoke (--trace-out / --metrics-out artifacts)"
obs_trace="$prefix-release/smoke-trace.json"
obs_metrics="$prefix-release/smoke-metrics.txt"
"$prefix-release/tools/aimes-run" --quick \
  --trace-out "$obs_trace" --metrics-out "$obs_metrics"
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json, sys; json.load(open(sys.argv[1]))" "$obs_trace"
else
  # No python3: at least require a non-empty file with the trace envelope.
  grep -q '"traceEvents"' "$obs_trace"
fi
test -s "$obs_metrics"
grep -q '^# TYPE ' "$obs_metrics"
test -s "$obs_metrics.csv"
echo "observability artifacts OK ($obs_trace, $obs_metrics)"

step "Campaign-scale smoke (admission shape checks + JSON evidence fields)"
camp_json="$prefix-release/smoke-campaign.json"
# The bench exits non-zero when the goodput ratio, the wait bound, the
# typed-shed invariant, or the jobs-sweep checksum comparison fails, so the
# run itself is the shape check; the greps pin the JSON evidence fields the
# PR points at (BENCH_campaign.json) to the schema this script expects.
"$prefix-release/bench/campaign_scale" --quick --json "$camp_json"
grep -q '"shed_rate"' "$camp_json"
grep -q '"checksum"' "$camp_json"
grep -q '"admission_wait_max_s"' "$camp_json"
grep -q '"deterministic_across_jobs": true' "$camp_json"
# The committed evidence must carry the same fields the smoke just produced.
grep -q '"shed_rate"' "$src_dir/BENCH_campaign.json"
grep -q '"checksum"' "$src_dir/BENCH_campaign.json"
echo "campaign-scale smoke OK ($camp_json)"

step "Sharded-substrate smoke (cross-shard determinism + speedup evidence)"
sharded_json="$prefix-release/smoke-sharded.json"
# The bench exits non-zero when digests or span checksums diverge across
# --shards 1/2/4/8 (or when a >= 8-thread host misses the speedup target),
# so the run itself is the determinism check; the greps pin the JSON schema.
"$prefix-release/bench/substrate_sharded" --quick --json "$sharded_json"
grep -q '"deterministic_across_shards": true' "$sharded_json"
grep -q '"speedup_shards8"' "$sharded_json"
# The committed evidence must show the same determinism, carry the speedup
# field, and have been recorded from a Release build — debug numbers are
# refused at the source (bench_util's require_release_artifacts and the
# bench-*-json guard), and this grep catches a stale pre-guard file.
grep -q '"deterministic_across_shards": true' "$src_dir/BENCH_substrate.json"
grep -q '"speedup_shards8"' "$src_dir/BENCH_substrate.json"
grep -q '"aimes_build_type": "release"' "$src_dir/BENCH_substrate.json"
echo "sharded-substrate smoke OK ($sharded_json)"

step "Control-plane smoke (aimesd/aimesc round trip + CLI checksum parity)"
port_file="$prefix-release/aimesd.port"
rm -f "$port_file"
"$prefix-release/tools/aimesd" --port 0 --port-file "$port_file" &
aimesd_pid=$!
trap 'kill "$aimesd_pid" 2>/dev/null || true' EXIT
i=0
while [ ! -s "$port_file" ] && [ "$i" -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
test -s "$port_file"
port="$(cat "$port_file")"
# Reference: the identical request on the CLI. The daemon must reproduce
# this determinism checksum bit for bit (DESIGN.md section 14).
ref_sum="$("$prefix-release/tools/aimes-run" --quick --campaign 3 --trials 2 \
  | sed -n 's/.*checksum \([0-9a-f]\{16\}\).*/\1/p')"
test -n "$ref_sum"
submit_out="$("$prefix-release/tools/aimesc" submit --quick --campaign 3 --trials 2 \
  --name verify-smoke --wait --port "$port")"
echo "$submit_out" | grep -q "checksum $ref_sum"
metrics_out="$("$prefix-release/tools/aimesc" metrics --port "$port")"
echo "$metrics_out" | grep -q '^# TYPE aimes_ctl_'
echo "$metrics_out" | grep -q '^# TYPE aimes_ctl_run_duration_seconds histogram'
echo "$metrics_out" | grep -q '_bucket{le="+Inf"}'
"$prefix-release/tools/aimesc" shutdown --port "$port"
# Graceful shutdown: aimesd drains and exits 0 on its own.
wait "$aimesd_pid"
trap - EXIT
echo "control-plane smoke OK (checksum $ref_sum via aimesd == aimes-run)"

step "Live telemetry smoke (streamed --wait, watch replay, journal recovery)"
journal="$prefix-release/aimesd-journal.jsonl"
rm -f "$journal" "$port_file"
"$prefix-release/tools/aimesd" --port 0 --port-file "$port_file" --journal "$journal" &
aimesd_pid=$!
trap 'kill -9 "$aimesd_pid" 2>/dev/null || true' EXIT
i=0
while [ ! -s "$port_file" ] && [ "$i" -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
test -s "$port_file"
port="$(cat "$port_file")"
# Streamed wait: the log tail rides a chunked response, so the client must
# see the per-trial progress lines (>= 2 of them), not just the verdict.
wait_out="$("$prefix-release/tools/aimesc" submit --quick --trials 3 \
  --name telemetry-smoke --wait --port "$port")"
test "$(echo "$wait_out" | grep -c '^trial ')" -ge 2
echo "$wait_out" | grep -q 'run done'
smoke_id="$(echo "$wait_out" | sed -n 's/^submitted run \([0-9]*\).*/\1/p')"
test -n "$smoke_id"
# Watch replays the finished run's whole SSE event stream: lifecycle states
# plus the per-trial progress snapshots.
watch_out="$("$prefix-release/tools/aimesc" watch "$smoke_id" --port "$port")"
echo "$watch_out" | grep -q "run $smoke_id: trial"
echo "$watch_out" | grep -q 'run done'
# Journal recovery: park a long campaign mid-flight, SIGKILL the daemon (no
# drain, no journal finish record), restart on the same journal.
long_out="$("$prefix-release/tools/aimesc" submit --campaign 3 --trials 5000 \
  --name killed-mid-run --port "$port")"
long_id="$(echo "$long_out" | sed -n 's/^submitted run \([0-9]*\).*/\1/p')"
test -n "$long_id"
i=0
until "$prefix-release/tools/aimesc" view "$long_id" --port "$port" \
    | grep -q '"state": "running"'; do
  sleep 0.1
  i=$((i + 1))
  test "$i" -lt 100
done
kill -9 "$aimesd_pid"
wait "$aimesd_pid" 2>/dev/null || true
rm -f "$port_file"
"$prefix-release/tools/aimesd" --port 0 --port-file "$port_file" --journal "$journal" &
aimesd_pid=$!
i=0
while [ ! -s "$port_file" ] && [ "$i" -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
test -s "$port_file"
port="$(cat "$port_file")"
# The finished run replays complete (terminal state + checksummed result);
# the orphan comes back failed with the typed restart reason.
"$prefix-release/tools/aimesc" view "$smoke_id" --port "$port" | grep -q '"state": "done"'
recovered="$("$prefix-release/tools/aimesc" view "$long_id" --port "$port")"
echo "$recovered" | grep -q '"state": "failed"'
echo "$recovered" | grep -q '"fail_reason": "daemon-restart"'
"$prefix-release/tools/aimesc" list --state failed --port "$port" | grep -q killed-mid-run
"$prefix-release/tools/aimesc" shutdown --port "$port"
wait "$aimesd_pid"
trap - EXIT
echo "live-telemetry smoke OK (streamed wait, watch replay, journal recovery)"

step "Control-plane chaos smoke (--net-faults, quotas, exactly-once, unix socket)"
chaos_journal="$prefix-release/aimesd-chaos-journal.jsonl"
rm -f "$chaos_journal" "$port_file"
# A daemon whose own wire misbehaves: ~10% mid-stream resets plus heavy
# 1-byte framing tears on every read and write, and a real (generous) rate
# limit in front of POST /runs. aimesc must ride it out with retries and an
# idempotency key.
"$prefix-release/tools/aimesd" --port 0 --port-file "$port_file" \
  --journal "$chaos_journal" \
  --net-faults 'seed=11,reset=0.1,short-read=0.25,short-write=0.25' \
  --rate 50:50 &
aimesd_pid=$!
trap 'kill -9 "$aimesd_pid" 2>/dev/null || true' EXIT
i=0
while [ ! -s "$port_file" ] && [ "$i" -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
test -s "$port_file"
port="$(cat "$port_file")"
# Through the burning wire: the retrying submit --wait still lands and
# streams to the verdict. --retries 20 gives the client plenty of runway.
chaos_out="$("$prefix-release/tools/aimesc" submit --quick --trials 3 \
  --name chaos-smoke --wait --retries 20 --port "$port")"
echo "$chaos_out" | grep -q 'run done'
chaos_id="$(echo "$chaos_out" | sed -n 's/^submitted run \([0-9]*\).*/\1/p')"
test -n "$chaos_id"
# Exactly once: for all the torn submit round trips, one run carries the
# name, and the journal holds exactly one submit record.
runs_list="$("$prefix-release/tools/aimesc" list --retries 20 --port "$port")"
test "$(echo "$runs_list" | grep -c 'chaos-smoke')" -eq 1
test "$(grep -c '"event": "submit"' "$chaos_journal")" -eq 1
# No duplicate ids anywhere in the run table.
test -z "$(echo "$runs_list" | awk '$1 ~ /^[0-9]+$/ {print $1}' | sort | uniq -d)"
# SIGKILL the faulted daemon, restart on the same journal (faults off), and
# resume: the finished run replays complete and watch replays its stream.
kill -9 "$aimesd_pid"
wait "$aimesd_pid" 2>/dev/null || true
rm -f "$port_file"
"$prefix-release/tools/aimesd" --port 0 --port-file "$port_file" \
  --journal "$chaos_journal" &
aimesd_pid=$!
i=0
while [ ! -s "$port_file" ] && [ "$i" -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
test -s "$port_file"
port="$(cat "$port_file")"
"$prefix-release/tools/aimesc" view "$chaos_id" --port "$port" | grep -q '"state": "done"'
watch_resumed="$("$prefix-release/tools/aimesc" watch "$chaos_id" --port "$port")"
echo "$watch_resumed" | grep -q 'run done'
"$prefix-release/tools/aimesc" shutdown --port "$port"
wait "$aimesd_pid"
trap - EXIT
# Unix-domain transport: the same API over --socket, no TCP at all.
chaos_sock="$prefix-release/aimesd-chaos.sock"
rm -f "$chaos_sock"
"$prefix-release/tools/aimesd" --socket "$chaos_sock" --rate 0.001:1 &
aimesd_pid=$!
trap 'kill -9 "$aimesd_pid" 2>/dev/null || true' EXIT
i=0
while [ ! -S "$chaos_sock" ] && [ "$i" -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
test -S "$chaos_sock"
"$prefix-release/tools/aimesc" submit --quick --trials 1 --name unix-smoke \
  --wait --socket "$chaos_sock" | grep -q 'run done'
# The burst token is spent: the next submit is refused 429 rate-limited,
# and with --retries 0 the client reports it typed and exits non-zero.
if rate_err="$("$prefix-release/tools/aimesc" submit --quick --trials 1 \
    --name unix-refused --retries 0 --socket "$chaos_sock" 2>&1)"; then
  echo "expected the rate-limited submit to fail" >&2
  exit 1
fi
echo "$rate_err" | grep -q 'rate-limited'
"$prefix-release/tools/aimesc" list --socket "$chaos_sock" | grep -q 'unix-smoke'
"$prefix-release/tools/aimesc" shutdown --socket "$chaos_sock"
wait "$aimesd_pid"
trap - EXIT
test ! -S "$chaos_sock"
echo "control-plane chaos smoke OK (exactly-once under faults, typed quota refusal, unix socket)"

step "Sanitize (ASan/UBSan) build + chaos/sanitize labels"
cmake -S "$src_dir" -B "$prefix-asan" -DCMAKE_BUILD_TYPE=Sanitize >/dev/null
cmake --build "$prefix-asan" -j "$jobs"
ctest --test-dir "$prefix-asan" -j "$jobs" -L chaos --output-on-failure
ctest --test-dir "$prefix-asan" -j "$jobs" -L sanitize --output-on-failure

step "Thread (TSan) build + sanitize label"
cmake -S "$src_dir" -B "$prefix-tsan" -DCMAKE_BUILD_TYPE=Thread >/dev/null
cmake --build "$prefix-tsan" -j "$jobs"
ctest --test-dir "$prefix-tsan" -j "$jobs" -L sanitize --output-on-failure

step "All verification steps passed"
