#!/bin/sh
# Full verification sweep: the tier-1 suite plus both sanitizer builds.
#
#   tools/verify.sh [build-dir-prefix]
#
# Runs, in order:
#   1. Release build + the whole ctest suite (tier-1, what CI gates on);
#   2. Observability smoke: aimes-run --quick with --trace-out/--metrics-out,
#      then validates the Chrome trace parses as JSON and the Prometheus
#      file is non-empty — the exporters are only exercised end to end here;
#   3. Campaign-scale smoke: bench/campaign_scale --quick, whose exit code
#      enforces the admission shape checks (goodput ratio, wait bound, typed
#      sheds, jobs-sweep determinism), plus greps pinning the JSON evidence
#      fields (shed_rate, checksums, admission waits);
#   4. Sharded-substrate smoke: bench/substrate_sharded --quick, whose exit
#      code enforces bit-identical digests across --shards 1/2/4/8, plus
#      greps pinning the committed evidence (speedup field present, recorded
#      from a Release build);
#   5. Control-plane smoke: start aimesd on an ephemeral port, submit the
#      --quick campaign through aimesc --wait, require the daemon's
#      determinism checksum to equal the same request run via aimes-run,
#      grep the Prometheus exposition, and shut down gracefully;
#   6. Sanitize (ASan/UBSan) build + the chaos and sanitize labels — the
#      fault-injection paths are where lifetime bugs hide;
#   7. Thread (TSan) build + the sanitize label — races in the parallel
#      trial runner (sim::ReplicaPool) and the sharded window coordinator
#      (sim::ShardedEngine's barrier/mailbox/park handoffs).
#
# Exits non-zero on the first failing step. Build trees default to
# build-verify-{release,asan,tsan} so an existing ./build is untouched.
set -eu

prefix="${1:-build-verify}"
src_dir="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
# nproc undercounts in cgroup-limited containers; VERIFY_JOBS overrides.
jobs="${VERIFY_JOBS:-$(nproc 2>/dev/null || echo 4)}"

step() {
  printf '\n== %s\n' "$*"
}

step "Release build + full suite"
cmake -S "$src_dir" -B "$prefix-release" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$prefix-release" -j "$jobs"
ctest --test-dir "$prefix-release" -j "$jobs" --output-on-failure

step "Observability smoke (--trace-out / --metrics-out artifacts)"
obs_trace="$prefix-release/smoke-trace.json"
obs_metrics="$prefix-release/smoke-metrics.txt"
"$prefix-release/tools/aimes-run" --quick \
  --trace-out "$obs_trace" --metrics-out "$obs_metrics"
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json, sys; json.load(open(sys.argv[1]))" "$obs_trace"
else
  # No python3: at least require a non-empty file with the trace envelope.
  grep -q '"traceEvents"' "$obs_trace"
fi
test -s "$obs_metrics"
grep -q '^# TYPE ' "$obs_metrics"
test -s "$obs_metrics.csv"
echo "observability artifacts OK ($obs_trace, $obs_metrics)"

step "Campaign-scale smoke (admission shape checks + JSON evidence fields)"
camp_json="$prefix-release/smoke-campaign.json"
# The bench exits non-zero when the goodput ratio, the wait bound, the
# typed-shed invariant, or the jobs-sweep checksum comparison fails, so the
# run itself is the shape check; the greps pin the JSON evidence fields the
# PR points at (BENCH_campaign.json) to the schema this script expects.
"$prefix-release/bench/campaign_scale" --quick --json "$camp_json"
grep -q '"shed_rate"' "$camp_json"
grep -q '"checksum"' "$camp_json"
grep -q '"admission_wait_max_s"' "$camp_json"
grep -q '"deterministic_across_jobs": true' "$camp_json"
# The committed evidence must carry the same fields the smoke just produced.
grep -q '"shed_rate"' "$src_dir/BENCH_campaign.json"
grep -q '"checksum"' "$src_dir/BENCH_campaign.json"
echo "campaign-scale smoke OK ($camp_json)"

step "Sharded-substrate smoke (cross-shard determinism + speedup evidence)"
sharded_json="$prefix-release/smoke-sharded.json"
# The bench exits non-zero when digests or span checksums diverge across
# --shards 1/2/4/8 (or when a >= 8-thread host misses the speedup target),
# so the run itself is the determinism check; the greps pin the JSON schema.
"$prefix-release/bench/substrate_sharded" --quick --json "$sharded_json"
grep -q '"deterministic_across_shards": true' "$sharded_json"
grep -q '"speedup_shards8"' "$sharded_json"
# The committed evidence must show the same determinism, carry the speedup
# field, and have been recorded from a Release build — debug numbers are
# refused at the source (bench_util's require_release_artifacts and the
# bench-*-json guard), and this grep catches a stale pre-guard file.
grep -q '"deterministic_across_shards": true' "$src_dir/BENCH_substrate.json"
grep -q '"speedup_shards8"' "$src_dir/BENCH_substrate.json"
grep -q '"aimes_build_type": "release"' "$src_dir/BENCH_substrate.json"
echo "sharded-substrate smoke OK ($sharded_json)"

step "Control-plane smoke (aimesd/aimesc round trip + CLI checksum parity)"
port_file="$prefix-release/aimesd.port"
rm -f "$port_file"
"$prefix-release/tools/aimesd" --port 0 --port-file "$port_file" &
aimesd_pid=$!
trap 'kill "$aimesd_pid" 2>/dev/null || true' EXIT
i=0
while [ ! -s "$port_file" ] && [ "$i" -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
test -s "$port_file"
port="$(cat "$port_file")"
# Reference: the identical request on the CLI. The daemon must reproduce
# this determinism checksum bit for bit (DESIGN.md section 14).
ref_sum="$("$prefix-release/tools/aimes-run" --quick --campaign 3 --trials 2 \
  | sed -n 's/.*checksum \([0-9a-f]\{16\}\).*/\1/p')"
test -n "$ref_sum"
submit_out="$("$prefix-release/tools/aimesc" submit --quick --campaign 3 --trials 2 \
  --name verify-smoke --wait --poll 0.2 --port "$port")"
echo "$submit_out" | grep -q "checksum $ref_sum"
"$prefix-release/tools/aimesc" metrics --port "$port" | grep -q '^# TYPE aimes_ctl_'
"$prefix-release/tools/aimesc" shutdown --port "$port"
# Graceful shutdown: aimesd drains and exits 0 on its own.
wait "$aimesd_pid"
trap - EXIT
echo "control-plane smoke OK (checksum $ref_sum via aimesd == aimes-run)"

step "Sanitize (ASan/UBSan) build + chaos/sanitize labels"
cmake -S "$src_dir" -B "$prefix-asan" -DCMAKE_BUILD_TYPE=Sanitize >/dev/null
cmake --build "$prefix-asan" -j "$jobs"
ctest --test-dir "$prefix-asan" -j "$jobs" -L chaos --output-on-failure
ctest --test-dir "$prefix-asan" -j "$jobs" -L sanitize --output-on-failure

step "Thread (TSan) build + sanitize label"
cmake -S "$src_dir" -B "$prefix-tsan" -DCMAKE_BUILD_TYPE=Thread >/dev/null
cmake --build "$prefix-tsan" -j "$jobs"
ctest --test-dir "$prefix-tsan" -j "$jobs" -L sanitize --output-on-failure

step "All verification steps passed"
