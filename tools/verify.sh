#!/bin/sh
# Full verification sweep: the tier-1 suite plus both sanitizer builds.
#
#   tools/verify.sh [build-dir-prefix]
#
# Runs, in order:
#   1. Release build + the whole ctest suite (tier-1, what CI gates on);
#   2. Observability smoke: aimes-run --quick with --trace-out/--metrics-out,
#      then validates the Chrome trace parses as JSON and the Prometheus
#      file is non-empty — the exporters are only exercised end to end here;
#   3. Sanitize (ASan/UBSan) build + the chaos and sanitize labels — the
#      fault-injection paths are where lifetime bugs hide;
#   4. Thread (TSan) build + the sanitize label — races in the parallel
#      trial runner (sim::ReplicaPool) and the campaign cell sweep.
#
# Exits non-zero on the first failing step. Build trees default to
# build-verify-{release,asan,tsan} so an existing ./build is untouched.
set -eu

prefix="${1:-build-verify}"
src_dir="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
# nproc undercounts in cgroup-limited containers; VERIFY_JOBS overrides.
jobs="${VERIFY_JOBS:-$(nproc 2>/dev/null || echo 4)}"

step() {
  printf '\n== %s\n' "$*"
}

step "Release build + full suite"
cmake -S "$src_dir" -B "$prefix-release" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$prefix-release" -j "$jobs"
ctest --test-dir "$prefix-release" -j "$jobs" --output-on-failure

step "Observability smoke (--trace-out / --metrics-out artifacts)"
obs_trace="$prefix-release/smoke-trace.json"
obs_metrics="$prefix-release/smoke-metrics.txt"
"$prefix-release/tools/aimes-run" --quick \
  --trace-out "$obs_trace" --metrics-out "$obs_metrics"
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json, sys; json.load(open(sys.argv[1]))" "$obs_trace"
else
  # No python3: at least require a non-empty file with the trace envelope.
  grep -q '"traceEvents"' "$obs_trace"
fi
test -s "$obs_metrics"
grep -q '^# TYPE ' "$obs_metrics"
test -s "$obs_metrics.csv"
echo "observability artifacts OK ($obs_trace, $obs_metrics)"

step "Sanitize (ASan/UBSan) build + chaos/sanitize labels"
cmake -S "$src_dir" -B "$prefix-asan" -DCMAKE_BUILD_TYPE=Sanitize >/dev/null
cmake --build "$prefix-asan" -j "$jobs"
ctest --test-dir "$prefix-asan" -j "$jobs" -L chaos --output-on-failure
ctest --test-dir "$prefix-asan" -j "$jobs" -L sanitize --output-on-failure

step "Thread (TSan) build + sanitize label"
cmake -S "$src_dir" -B "$prefix-tsan" -DCMAKE_BUILD_TYPE=Thread >/dev/null
cmake --build "$prefix-tsan" -j "$jobs"
ctest --test-dir "$prefix-tsan" -j "$jobs" -L sanitize --output-on-failure

step "All verification steps passed"
