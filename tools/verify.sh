#!/bin/sh
# Full verification sweep: the tier-1 suite plus both sanitizer builds.
#
#   tools/verify.sh [build-dir-prefix]
#
# Runs, in order:
#   1. Release build + the whole ctest suite (tier-1, what CI gates on);
#   2. Sanitize (ASan/UBSan) build + the chaos and sanitize labels — the
#      fault-injection paths are where lifetime bugs hide;
#   3. Thread (TSan) build + the sanitize label — races in the parallel
#      trial runner (sim::ReplicaPool) and the campaign cell sweep.
#
# Exits non-zero on the first failing step. Build trees default to
# build-verify-{release,asan,tsan} so an existing ./build is untouched.
set -eu

prefix="${1:-build-verify}"
src_dir="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
# nproc undercounts in cgroup-limited containers; VERIFY_JOBS overrides.
jobs="${VERIFY_JOBS:-$(nproc 2>/dev/null || echo 4)}"

step() {
  printf '\n== %s\n' "$*"
}

step "Release build + full suite"
cmake -S "$src_dir" -B "$prefix-release" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$prefix-release" -j "$jobs"
ctest --test-dir "$prefix-release" -j "$jobs" --output-on-failure

step "Sanitize (ASan/UBSan) build + chaos/sanitize labels"
cmake -S "$src_dir" -B "$prefix-asan" -DCMAKE_BUILD_TYPE=Sanitize >/dev/null
cmake --build "$prefix-asan" -j "$jobs"
ctest --test-dir "$prefix-asan" -j "$jobs" -L chaos --output-on-failure
ctest --test-dir "$prefix-asan" -j "$jobs" -L sanitize --output-on-failure

step "Thread (TSan) build + sanitize label"
cmake -S "$src_dir" -B "$prefix-tsan" -DCMAKE_BUILD_TYPE=Thread >/dev/null
cmake --build "$prefix-tsan" -j "$jobs"
ctest --test-dir "$prefix-tsan" -j "$jobs" -L sanitize --output-on-failure

step "All verification steps passed"
