# Build-time gate for the bench-*-json recording targets: checked-in
# BENCH_*.json files are perf evidence, and numbers from a Debug (or
# unspecified) build tree would quietly undercut every threshold they
# assert. Invoked as
#   cmake -DBUILD_TYPE=${CMAKE_BUILD_TYPE} -P tools/require_release.cmake
# before the recording command runs; the harness binaries carry a second,
# NDEBUG-based guard of their own (bench/bench_util.hpp).
if(NOT BUILD_TYPE MATCHES "^(Release|RelWithDebInfo|MinSizeRel)$")
  message(FATAL_ERROR
    "refusing to record benchmark evidence from CMAKE_BUILD_TYPE='${BUILD_TYPE}'; "
    "reconfigure the build tree with -DCMAKE_BUILD_TYPE=Release first")
endif()
